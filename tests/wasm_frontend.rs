//! Full-stack wasm frontend tests:
//!
//! 1. **Round-trip property** — `wasm_fixtures` emit → `fmsa-wasm` decode
//!    → lower → verifier-clean module, across seeds/shapes/memory modes.
//! 2. **Pipeline bit-identity** — merging a lowered wasm corpus through
//!    `run_fmsa_pipeline` produces byte-identical output at 1/2/4
//!    threads, with a measurable size reduction.
//! 3. **Interpreter differential** — the `fmsa_interp::batch` driver runs
//!    coverage-seeded input pairs over every exported function and finds
//!    zero mismatches (and zero panics) between the original and merged
//!    module.

use fmsa_core::pipeline::run_fmsa_pipeline;
use fmsa_core::Config;
use fmsa_interp::batch::wire_targets;
use fmsa_interp::{run_differential_batch, BatchConfig};
use fmsa_ir::printer::print_module;
use fmsa_ir::{verify_module, Module};
use fmsa_workloads::{wasm_fixture_bytes, WasmFixtureConfig};
use proptest::prelude::*;

fn lowered_fixture(cfg: &WasmFixtureConfig) -> Module {
    let bytes = wasm_fixture_bytes(cfg);
    let m = fmsa_wasm::load_wasm(&bytes, "wasm-fixture").expect("fixture decodes and lowers");
    let errs = verify_module(&m);
    assert!(errs.is_empty(), "lowered fixture verifies: {errs:?}");
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn emit_decode_lower_roundtrip(seed in 0u64..1_000_000, n in 6usize..36, mem in 0u8..2) {
        let cfg = WasmFixtureConfig {
            functions: n,
            with_memory: mem == 1,
            seed,
            ..WasmFixtureConfig::default()
        };
        let bytes = wasm_fixture_bytes(&cfg);
        prop_assert!(fmsa_wasm::is_wasm(&bytes));
        let wasm = fmsa_wasm::parse_wasm(&bytes).expect("decodes");
        prop_assert_eq!(wasm.funcs.len(), n);
        let m = fmsa_wasm::lower_module(&wasm, "rt").expect("lowers");
        let errs = verify_module(&m);
        prop_assert!(errs.is_empty(), "{:?}", errs);
        prop_assert_eq!(m.func_count(), n);
    }
}

#[test]
fn pipeline_output_identical_across_threads_on_wasm_input() {
    let cfg = WasmFixtureConfig::with_functions(80);
    let base = lowered_fixture(&cfg);
    let cfg = Config::new().threshold(5);
    let mut outputs = Vec::new();
    let mut merges = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = base.clone();
        let pcfg = cfg.clone().parallel(threads);
        let stats = run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "merged wasm module verifies at {threads} threads: {errs:?}");
        outputs.push(print_module(&m));
        merges.push(stats.merges);
        assert!(
            stats.size_after < stats.size_before,
            "measurable reduction at {threads} threads: {} -> {}",
            stats.size_before,
            stats.size_after
        );
    }
    assert!(merges[0] > 0, "the wasm corpus must produce merges");
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 threads");
}

#[test]
fn merged_wasm_is_differentially_equal_under_the_interpreter() {
    let cfg = WasmFixtureConfig::with_functions(48);
    let mut pre = lowered_fixture(&cfg);

    let mut post = pre.clone();
    let mcfg = Config::new().threshold(5).parallel(2);
    let stats = run_fmsa_pipeline(&mut post, &mcfg.fmsa_options(), &mcfg.pipeline_options());
    assert!(stats.merges > 0, "corpus must merge");
    assert!(stats.quarantine.is_empty(), "a clean run quarantines nothing");

    // Exported (external) functions survive merging under their names;
    // the batch driver wires them up (adding memory drivers to both
    // modules when the corpus threads a linear-memory base).
    let targets = wire_targets(&mut pre, &mut post, cfg.with_memory);
    assert!(!targets.is_empty());
    let bcfg =
        BatchConfig { threads: 2, seed: 0xd1ff_e2e2, per_target: 6, ..BatchConfig::default() };
    let out = run_differential_batch(&pre, &post, &targets, &bcfg);
    assert!(out.pairs_run >= 40, "enough differential samples ran: {}", out.pairs_run);
    assert_eq!(out.panics_caught, 0, "no interpreter panics");
    assert!(out.mismatches.is_empty(), "differential mismatches: {:?}", out.mismatches);
    assert!(out.paths_covered > 0, "coverage is aggregated");
    // The drivers were appended after merging; both modules still verify.
    assert!(verify_module(&pre).is_empty());
    assert!(verify_module(&post).is_empty());
}
