//! Full-stack wasm frontend tests:
//!
//! 1. **Round-trip property** — `wasm_fixtures` emit → `fmsa-wasm` decode
//!    → lower → verifier-clean module, across seeds/shapes/memory modes.
//! 2. **Pipeline bit-identity** — merging a lowered wasm corpus through
//!    `run_fmsa_pipeline` produces byte-identical output at 1/2/4
//!    threads, with a measurable size reduction.
//! 3. **Interpreter differential** — for every exported function, N
//!    random input vectors produce bit-equal results (and equal traps)
//!    before and after merging.

use fmsa_core::pass::FmsaOptions;
use fmsa_core::pipeline::{run_fmsa_pipeline, PipelineOptions};
use fmsa_interp::{Interpreter, Trap, Val};
use fmsa_ir::printer::print_module;
use fmsa_ir::{verify_module, FuncBuilder, Linkage, Module, Value};
use fmsa_workloads::{wasm_fixture_bytes, WasmFixtureConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn lowered_fixture(cfg: &WasmFixtureConfig) -> Module {
    let bytes = wasm_fixture_bytes(cfg);
    let m = fmsa_wasm::load_wasm(&bytes, "wasm-fixture").expect("fixture decodes and lowers");
    let errs = verify_module(&m);
    assert!(errs.is_empty(), "lowered fixture verifies: {errs:?}");
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn emit_decode_lower_roundtrip(seed in 0u64..1_000_000, n in 6usize..36, mem in 0u8..2) {
        let cfg = WasmFixtureConfig {
            functions: n,
            with_memory: mem == 1,
            seed,
            ..WasmFixtureConfig::default()
        };
        let bytes = wasm_fixture_bytes(&cfg);
        prop_assert!(fmsa_wasm::is_wasm(&bytes));
        let wasm = fmsa_wasm::parse_wasm(&bytes).expect("decodes");
        prop_assert_eq!(wasm.funcs.len(), n);
        let m = fmsa_wasm::lower_module(&wasm, "rt").expect("lowers");
        let errs = verify_module(&m);
        prop_assert!(errs.is_empty(), "{:?}", errs);
        prop_assert_eq!(m.func_count(), n);
    }
}

#[test]
fn pipeline_output_identical_across_threads_on_wasm_input() {
    let cfg = WasmFixtureConfig::with_functions(80);
    let base = lowered_fixture(&cfg);
    let opts = FmsaOptions::with_threshold(5);
    let mut outputs = Vec::new();
    let mut merges = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = base.clone();
        let stats = run_fmsa_pipeline(&mut m, &opts, &PipelineOptions::with_threads(threads));
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "merged wasm module verifies at {threads} threads: {errs:?}");
        outputs.push(print_module(&m));
        merges.push(stats.merges);
        assert!(
            stats.size_after < stats.size_before,
            "measurable reduction at {threads} threads: {} -> {}",
            stats.size_before,
            stats.size_after
        );
    }
    assert!(merges[0] > 0, "the wasm corpus must produce merges");
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 threads");
}

/// Comparable form of an interpreter outcome: traps by variant, values by
/// bit pattern (so NaN == NaN holds where wasm semantics say the bits
/// match).
fn canon(r: &Result<fmsa_interp::RunResult, Trap>) -> String {
    match r {
        Err(t) => format!("trap: {t}"),
        Ok(out) => {
            let v = match &out.value {
                None => "void".to_owned(),
                Some(Val::Int { bits, width }) => format!("i{width}:{bits:#x}"),
                Some(Val::F32(x)) => format!("f32:{:#x}", x.to_bits()),
                Some(Val::F64(x)) => format!("f64:{:#x}", x.to_bits()),
                Some(other) => format!("{other:?}"),
            };
            format!("{v} out={:?}", out.output)
        }
    }
}

/// Appends a driver that materializes the 64 KiB linear memory on the
/// interpreter stack and forwards to `callee` — the host-instantiation
/// step for lowered modules whose functions take the threaded `i8* %mem`.
fn add_memory_driver(m: &mut Module, callee: &str) -> String {
    let callee_id = m.func_by_name(callee).expect("callee exists");
    let callee_ty = m.func(callee_id).fn_ty();
    let ret = m.types.fn_ret(callee_ty).expect("fn ty");
    let params: Vec<_> = m.types.fn_params(callee_ty).expect("fn ty")[1..].to_vec();
    let n_args = params.len();
    let driver_ty = m.types.func(ret, params);
    let name = format!("__drive_{callee}");
    let f = m.create_function(name.clone(), driver_ty);
    let mut b = FuncBuilder::new(m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let i8t = b.module().types.i8();
    let buf_ty = b.module_mut().types.array(i8t, 65536);
    let buf = b.alloca(buf_ty);
    let zero = b.const_i64(0);
    let mem = b.gep(buf_ty, buf, vec![zero, zero], i8t);
    let mut args = vec![mem];
    args.extend((0..n_args).map(|k| Value::Param(k as u32)));
    let r = b.call(callee_id, args);
    if b.module().types.fn_ret(callee_ty) == Some(b.module().types.void()) {
        b.ret(None);
    } else {
        b.ret(Some(r));
    }
    name
}

fn random_args(rng: &mut StdRng, m: &Module, fn_ty: fmsa_ir::TyId, skip_mem: bool) -> Vec<Val> {
    let params = m.types.fn_params(fn_ty).expect("fn ty");
    let params = if skip_mem { &params[1..] } else { params };
    params
        .iter()
        .map(|&p| {
            if m.types.is_float(p) {
                let x = rng.gen_range(-8000i64..8000) as f64 / 8.0;
                if m.types.display(p) == "float" {
                    Val::F32(x as f32)
                } else {
                    Val::F64(x)
                }
            } else if m.types.int_width(p) == Some(64) {
                Val::i64(rng.gen::<i64>())
            } else {
                Val::i32(rng.gen::<i32>())
            }
        })
        .collect()
}

#[test]
fn merged_wasm_is_differentially_equal_under_the_interpreter() {
    let cfg = WasmFixtureConfig::with_functions(48);
    let pre = lowered_fixture(&cfg);
    let has_memory = cfg.with_memory;

    let mut post = pre.clone();
    let stats = run_fmsa_pipeline(
        &mut post,
        &FmsaOptions::with_threshold(5),
        &PipelineOptions::with_threads(2),
    );
    assert!(stats.merges > 0, "corpus must merge");

    // Exported (external) functions survive merging under their names.
    let exported: Vec<String> = pre
        .func_ids()
        .into_iter()
        .filter(|&f| pre.func(f).linkage == Linkage::External && !pre.func(f).is_declaration())
        .map(|f| pre.func(f).name.clone())
        .collect();
    assert!(!exported.is_empty());

    let mut pre = pre;
    let mut checked = 0usize;
    let mut rng = StdRng::seed_from_u64(0xd1ff_e2e2);
    for name in exported {
        let post_id = post.func_by_name(&name).expect("external name survives merging");
        let fn_ty = post.func(post_id).fn_ty();
        let target = if has_memory {
            let a = add_memory_driver(&mut pre, &name);
            let b = add_memory_driver(&mut post, &name);
            assert_eq!(a, b);
            a
        } else {
            name.clone()
        };
        for _ in 0..4 {
            let args = random_args(&mut rng, &post, fn_ty, has_memory);
            let r_pre = Interpreter::new(&pre).run(&target, args.clone());
            let r_post = Interpreter::new(&post).run(&target, args.clone());
            assert_eq!(
                canon(&r_pre),
                canon(&r_post),
                "differential mismatch for {name} on {args:?}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 40, "enough differential samples ran: {checked}");
    // The drivers were appended after merging; both modules still verify.
    assert!(verify_module(&pre).is_empty());
    assert!(verify_module(&post).is_empty());
}
