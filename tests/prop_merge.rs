//! Property-based differential testing of the whole merger: generate
//! random function pairs from every clone-family kind, merge them, and
//! require the retired entry points (thunks) to behave bit-identically to
//! the originals on a grid of inputs.
//!
//! This is the repository's strongest correctness evidence: it exercises
//! alignment, parameter merging, return-type merging, two-pass codegen,
//! select insertion, label selectors, SSA repair, thunks, and call-site
//! rewriting together against the interpreter as an oracle.

use fmsa::core::merge::{merge_pair, MergeConfig};
use fmsa::core::thunks::commit_merge;
use fmsa::interp::{Interpreter, Val};
use fmsa::ir::{Linkage, Module};
use fmsa::workloads::{generate_function, GenConfig, Variant};
use proptest::prelude::*;

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::exact()),
        (1u64..50).prop_map(Variant::body),
        prop_oneof![
            Just(Variant::typed(true, false)),
            Just(Variant::typed(false, true)),
            Just(Variant::typed(true, true)),
        ],
        (1u64..50).prop_map(Variant::cfg),
        (1u64..50).prop_map(Variant::sig),
    ]
}

/// Synthesizes a deterministic argument list for `name` from a salt.
fn args_for(m: &Module, name: &str, salt: i64) -> Vec<Val> {
    let f = m.func_by_name(name).expect("function exists");
    m.func(f)
        .params()
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let v = salt + k as i64 * 3;
            if m.types.is_float(p.ty) {
                if m.types.display(p.ty) == "float" {
                    Val::F32(v as f32 * 0.5)
                } else {
                    Val::F64(v as f64 * 0.5)
                }
            } else if m.types.int_width(p.ty) == Some(64) {
                Val::i64(v)
            } else {
                Val::i32(v as i32)
            }
        })
        .collect()
}

fn observe(m: &Module, name: &str, salt: i64) -> Result<(Option<Val>, Vec<String>), String> {
    let mut interp = Interpreter::new(m);
    interp.set_fuel(2_000_000);
    match interp.run(name, args_for(m, name, salt)) {
        Ok(r) => Ok((r.value, r.output)),
        Err(t) => Err(t.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn merged_pairs_preserve_behaviour(
        seed in 0u64..10_000,
        variant in variant_strategy(),
        size in 20usize..90,
    ) {
        let mut m = Module::new("prop");
        let cfg = GenConfig { target_size: size, ..GenConfig::default() };
        let fa = generate_function(&mut m, "fa", seed, &cfg, &Variant::exact());
        let fb = generate_function(&mut m, "fb", seed, &cfg, &variant);
        prop_assert!(fmsa_ir::verify_module(&m).is_empty());
        // Keep both entry points callable after the merge.
        m.func_mut(fa).linkage = Linkage::External;
        m.func_mut(fb).linkage = Linkage::External;

        let before: Vec<_> = (-2..3)
            .flat_map(|salt| {
                ["fa", "fb"].map(|n| ((n, salt), observe(&m, n, salt)))
            })
            .collect();

        let mut merged = m.clone();
        let info = merge_pair(&mut merged, fa, fb, &MergeConfig::default());
        let info = match info {
            Ok(i) => i,
            // Some pairs legitimately cannot merge (e.g. incompatible
            // aggregate returns); that is not a failure.
            Err(fmsa::core::MergeError::IncompatibleReturns) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("merge failed: {e}"))),
        };
        commit_merge(&mut merged, &info).expect("commit succeeds");
        let errs = fmsa_ir::verify_module(&merged);
        prop_assert!(errs.is_empty(), "merged module invalid: {errs:?}");

        for ((name, salt), expect) in before {
            let got = observe(&merged, name, salt);
            match (&expect, &got) {
                (Ok((ev, eo)), Ok((gv, go))) => {
                    let veq = match (ev, gv) {
                        (Some(x), Some(y)) => x.bit_eq(y),
                        (None, None) => true,
                        _ => false,
                    };
                    prop_assert!(
                        veq && eo == go,
                        "{name}(salt={salt}) diverged: {expect:?} vs {got:?}"
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "{name}(salt={salt}): {expect:?} vs {got:?}"),
            }
        }
    }

    #[test]
    fn whole_pass_preserves_behaviour(seed in 0u64..2_000) {
        use fmsa::core::pass::run_fmsa;
        use fmsa::Config;
        let mut m = Module::new("prop-pass");
        let cfg = GenConfig { target_size: 40, ..GenConfig::default() };
        // A few shared-seed families plus singletons.
        let names: Vec<String> = (0..6).map(|k| format!("f{k}")).collect();
        for (k, name) in names.iter().enumerate() {
            let fam_seed = seed + (k as u64 / 2); // pairs share seeds
            let variant = if k % 2 == 0 { Variant::exact() } else { Variant::body(seed % 31) };
            let f = generate_function(&mut m, name, fam_seed, &cfg, &variant);
            m.func_mut(f).linkage = Linkage::External; // keep callable
        }
        let before: Vec<_> =
            names.iter().map(|n| (n.clone(), observe(&m, n, 1))).collect();
        let stats = run_fmsa(&mut m, &Config::new().threshold(5).fmsa_options());
        let errs = fmsa_ir::verify_module(&m);
        prop_assert!(errs.is_empty(), "after pass: {errs:?}");
        let _ = stats;
        for (name, expect) in before {
            let got = observe(&m, &name, 1);
            match (&expect, &got) {
                (Ok((ev, eo)), Ok((gv, go))) => {
                    let veq = match (ev, gv) {
                        (Some(x), Some(y)) => x.bit_eq(y),
                        (None, None) => true,
                        _ => false,
                    };
                    prop_assert!(veq && eo == go, "{name}: {expect:?} vs {got:?}");
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "{name}: {expect:?} vs {got:?}"),
            }
        }
    }
}
