//! Cross-crate tests of the partitioned call-site rewrite
//! (`fmsa_core::thunks::RewritePlan`): for caller-heavy modules with
//! thunked sides, mixed return types (call-site cast chains), shared
//! callers, and merged bodies that are themselves callers, the
//! partitioned execution must produce output identical to the serial
//! `commit_merge` loop at 1/2/4/8 worker threads — both one merge at a
//! time (the pipeline's configuration) and as a multi-merge batch.

use fmsa::core::callsites::CallSiteIndex;
use fmsa::core::merge::{merge_pair, MergeConfig};
use fmsa::core::thunks::{commit_merge, commit_merge_partitioned, CommitResult, RewritePlan};
use fmsa::ir::printer::print_module;
use fmsa::ir::{FuncBuilder, FuncId, Linkage, Module, Opcode, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a module of `families` mergeable pairs plus `callers` functions
/// calling family members 0–3 times each. Members randomly get external
/// linkage (thunk path), a taken address, or an `i64` return reached by a
/// final `zext` (so rewritten call sites need a trunc-back cast chain).
/// With `cross_calls`, the first member of a family may call its merge
/// partner (the merged body then carries rewritable call sites of the
/// second side) or a neighbouring family's first member (merge sides that
/// are themselves touched callers).
fn caller_heavy_module(
    seed: u64,
    families: usize,
    callers: usize,
    cross_calls: bool,
) -> (Module, Vec<(FuncId, FuncId)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new("rewrite-plan");
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let fn_ty32 = m.types.func(i32t, vec![i32t]);
    let fn_ty64 = m.types.func(i64t, vec![i32t]);
    // Pass 1: declare every family member (bodies need forward targets).
    let mut members: Vec<[(FuncId, bool); 2]> = Vec::new();
    for k in 0..families {
        let mut fam = [(FuncId::from_index(0), false); 2];
        for (side, slot) in fam.iter_mut().enumerate() {
            let wide = side == 1 && rng.gen_bool(0.3);
            let f =
                m.create_function(format!("fam{k}_{side}"), if wide { fn_ty64 } else { fn_ty32 });
            if rng.gen_bool(0.25) {
                m.func_mut(f).linkage = Linkage::External;
            }
            if rng.gen_bool(0.15) {
                m.func_mut(f).address_taken = true;
            }
            *slot = (f, wide);
        }
        members.push(fam);
    }
    // Pass 2: fill the bodies.
    for k in 0..families {
        for side in 0..2 {
            let (f, wide) = members[k][side];
            let xor_const = if side == 0 { 3 } else { 5 };
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..8i32 {
                v = b.mul(v, b.const_i32(j + 2));
                v = b.xor(v, b.const_i32(xor_const + k as i32));
            }
            if cross_calls && side == 0 {
                if rng.gen_bool(0.4) {
                    // Call the merge partner: the merged body keeps this
                    // call, making it a caller of the second side.
                    let (partner, pwide) = members[k][1];
                    let r = b.call(partner, vec![v]);
                    let r = if pwide { b.cast(Opcode::Trunc, r, i32t) } else { r };
                    v = b.xor(v, r);
                }
                if rng.gen_bool(0.4) {
                    // Call a neighbouring family: merge sides double as
                    // callers rewritten by earlier commits.
                    let (other, _) = members[(k + 1) % families][0];
                    if other != f {
                        let r = b.call(other, vec![v]);
                        v = b.xor(v, r);
                    }
                }
            }
            if wide {
                v = b.cast(Opcode::ZExt, v, i64t);
            }
            b.ret(Some(v));
        }
    }
    // Pass 3: callers (never merge subjects themselves).
    for c in 0..callers {
        let f = m.create_function(format!("caller{c}"), fn_ty32);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..rng.gen_range(0..4usize) {
            let fam = rng.gen_range(0..families);
            let (g, wide) = members[fam][rng.gen_range(0..2usize)];
            let r = b.call(g, vec![v]);
            v = if wide { b.cast(Opcode::Trunc, r, i32t) } else { r };
        }
        b.ret(Some(v));
    }
    let pairs = members.iter().map(|fam| (fam[0].0, fam[1].0)).collect();
    (m, pairs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// One merge at a time (the pipeline's configuration): committing
    /// through a single-merge partitioned plan must be bit-identical to
    /// the serial `commit_merge`, for any module shape and thread count.
    #[test]
    fn partitioned_rewrite_matches_serial_commit(
        seed in 0u64..10_000,
        threads in 1usize..9,
    ) {
        let (base, pairs) = caller_heavy_module(seed, 4, 6, true);
        let config = MergeConfig::default();
        let mut serial = base.clone();
        let mut serial_results: Vec<CommitResult> = Vec::new();
        for &(a, b) in &pairs {
            let Ok(info) = merge_pair(&mut serial, a, b, &config) else { continue };
            serial_results.push(commit_merge(&mut serial, &info).expect("serial commit"));
        }
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let mut part = base.clone();
        let mut part_results: Vec<CommitResult> = Vec::new();
        for &(a, b) in &pairs {
            // Index over committed state only, as the pipeline maintains
            // it (built before the merged function exists).
            let sites = CallSiteIndex::build(&part);
            let Ok(info) = merge_pair(&mut part, a, b, &config) else { continue };
            part_results.push(
                commit_merge_partitioned(&mut part, &info, &sites, Some(&pool))
                    .expect("partitioned commit"),
            );
        }
        prop_assert_eq!(&serial_results, &part_results);
        prop_assert_eq!(print_module(&serial), print_module(&part));
        prop_assert!(fmsa::ir::verify_module(&part).is_empty());
    }
}

/// A multi-merge batch: merges planned into one [`RewritePlan`] and
/// executed in a single partitioned wave must match the batch's serial
/// reference — build every merged function first, then `commit_merge`
/// each in add order. Cross-calling families are included, so batches
/// cover callers shared by several merges (partitions serialize their
/// rewrites), merge sides rewritten by earlier commits, and merged
/// bodies calling another merge's deletable side.
#[test]
fn batched_plan_matches_serial_commit_order() {
    for (seed, threads) in [(11u64, 1usize), (12, 2), (13, 4), (14, 8)] {
        let (base, pairs) = caller_heavy_module(seed, 3, 8, true);
        let config = MergeConfig::default();
        // Serial reference: merge all pairs, then commit in add order.
        let mut serial = base.clone();
        let serial_infos: Vec<_> = pairs
            .iter()
            .filter_map(|&(a, b)| merge_pair(&mut serial, a, b, &config).ok())
            .collect();
        let serial_results: Vec<CommitResult> = serial_infos
            .iter()
            .map(|info| commit_merge(&mut serial, info).expect("serial commit"))
            .collect();
        let mut part = base.clone();
        let sites = CallSiteIndex::build(&part);
        let infos: Vec<_> =
            pairs.iter().filter_map(|&(a, b)| merge_pair(&mut part, a, b, &config).ok()).collect();
        let mut plan = RewritePlan::new();
        for info in &infos {
            plan.add_merge(&part, info, &sites);
        }
        assert_eq!(plan.merges(), infos.len());
        assert!(plan.merges() > 0, "seed {seed} produced no merges");
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let results = plan.execute(&mut part, Some(&pool)).expect("execute");
        assert_eq!(serial_results, results, "commit results at {threads} threads");
        assert!(results.iter().any(|r| !r.touched.is_empty()), "seed {seed} produced no rewrites");
        assert_eq!(
            print_module(&serial),
            print_module(&part),
            "module text at {threads} threads (seed {seed})"
        );
        assert!(fmsa::ir::verify_module(&part).is_empty());
    }
}

/// The reviewer-surfaced interaction shape, pinned deterministically: a
/// later-added merge's merged body calls an earlier-added merge's
/// deletable side (its own side called it before merging). The batch
/// must rewrite inside that merged body before the side is deleted.
#[test]
fn batch_rewrites_later_merged_bodies_calling_earlier_sides() {
    let mut m = Module::new("interacting");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    // Merge 1: (f1, f2), both internal — f1 will be deleted.
    // Merge 2: (g, h) where g calls f1, so merged2's body calls f1.
    let mut build = |name: &str, c: i32, callee: Option<FuncId>| {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for j in 0..8i32 {
            v = b.mul(v, b.const_i32(j + 2));
            v = b.xor(v, b.const_i32(c));
        }
        if let Some(t) = callee {
            let r = b.call(t, vec![v]);
            v = b.xor(v, r);
        }
        b.ret(Some(v));
        f
    };
    let f1 = build("f1", 3, None);
    let f2 = build("f2", 5, None);
    let g = build("g", 7, Some(f1));
    let h = build("h", 9, Some(f1));
    let config = MergeConfig::default();
    let mut serial = m.clone();
    let infos_s = [
        merge_pair(&mut serial, f1, f2, &config).expect("merge1"),
        merge_pair(&mut serial, g, h, &config).expect("merge2"),
    ];
    let serial_results: Vec<CommitResult> =
        infos_s.iter().map(|i| commit_merge(&mut serial, i).expect("commit")).collect();
    let mut part = m.clone();
    let sites = CallSiteIndex::build(&part);
    let infos = [
        merge_pair(&mut part, f1, f2, &config).expect("merge1"),
        merge_pair(&mut part, g, h, &config).expect("merge2"),
    ];
    let merged2 = infos[1].merged;
    let mut plan = RewritePlan::new();
    for info in &infos {
        plan.add_merge(&part, info, &sites);
    }
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
    let results = plan.execute(&mut part, Some(&pool)).expect("execute");
    assert_eq!(serial_results, results);
    assert!(
        results[0].touched.contains(&merged2),
        "merge2's body calls f1 and must be rewritten by merge1's side: {results:?}"
    );
    assert_eq!(print_module(&serial), print_module(&part));
    assert!(fmsa::ir::verify_module(&part).is_empty(), "{:?}", fmsa::ir::verify_module(&part));
}
