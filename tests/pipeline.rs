//! Cross-crate pipeline tests: calibrated benchmark modules through the
//! full technique stack, with the paper's qualitative claims asserted.

use fmsa::core::baselines::{run_identical, run_soa};
use fmsa::core::pass::run_fmsa;
use fmsa::interp::Interpreter;
use fmsa::target::{CostModel, TargetArch};
use fmsa::workloads::{add_driver, mibench_suite, spec_suite, DriverConfig};
use fmsa::Config;
use std::collections::HashSet;

fn desc(name: &str) -> fmsa::workloads::BenchDesc {
    spec_suite()
        .into_iter()
        .chain(mibench_suite())
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("{name} in suites"))
}

#[test]
fn technique_ordering_on_small_spec_benchmarks() {
    // The paper's core qualitative claim, checked per benchmark:
    // FMSA >= SOA >= Identical in code-size reduction.
    for name in ["433.milc", "462.libquantum", "482.sphinx3", "458.sjeng"] {
        let d = desc(name);
        let base = d.build();
        let cm = CostModel::new(TargetArch::X86_64);
        let before = cm.module_size(&base);
        let mut mi = base.clone();
        run_identical(&mut mi, TargetArch::X86_64);
        let ident = before - cm.module_size(&mi);
        let mut ms = base.clone();
        run_identical(&mut ms, TargetArch::X86_64);
        run_soa(&mut ms, TargetArch::X86_64);
        let soa = before - cm.module_size(&ms);
        let mut mf = base.clone();
        run_identical(&mut mf, TargetArch::X86_64);
        run_fmsa(&mut mf, &Config::new().threshold(10).fmsa_options());
        let fmsa = before - cm.module_size(&mf);
        assert!(fmsa >= soa, "{name}: FMSA {fmsa} < SOA {soa}");
        assert!(soa >= ident, "{name}: SOA {soa} < Identical {ident}");
        assert!(fmsa > 0, "{name}: FMSA should find something");
        assert!(fmsa_ir::verify_module(&mf).is_empty());
    }
}

#[test]
fn modules_stay_valid_through_all_techniques() {
    for d in spec_suite().into_iter().filter(|d| d.paper_fns <= 250) {
        let base = d.build();
        let mut m = base.clone();
        run_identical(&mut m, TargetArch::X86_64);
        run_soa(&mut m, TargetArch::X86_64);
        run_fmsa(&mut m, &Config::new().threshold(5).fmsa_options());
        let errs = fmsa_ir::verify_module(&m);
        assert!(errs.is_empty(), "{}: {errs:?}", d.name);
    }
}

#[test]
fn driver_behaviour_preserved_through_full_pipeline() {
    // End-to-end differential: the __driver's observable output must be
    // identical before and after the whole merging pipeline.
    let d = desc("433.milc");
    let mut base = d.build();
    add_driver(&mut base, &DriverConfig::default());
    let run = |m: &fmsa::ir::Module| {
        let mut interp = Interpreter::new(m);
        interp.set_fuel(100_000_000);
        let r = interp.run("__driver", vec![]).expect("driver runs");
        (r.output, r.steps)
    };
    let (out_before, steps_before) = run(&base);
    let mut merged = base.clone();
    run_identical(&mut merged, TargetArch::X86_64);
    let cfg = Config::new().threshold(10).exclude(["__driver"]);
    let stats = run_fmsa(&mut merged, &cfg.fmsa_options());
    assert!(stats.merges > 0, "milc-like module should merge something");
    let (out_after, steps_after) = run(&merged);
    assert_eq!(out_before, out_after, "observable behaviour changed");
    // Fig. 14's effect: overhead exists but is small.
    let overhead = steps_after as f64 / steps_before as f64;
    assert!(
        (0.99..1.25).contains(&overhead),
        "dynamic-instruction overhead out of range: {overhead}"
    );
}

#[test]
fn hot_function_exclusion_reduces_overhead() {
    // §V-D: preventing hot functions from merging removes the runtime
    // impact while retaining some code-size reduction.
    let d = desc("433.milc");
    let r = fmsa_bench_harness_runtime(&d);
    assert!(r.0 <= r.1 + 1e-9, "hot-excluded {} should not exceed plain {}", r.0, r.1);
}

// Minimal local copy of the harness runtime experiment to avoid making
// fmsa-bench a dependency of the root test crate.
fn fmsa_bench_harness_runtime(d: &fmsa::workloads::BenchDesc) -> (f64, f64) {
    let mut base = d.build();
    add_driver(&mut base, &DriverConfig::default());
    let run = |m: &fmsa::ir::Module| {
        let mut interp = Interpreter::new(m);
        interp.set_fuel(100_000_000);
        let r = interp.run("__driver", vec![]).expect("driver runs");
        let hot = interp.profile().hot_functions(0.05);
        (r.steps, hot)
    };
    let (steps_before, hot) = run(&base);
    let merge = |exclude: Vec<String>| {
        let mut m = base.clone();
        run_identical(&mut m, TargetArch::X86_64);
        let mut ex: HashSet<String> = exclude.into_iter().collect();
        ex.insert("__driver".to_owned());
        let cfg = Config::new().threshold(1).exclude(ex);
        run_fmsa(&mut m, &cfg.fmsa_options());
        run(&m).0 as f64 / steps_before as f64
    };
    (merge(hot), merge(Vec::new()))
}

#[test]
fn mibench_tiny_benchmarks_find_nothing() {
    // Table II: the tiny C programs have no mergeable pairs for anyone.
    for name in ["CRC32", "qsort", "dijkstra"] {
        let d = desc(name);
        let mut m = d.build();
        let i = run_identical(&mut m, TargetArch::X86_64);
        let s = run_soa(&mut m, TargetArch::X86_64);
        let f = run_fmsa(&mut m, &Config::new().threshold(10).fmsa_options());
        assert_eq!((i.merges, s.merges, f.merges), (0, 0, 0), "{name} should have no merges");
    }
}

#[test]
fn rijndael_giant_pair_dominates() {
    // §V-B: FMSA merges the two giants; other techniques find nothing.
    let d = desc("rijndael");
    let base = d.build();
    let cm = CostModel::new(TargetArch::X86_64);
    let before = cm.module_size(&base);
    let mut m = base.clone();
    assert_eq!(run_identical(&mut m, TargetArch::X86_64).merges, 0);
    assert_eq!(run_soa(&mut m, TargetArch::X86_64).merges, 0);
    let stats = run_fmsa(&mut m, &Config::new().fmsa_options());
    assert_eq!(stats.merges, 1);
    let red = fmsa::target::reduction_percent(before, cm.module_size(&m));
    assert!((15.0..30.0).contains(&red), "rijndael reduction should be paper-sized (20.6%): {red}");
}

#[test]
fn oracle_never_loses_to_greedy() {
    for name in ["462.libquantum", "473.astar", "429.mcf"] {
        let d = desc(name);
        let base = d.build();
        let cm = CostModel::new(TargetArch::X86_64);
        let mut g = base.clone();
        run_fmsa(&mut g, &Config::new().threshold(1).fmsa_options());
        let mut o = base.clone();
        run_fmsa(&mut o, &Config::new().oracle(true).fmsa_options());
        assert!(
            cm.module_size(&o) <= cm.module_size(&g),
            "{name}: oracle should be at least as good"
        );
    }
}

#[test]
fn both_targets_agree_qualitatively() {
    // §V-B: "We observe similar trends of code size reduction on both
    // target architectures."
    let d = desc("445.gobmk");
    let base = d.build();
    let mut reductions = Vec::new();
    for arch in TargetArch::ALL {
        let cm = CostModel::new(arch);
        let before = cm.module_size(&base);
        let mut m = base.clone();
        run_identical(&mut m, arch);
        let cfg = Config::new().threshold(1).arch(arch);
        run_fmsa(&mut m, &cfg.fmsa_options());
        reductions.push(fmsa::target::reduction_percent(before, cm.module_size(&m)));
    }
    assert!(reductions.iter().all(|&r| r > 0.0), "{reductions:?}");
    let diff = (reductions[0] - reductions[1]).abs();
    assert!(diff < 5.0, "targets should agree within second-order effects: {reductions:?}");
}
