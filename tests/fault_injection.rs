//! Graceful-degradation tests at clone-swarm scale: a deterministic
//! [`FaultPlan`] forces panics, verifier failures, and poisoned scratch
//! modules inside the pipeline, and the run must still complete with
//! every planned casualty quarantined, every unplanned pair merged, and
//! bit-identical output at 1, 2, and 4 threads.
//!
//! The default swarm keeps `cargo test` fast; the acceptance-scale
//! 5000-function swarm runs under `--ignored` (and in release mode via
//! `experiments faults`).

use fmsa_core::pipeline::run_fmsa_pipeline;
use fmsa_core::quarantine::QuarantineStage;
use fmsa_core::Config;
use fmsa_core::{silence_injected_panics, FaultPlan, FaultSite, SearchStrategy};
use fmsa_ir::printer::print_module;
use fmsa_ir::verify_module;
use fmsa_workloads::{clone_swarm_module, SwarmConfig};

fn swarm_cfg() -> Config {
    Config::new().threshold(5).search(SearchStrategy::lsh())
}

/// The full matrix for one swarm size: run the injected plan at 1/2/4
/// threads and check completion, quarantine provenance, determinism, and
/// counter/log agreement.
fn check_injected_plan(functions: usize) {
    silence_injected_panics();
    let base = clone_swarm_module(&SwarmConfig::with_functions(functions));
    let plan = FaultPlan::new(0xFA17, 20_000, &FaultSite::ALL);
    let mut reference: Option<(String, String, usize)> = None;
    for threads in [1usize, 2, 4] {
        let mut m = base.clone();
        let cfg = swarm_cfg().parallel(threads).faults(plan);
        let stats = run_fmsa_pipeline(&mut m, &cfg.fmsa_options(), &cfg.pipeline_options());
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "faulted run verifies at {threads} threads: {errs:?}");
        assert!(stats.merges > 0, "the swarm still merges around the faults");

        let p = stats.pipeline.expect("pipeline stats");
        assert!(p.quarantined() > 0, "the plan must actually fire at {threads} threads");
        assert_eq!(
            p.quarantined(),
            stats.quarantine.len(),
            "counters and quarantine log agree at {threads} threads"
        );
        // Quarantine provenance: the swarm itself is healthy, so every
        // entry must trace back to a planned fault at its stage.
        for e in stats.quarantine.entries() {
            let site = match e.stage {
                QuarantineStage::Align => FaultSite::Align,
                QuarantineStage::Codegen => FaultSite::Codegen,
                QuarantineStage::Verify => FaultSite::Verify,
                QuarantineStage::Mismatch => panic!("no differential stage in this test"),
            };
            assert!(
                plan.fires(site, &e.f1, &e.f2),
                "pair {},{} quarantined at {} without a planned fault",
                e.f1,
                e.f2,
                e.stage
            );
            assert_eq!(e.seed, plan.seed, "entries record the reproducer seed");
        }

        let text = print_module(&m);
        let summary = stats.quarantine.summary();
        match &reference {
            None => reference = Some((text, summary, stats.merges)),
            Some((rt, rs, rm)) => {
                assert_eq!(*rm, stats.merges, "merge count identical at {threads} threads");
                assert_eq!(*rs, summary, "quarantine set identical at {threads} threads");
                assert!(*rt == text, "output bit-identical at {threads} threads");
            }
        }
    }
}

#[test]
fn injected_faults_quarantine_only_planned_pairs_across_threads() {
    check_injected_plan(600);
}

/// Acceptance-scale swarm; slow in debug builds, so opt-in.
#[test]
#[ignore = "5000-function swarm: run with --ignored or via `experiments faults`"]
fn injected_faults_on_the_5000_function_swarm() {
    check_injected_plan(5000);
}

#[test]
fn scratch_poison_degrades_without_changing_output() {
    silence_injected_panics();
    let base = clone_swarm_module(&SwarmConfig::with_functions(600));
    let cfg = swarm_cfg().parallel(4);

    let mut clean = base.clone();
    run_fmsa_pipeline(&mut clean, &cfg.fmsa_options(), &cfg.pipeline_options());
    let clean_text = print_module(&clean);

    // Poison every speculative scratch body: the commit stage must catch
    // each one, fall back to inline codegen, and produce the exact output
    // of the fault-free run with nothing quarantined.
    let poison = FaultPlan::new(0xFA17, 1_000_000, &[FaultSite::ScratchPoison]);
    let mut m = base.clone();
    let pcfg = cfg.faults(poison);
    let stats = run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
    let p = stats.pipeline.expect("pipeline stats");
    assert!(p.poisoned_scratch > 0, "the poison plan fired");
    assert_eq!(p.quarantined(), 0, "spec-wave faults degrade, they never quarantine");
    assert!(stats.quarantine.is_empty());
    assert!(print_module(&m) == clean_text, "degraded output equals the fault-free run");
}
