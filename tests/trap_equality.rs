//! Trap-equality coverage: merging must preserve *failure* semantics,
//! not just successful results. For each trap class — integer division
//! by zero, out-of-bounds linear-memory access, and `unreachable` — a
//! family of mergeable functions is built, merged, and executed on
//! trapping inputs; the pre- and post-merge interpreters must agree on
//! the exact trap, including its payload (the faulting address and
//! access length for out-of-bounds).

use fmsa_core::pass::run_fmsa;
use fmsa_core::Config;
use fmsa_interp::batch::add_memory_driver;
use fmsa_interp::{Interpreter, Trap, Val};
use fmsa_ir::{verify_module, FuncBuilder, Linkage, Module, Value};

/// Pads a builder with a family-shaped arithmetic body so the clones are
/// long (and similar) enough to merge profitably.
fn pad_body(b: &mut FuncBuilder, mut v: Value, salt: i32) -> Value {
    for j in 0..10 {
        v = b.add(v, b.const_i32(j));
        v = b.mul(v, b.const_i32(3));
        v = b.xor(v, b.const_i32(j * 7));
    }
    b.xor(v, b.const_i32(salt))
}

/// `div{k}(x, y)`: arithmetic on `x`, then `sdiv` by `y` — traps
/// [`Trap::DivisionByZero`] when `y == 0`.
fn add_div_family(m: &mut Module, count: usize) {
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
    for k in 0..count {
        let f = m.create_function(format!("div{k}"), fn_ty);
        m.func_mut(f).linkage = Linkage::External;
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let v = pad_body(&mut b, Value::Param(0), k as i32 + 11);
        let r = b.sdiv(v, Value::Param(1));
        b.ret(Some(r));
    }
}

/// `unr{k}(x)`: branches to an `unreachable` block when `x == 42`.
fn add_unreachable_family(m: &mut Module, count: usize) {
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for k in 0..count {
        let f = m.create_function(format!("unr{k}"), fn_ty);
        m.func_mut(f).linkage = Linkage::External;
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        let dead = b.block("dead");
        let cont = b.block("cont");
        b.switch_to(entry);
        let c42 = b.const_i32(42);
        let cmp = b.icmp(fmsa_ir::IntPredicate::Eq, Value::Param(0), c42);
        b.condbr(cmp, dead, cont);
        b.switch_to(dead);
        b.unreachable();
        b.switch_to(cont);
        let v = pad_body(&mut b, Value::Param(0), k as i32 + 23);
        b.ret(Some(v));
    }
}

/// `oob{k}(mem, idx)`: stores/loads an `i32` at `mem[idx]` — mirrors the
/// wasm lowering's address idiom (`zext` + `gep i8 -> i32`), so an index
/// near the end of the 64 KiB buffer traps [`Trap::OutOfBounds`].
fn add_oob_family(m: &mut Module, count: usize) {
    let i32t = m.types.i32();
    let i8t = m.types.i8();
    let i64t = m.types.i64();
    let memt = m.types.ptr(i8t);
    let fn_ty = m.types.func(i32t, vec![memt, i32t]);
    for k in 0..count {
        let f = m.create_function(format!("oob{k}"), fn_ty);
        m.func_mut(f).linkage = Linkage::External;
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let v = pad_body(&mut b, Value::Param(1), k as i32 + 37);
        let addr = b.zext(Value::Param(1), i64t);
        let p = b.gep(i8t, Value::Param(0), vec![addr], i32t);
        b.store(v, p);
        let r = b.load(p);
        b.ret(Some(r));
    }
}

/// Builds the module, merges a copy, wires memory drivers onto both, and
/// returns `(pre, post)` ready for differential execution.
fn merged_pair() -> (Module, Module) {
    let mut pre = Module::new("traps");
    add_div_family(&mut pre, 3);
    add_unreachable_family(&mut pre, 3);
    add_oob_family(&mut pre, 3);
    assert!(verify_module(&pre).is_empty());

    let mut post = pre.clone();
    let stats = run_fmsa(&mut post, &Config::new().threshold(5).fmsa_options());
    assert!(stats.merges > 0, "the trap families must merge: {stats:?}");
    assert!(verify_module(&post).is_empty());

    for k in 0..3 {
        let name = format!("oob{k}");
        let a = add_memory_driver(&mut pre, &name);
        let b = add_memory_driver(&mut post, &name);
        assert_eq!(a, b);
    }
    (pre, post)
}

fn run_both(
    pre: &Module,
    post: &Module,
    name: &str,
    args: Vec<Val>,
) -> (Result<Val, Trap>, Result<Val, Trap>) {
    let to_val =
        |r: Result<fmsa_interp::RunResult, Trap>| r.map(|out| out.value.expect("non-void"));
    let r_pre = to_val(Interpreter::new(pre).run(name, args.clone()));
    let r_post = to_val(Interpreter::new(post).run(name, args));
    (r_pre, r_post)
}

#[test]
fn division_by_zero_traps_identically() {
    let (pre, post) = merged_pair();
    for k in 0..3 {
        let name = format!("div{k}");
        let (a, b) = run_both(&pre, &post, &name, vec![Val::i32(17), Val::i32(0)]);
        assert_eq!(a, Err(Trap::DivisionByZero), "{name} pre");
        assert_eq!(a, b, "{name}: pre and post traps agree");
        // Non-trapping inputs still agree on values.
        let (a, b) = run_both(&pre, &post, &name, vec![Val::i32(17), Val::i32(5)]);
        assert!(a.is_ok(), "{name} succeeds on y != 0");
        assert_eq!(a, b, "{name}: results agree");
    }
}

#[test]
fn unreachable_traps_identically() {
    let (pre, post) = merged_pair();
    for k in 0..3 {
        let name = format!("unr{k}");
        let (a, b) = run_both(&pre, &post, &name, vec![Val::i32(42)]);
        assert_eq!(a, Err(Trap::UnreachableExecuted), "{name} pre");
        assert_eq!(a, b, "{name}: pre and post traps agree");
        let (a, b) = run_both(&pre, &post, &name, vec![Val::i32(41)]);
        assert!(a.is_ok(), "{name} succeeds off the dead branch");
        assert_eq!(a, b, "{name}: results agree");
    }
}

#[test]
fn out_of_bounds_traps_identically_with_address() {
    let (pre, post) = merged_pair();
    for k in 0..3 {
        let name = format!("__drive_oob{k}");
        // The interpreter's stack is one bump region checked as a whole,
        // and merged functions may append tiny demoted-slot allocas after
        // the driver's buffer — so probe far past the 64 KiB buffer (and
        // any frame slack) rather than one byte over its edge.
        let (a, b) = run_both(&pre, &post, &name, vec![Val::i32(0x0100_0000)]);
        match &a {
            Err(Trap::OutOfBounds { len, .. }) => assert_eq!(*len, 4, "{name}: i32 access"),
            other => panic!("{name}: expected OutOfBounds, got {other:?}"),
        }
        // The driver's buffer is both modules' first allocation, so even
        // the faulting *address* must match, not just the trap kind.
        assert_eq!(a, b, "{name}: pre and post traps agree exactly");
        let (a, b) = run_both(&pre, &post, &name, vec![Val::i32(1000)]);
        assert!(a.is_ok(), "{name} succeeds in bounds");
        assert_eq!(a, b, "{name}: results agree");
    }
}
