//! Cross-crate tests of the band-sharded LSH index: parity with a flat
//! single-map reference model under arbitrary insert/remove/query
//! interleavings (same shortlists, same ranked candidate order), batch
//! insertion vs one-at-a-time insertion, and the persistent
//! [`FunctionStore`]'s restart rebuild into the sharded layout.

use fmsa::core::fingerprint::Fingerprint;
use fmsa::core::ranking::{rank_candidates, Candidate};
use fmsa::core::search::{CandidateSearch, LshConfig, LshSearch};
use fmsa::core::store::{canonical_function_text, ContentHash, FunctionStore};
use fmsa::ir::{FuncBuilder, FuncId, Module, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: one flat bucket table keyed by the *actual band
/// rows* `(band, chunk)` instead of per-band sharded maps of row
/// hashes. Collision in a band is defined semantically — equal rows —
/// so the model is layout-free; the production index must shortlist
/// exactly the same co-members.
#[derive(Default)]
struct FlatLsh {
    rows: usize,
    signatures: HashMap<FuncId, Vec<u64>>,
    buckets: HashMap<(usize, Vec<u64>), Vec<FuncId>>,
}

impl FlatLsh {
    fn new(cfg: LshConfig) -> FlatLsh {
        FlatLsh { rows: cfg.rows(), ..FlatLsh::default() }
    }

    fn insert(&mut self, func: FuncId, sig: Vec<u64>) {
        self.remove(func);
        for (band, chunk) in sig.chunks_exact(self.rows).enumerate() {
            self.buckets.entry((band, chunk.to_vec())).or_default().push(func);
        }
        self.signatures.insert(func, sig);
    }

    fn remove(&mut self, func: FuncId) {
        let Some(sig) = self.signatures.remove(&func) else {
            return;
        };
        for (band, chunk) in sig.chunks_exact(self.rows).enumerate() {
            if let Some(members) = self.buckets.get_mut(&(band, chunk.to_vec())) {
                members.retain(|&f| f != func);
            }
        }
    }

    fn shortlist(&self, subject: FuncId) -> Vec<FuncId> {
        let Some(sig) = self.signatures.get(&subject) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (band, chunk) in sig.chunks_exact(self.rows).enumerate() {
            if let Some(members) = self.buckets.get(&(band, chunk.to_vec())) {
                out.extend(members.iter().copied().filter(|&f| f != subject));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A pool of functions with enough shape variety that some pairs share
/// LSH bands and others don't: chains of adds/muls/xors whose lengths
/// derive from a seed.
fn shape_pool(seed: u64, count: usize) -> (Module, Vec<FuncId>) {
    let mut m = Module::new("shapes");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    let mut ids = Vec::new();
    for k in 0..count {
        // Few distinct shapes → plenty of near-duplicates in the pool.
        let shape = (seed as usize + k) % 4;
        let f = m.create_function(format!("f{k}"), fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..(6 + shape * 3) {
            v = b.add(v, b.const_i32(shape as i32 + 1));
        }
        for _ in 0..(2 + shape) {
            v = b.mul(v, b.const_i32(3));
        }
        // A distinct trailing constant keeps every body textually unique
        // (the store must not dedupe family members into one entry) while
        // same-shape functions stay fingerprint-identical near-clones.
        v = b.xor(v, b.const_i32(k as i32));
        b.ret(Some(v));
        ids.push(f);
    }
    (m, ids)
}

fn fingerprints(m: &Module, ids: &[FuncId]) -> HashMap<FuncId, Fingerprint> {
    ids.iter().map(|&f| (f, Fingerprint::of(m, f))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Under any interleaving of inserts, removals, and queries, the
    /// sharded index shortlists exactly the functions the flat
    /// rows-equality model predicts, and ranking the shortlist yields
    /// the same candidates in the same order.
    #[test]
    fn sharded_index_matches_flat_model(
        seed in 0u64..1_000,
        ops in prop::collection::vec(0usize..48, 1..80),
    ) {
        let (m, ids) = shape_pool(seed, 16);
        let fps = fingerprints(&m, &ids);
        let cfg = LshConfig::default();
        let mut sharded = LshSearch::new(cfg);
        let mut flat = FlatLsh::new(cfg);
        for &v in &ops {
            let (op, k) = (v % 3, v / 3);
            let f = ids[k];
            match op {
                0 => {
                    sharded.insert(f, &fps[&f]);
                    flat.insert(f, sharded.signature_of(f).expect("just inserted").to_vec());
                }
                1 => {
                    sharded.remove(f);
                    flat.remove(f);
                }
                _ => {
                    prop_assert_eq!(sharded.shortlist(f), flat.shortlist(f));
                    let got: Vec<Candidate> = sharded.candidates(f, &fps[&f], &fps, 5, 0.0);
                    let want: Vec<Candidate> = rank_candidates(
                        f,
                        &fps[&f],
                        flat.shortlist(f).into_iter().map(|g| (g, &fps[&g])),
                        5,
                        0.0,
                    );
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final sweep: every function's view agrees, indexed or not.
        for &f in &ids {
            prop_assert_eq!(sharded.shortlist(f), flat.shortlist(f));
        }
    }

    /// Parallel batch insertion (signatures hashed on the pool, one
    /// worker per band shard) is indistinguishable from serial
    /// one-at-a-time insertion.
    #[test]
    fn batch_insert_matches_serial_insert(seed in 0u64..1_000, count in 2usize..24) {
        let (m, ids) = shape_pool(seed, count);
        let fps = fingerprints(&m, &ids);
        let mut serial = LshSearch::new(LshConfig::default());
        for &f in &ids {
            serial.insert(f, &fps[&f]);
        }
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let mut batched = LshSearch::new(LshConfig::default());
        let items: Vec<(FuncId, &Fingerprint)> = ids.iter().map(|&f| (f, &fps[&f])).collect();
        batched.insert_batch(&items, Some(&pool));
        prop_assert_eq!(serial.len(), batched.len());
        for &f in &ids {
            prop_assert_eq!(serial.signature_of(f), batched.signature_of(f));
            prop_assert_eq!(serial.shortlist(f), batched.shortlist(f));
            let a: Vec<Candidate> = serial.candidates(f, &fps[&f], &fps, 5, 0.0);
            let b: Vec<Candidate> = batched.candidates(f, &fps[&f], &fps, 5, 0.0);
            prop_assert_eq!(a, b);
        }
    }
}

/// The persistent store's restart path rebuilds the sharded index from
/// durable signatures: `similar()` answers must be identical before and
/// after a reopen.
#[test]
fn store_restart_rebuilds_sharded_index() {
    let n = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!("fmsa-lsh-rebuild-{}-{n}", std::process::id()));
    let (m, ids) = shape_pool(7, 20);
    let hashes: Vec<ContentHash> = ids
        .iter()
        .map(|&f| ContentHash::of_bytes(canonical_function_text(&m, f).as_bytes()))
        .collect();
    let before: Vec<_> = {
        let mut store = FunctionStore::open(&dir).expect("open");
        store.ingest_module(&m).expect("ingest");
        hashes.iter().map(|&h| store.similar(h, 5)).collect()
    };
    assert!(
        before.iter().any(|s| !s.is_empty()),
        "shape pool must produce at least one similar pair"
    );
    let reopened = FunctionStore::open(&dir).expect("reopen");
    let after: Vec<_> = hashes.iter().map(|&h| reopened.similar(h, 5)).collect();
    assert_eq!(before, after, "rebuilt index must answer identically");
    std::fs::remove_dir_all(&dir).ok();
}
