//! Cross-crate tests of scratch-module speculative codegen and the
//! transplant that commits it: for any pair the pass would merge, building
//! the merged function detached (scratch module + transplant) must be
//! indistinguishable — printer output, ids, type-store evolution — from
//! building it directly in the main module.

use fmsa::core::fingerprint::Fingerprint;
use fmsa::core::linearize::linearize;
use fmsa::core::merge::{
    align_with, commit_speculative, merge_pair_aligned, speculate_merge, MergeConfig,
};
use fmsa::core::ranking::rank_candidates;
use fmsa::ir::printer::print_module;
use fmsa::ir::{FuncId, Module};
use fmsa::workloads::{clone_swarm_module, spec_suite, SwarmConfig};
use proptest::prelude::*;

/// Merges `(f1, f2)` both ways — direct codegen vs speculative build +
/// transplant — and asserts the results are byte-identical. Returns
/// whether the pair merged at all.
fn assert_round_trip(base: &Module, f1: FuncId, f2: FuncId) -> bool {
    let config = MergeConfig::default();
    let seq1 = linearize(base.func(f1));
    let seq2 = linearize(base.func(f2));
    if seq1.is_empty() || seq2.is_empty() {
        return false;
    }
    let al = align_with(base, f1, f2, &seq1, &seq2, &config.scoring, config.algorithm);

    let mut direct = base.clone();
    let direct_info =
        merge_pair_aligned(&mut direct, f1, f2, seq1.clone(), seq2.clone(), al.clone(), &config);

    let mut spec_m = base.clone();
    let spec = speculate_merge(&spec_m, f1, f2, &seq1, &seq2, al, &config);

    match (direct_info, spec) {
        (Ok(di), Ok(sp)) => {
            let si = commit_speculative(&mut spec_m, sp, &config).expect("transplant commits");
            assert_eq!(
                print_module(&direct),
                print_module(&spec_m),
                "transplanted module must print identically to the directly built one"
            );
            assert_eq!(di.merged, si.merged, "same FuncId allocation");
            assert_eq!(di.params, si.params);
            assert_eq!(di.ret, si.ret);
            assert_eq!(di.has_func_id, si.has_func_id);
            assert_eq!(
                spec_m.types.len(),
                direct.types.len(),
                "type-store evolution must match (MinHash depends on type-id values)"
            );
            assert!(
                fmsa::ir::verify_module(&spec_m).is_empty(),
                "{:?}",
                fmsa::ir::verify_module(&spec_m)
            );
            true
        }
        (direct_err, spec_err) => {
            // Failures must agree too: a pair direct codegen rejects must
            // be rejected by the speculative build, and vice versa.
            assert_eq!(
                direct_err.is_ok(),
                spec_err.is_ok(),
                "direct={direct_err:?} speculative-path-ok={}",
                spec_err.is_ok()
            );
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Transplanting a scratch-built merged function round-trips: for a
    /// random swarm module and each subject's top-ranked candidate, the
    /// printer output of the transplanted module equals the sequentially
    /// built one.
    #[test]
    fn transplant_round_trips_on_swarm_pairs(
        functions in 6usize..24,
        family_size in 2usize..5,
        clone_percent in 30usize..95,
        target_size in 8usize..28,
        seed in 0u64..1_000,
    ) {
        let cfg = SwarmConfig {
            functions,
            family_size,
            clone_fraction: clone_percent as f64 / 100.0,
            target_size,
            seed,
        };
        let base = clone_swarm_module(&cfg);
        let ids = base.func_ids();
        let fps: Vec<(FuncId, Fingerprint)> =
            ids.iter().map(|&f| (f, Fingerprint::of(&base, f))).collect();
        let mut merged_any = false;
        for (k, &(f1, ref fp1)) in fps.iter().enumerate() {
            let others =
                fps.iter().enumerate().filter(|&(j, _)| j != k).map(|(_, (f, fp))| (*f, fp));
            let Some(best) = rank_candidates(f1, fp1, others, 1, 0.0).into_iter().next() else {
                continue;
            };
            merged_any |= assert_round_trip(&base, f1, best.func);
        }
        prop_assert!(merged_any, "swarm module produced no mergeable pair");
    }
}

/// The round trip also holds on the calibrated suite modules (realistic
/// CFGs: branches, loops, calls, exception handling).
#[test]
fn transplant_round_trips_on_suite_pairs() {
    let mut checked = 0;
    for d in spec_suite().into_iter().filter(|d| d.paper_fns <= 300) {
        let base = d.build();
        let ids = base.func_ids();
        let fps: Vec<(FuncId, Fingerprint)> =
            ids.iter().map(|&f| (f, Fingerprint::of(&base, f))).collect();
        for (k, &(f1, ref fp1)) in fps.iter().enumerate().take(12) {
            let others =
                fps.iter().enumerate().filter(|&(j, _)| j != k).map(|(_, (f, fp))| (*f, fp));
            let Some(best) = rank_candidates(f1, fp1, others, 1, 0.0).into_iter().next() else {
                continue;
            };
            if assert_round_trip(&base, f1, best.func) {
                checked += 1;
            }
        }
    }
    assert!(checked > 5, "suite sample too small: {checked}");
}
