//! Cross-crate tests of the parallel merge pipeline: bit-identity with
//! the sequential driver, determinism, commit-stage conflict
//! re-validation under heavy candidate sharing, and the alignment
//! budget's behaviour on paper-scale and adversarial inputs.

use fmsa::align::{AlignmentBudget, BudgetFallback};
use fmsa::core::pass::run_fmsa;
use fmsa::core::pipeline::run_fmsa_pipeline;
use fmsa::core::SearchStrategy;
use fmsa::ir::printer::print_module;
use fmsa::ir::Module;
use fmsa::workloads::{clone_swarm_module, spec_suite, SwarmConfig};
use fmsa::Config;
use proptest::prelude::*;

fn run_both(base: &Module, cfg: &Config) -> (String, String) {
    let mut m_seq = base.clone();
    run_fmsa(&mut m_seq, &cfg.fmsa_options());
    let mut m_par = base.clone();
    run_fmsa_pipeline(&mut m_par, &cfg.fmsa_options(), &cfg.pipeline_options());
    (print_module(&m_seq), print_module(&m_par))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The pipeline replays the sequential decision procedure exactly:
    /// for any swarm shape and any thread count, the optimized module is
    /// bit-identical to the sequential pass.
    #[test]
    fn pipeline_is_bit_identical_to_sequential(
        functions in 20usize..70,
        family_size in 2usize..5,
        clone_percent in 20usize..90,
        target_size in 10usize..30,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let clone_fraction = clone_percent as f64 / 100.0;
        let cfg = SwarmConfig { functions, family_size, clone_fraction, target_size, seed };
        let base = clone_swarm_module(&cfg);
        let cfg = Config::new().threshold(5).search(SearchStrategy::lsh()).parallel(threads);
        let (seq, par) = run_both(&base, &cfg);
        prop_assert_eq!(seq, par);
    }

    /// Fixed seed in, fixed module out: the pipeline is deterministic
    /// regardless of worker scheduling.
    #[test]
    fn pipeline_is_deterministic_for_fixed_seed(seed in 0u64..1_000) {
        let cfg = SwarmConfig { functions: 40, seed, ..SwarmConfig::default() };
        let base = clone_swarm_module(&cfg);
        let cfg = Config::new().threshold(5).search(SearchStrategy::lsh()).parallel(4);
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut m = base.clone();
            run_fmsa_pipeline(&mut m, &cfg.fmsa_options(), &cfg.pipeline_options());
            runs.push(print_module(&m));
        }
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}

/// Families of near-clones with cross-calls and mixed linkage: deletable
/// sides with live callers and thunked (external) sides force the
/// batched commit's conflict fallback, while caller-less families
/// exercise the deferred path — both in one module.
fn calling_swarm(seed: u64, families: usize, members: usize) -> Module {
    use fmsa::ir::{FuncBuilder, Linkage, Value};
    let mut m = Module::new("calling_swarm");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut ids = Vec::new();
    for fam in 0..families {
        for mem in 0..members {
            let f = m.create_function(format!("fam{fam}_m{mem}"), fn_ty);
            if next() % 100 < 20 {
                m.func_mut(f).linkage = Linkage::External;
            }
            ids.push(f);
        }
    }
    for (k, &f) in ids.iter().enumerate().collect::<Vec<_>>() {
        let fam = k / members;
        let callee = ids[(next() as usize) % ids.len()];
        let cross_call = next() % 100 < 40 && callee != f;
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for j in 0..10 {
            v = b.add(v, b.const_i32((fam * 3 + j) as i32));
            v = b.mul(v, Value::Param(0));
        }
        if cross_call {
            v = b.call(callee, vec![v]);
        }
        v = b.xor(v, b.const_i32((k % members) as i32));
        b.ret(Some(v));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Batched generation commits are decision-invisible: with
    /// cross-calls and mixed linkage driving both the deferred path and
    /// the conflict fallback, any thread count produces the sequential
    /// driver's exact module text, and every merge is accounted to
    /// exactly one of the two commit paths.
    #[test]
    fn batched_commits_are_bit_identical_to_sequential(
        seed in 0u64..10_000,
        families in 3usize..8,
        members in 2usize..4,
        threads in 1usize..9,
    ) {
        let base = calling_swarm(seed, families, members);
        let cfg = Config::new().threshold(5).parallel(threads);
        let mut m_seq = base.clone();
        let seq = run_fmsa(&mut m_seq, &cfg.fmsa_options());
        let mut m_par = base.clone();
        let par = run_fmsa_pipeline(&mut m_par, &cfg.fmsa_options(), &cfg.pipeline_options());
        prop_assert_eq!(print_module(&m_seq), print_module(&m_par));
        prop_assert_eq!(seq.merges, par.merges);
        let p = par.pipeline.expect("pipeline stats");
        prop_assert_eq!(p.batched_merges + p.batch_fallback, par.merges);
    }
}

/// Pinned: overlapping caller partitions must take the fallback path
/// (flush + immediate single-merge plan), caller-less merges must defer,
/// and both must reproduce the serial text at 1/2/4/8 threads. The two
/// counters are also thread-invariant — the commit decision procedure
/// never depends on the worker count.
#[test]
fn caller_overlap_falls_back_and_matches_serial() {
    let base = calling_swarm(0x0ba7_c4ed, 6, 3);
    let mut m_seq = base.clone();
    let seq = run_fmsa(&mut m_seq, &Config::new().threshold(5).fmsa_options());
    assert!(seq.merges > 3, "workload must merge: {}", seq.merges);
    let seq_text = print_module(&m_seq);
    let mut counters: Option<(usize, usize)> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = Config::new().threshold(5).parallel(threads);
        let mut m_par = base.clone();
        let par = run_fmsa_pipeline(&mut m_par, &cfg.fmsa_options(), &cfg.pipeline_options());
        assert_eq!(seq_text, print_module(&m_par), "module text at {threads} threads");
        let p = par.pipeline.expect("pipeline stats");
        assert_eq!(p.batched_merges + p.batch_fallback, par.merges, "{p:?}");
        match counters {
            None => counters = Some((p.batched_merges, p.batch_fallback)),
            Some(c) => assert_eq!(
                c,
                (p.batched_merges, p.batch_fallback),
                "commit-path split diverged at {threads} threads"
            ),
        }
        assert!(fmsa::ir::verify_module(&m_par).is_empty());
    }
    let (batched, fallback) = counters.expect("ran");
    assert!(fallback > 0, "cross-calls must force the conflict fallback");
    assert!(batched > 0, "caller-less merges must defer");
}

/// Large clone families make many scheduled attempts share functions:
/// when one member merges, every other scheduled attempt touching it is
/// stale and must be re-validated by the commit stage.
#[test]
fn stress_shared_candidates_exercise_conflict_revalidation() {
    let cfg = SwarmConfig {
        functions: 160,
        family_size: 8,
        clone_fraction: 0.8,
        target_size: 20,
        seed: 0xfeed_beef,
    };
    let base = clone_swarm_module(&cfg);
    let cfg = Config::new().threshold(8).search(SearchStrategy::lsh()).parallel(4);
    let mut m_seq = base.clone();
    let seq = run_fmsa(&mut m_seq, &cfg.fmsa_options());
    assert!(seq.merges > 10, "stress module must merge heavily: {}", seq.merges);
    let mut m_par = base.clone();
    let par = run_fmsa_pipeline(&mut m_par, &cfg.fmsa_options(), &cfg.pipeline_options());
    assert_eq!(print_module(&m_seq), print_module(&m_par));
    let p = par.pipeline.expect("pipeline stats");
    assert!(p.recomputed > 0, "shared candidates must invalidate speculative attempts: {p:?}");
    assert!(p.reused > 0, "independent attempts must still be reused: {p:?}");
    assert!(fmsa::ir::verify_module(&m_par).is_empty());
}

/// With speculative codegen enabled (the default), every thread count
/// must produce the identical merge list and module text — and on the
/// swarm workload the majority of speculative bodies must be committed
/// unmodified (the transplant path is the common case, not the fallback).
#[test]
fn stress_speculative_codegen_across_thread_counts() {
    let cfg = SwarmConfig {
        functions: 120,
        family_size: 6,
        clone_fraction: 0.7,
        target_size: 18,
        seed: 0x5bec_c0de,
    };
    let base = clone_swarm_module(&cfg);
    let cfg = Config::new().threshold(5).search(SearchStrategy::lsh());
    let mut m_seq = base.clone();
    let seq = run_fmsa(&mut m_seq, &cfg.fmsa_options());
    let seq_text = print_module(&m_seq);
    assert!(seq.merges > 5, "stress module must merge: {}", seq.merges);
    for threads in [1usize, 2, 4, 8] {
        let mut m_par = base.clone();
        let pcfg = cfg.clone().parallel(threads);
        let par = run_fmsa_pipeline(&mut m_par, &pcfg.fmsa_options(), &pcfg.pipeline_options());
        assert_eq!(seq.merges, par.merges, "merge count at {threads} threads");
        assert_eq!(
            seq.rank_positions, par.rank_positions,
            "merge list (rank order) at {threads} threads"
        );
        assert_eq!(seq_text, print_module(&m_par), "module text at {threads} threads");
        let p = par.pipeline.expect("pipeline stats");
        if threads == 1 {
            assert_eq!(p.spec_built, 0, "one thread runs without speculation: {p:?}");
        } else {
            assert!(p.spec_built > 0, "speculative bodies must be built: {p:?}");
            assert!(p.spec_committed > 0, "transplants must land: {p:?}");
            let rate = p.spec_hit_rate().expect("bodies reached commit");
            assert!(
                rate >= 0.5,
                "≥50% of speculative bodies must commit unmodified, got {rate:.2}: {p:?}"
            );
        }
        assert!(fmsa::ir::verify_module(&m_par).is_empty());
    }
}

/// The pipeline also replays the sequential pass on the calibrated suite
/// modules (exact search, the paper's configuration).
#[test]
fn pipeline_matches_sequential_on_suite_modules() {
    for d in spec_suite().into_iter().filter(|d| d.paper_fns <= 400) {
        let base = d.build();
        let cfg = Config::new().threshold(5).parallel(3);
        let (seq, par) = run_both(&base, &cfg);
        assert_eq!(seq, par, "{} diverged", d.name);
    }
}

/// The default budget must never trigger at paper scale — that is what
/// keeps the pipeline bit-identical to the (budget-less) sequential
/// driver on every evaluated workload.
#[test]
fn default_budget_is_invisible_on_suite_modules() {
    use fmsa::core::linearize;
    let budget = AlignmentBudget::default();
    for d in spec_suite() {
        let m = d.build();
        for f in m.func_ids() {
            let n = linearize(m.func(f)).len();
            assert_eq!(
                budget.plan(n, n),
                fmsa::align::AlignPlan::Full,
                "{}: function of {n} entries hit the default budget",
                d.name
            );
        }
    }
}

/// Adversarially long functions trip the length cap: the pair is
/// abandoned instead of stalling a worker on a huge DP matrix.
#[test]
fn length_cap_triggers_on_adversarially_long_functions() {
    use fmsa::ir::{FuncBuilder, Value};
    let mut m = Module::new("adversarial");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for name in ["huge_a", "huge_b"] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for k in 0..3_000 {
            v = b.add(v, b.const_i32(k % 7));
        }
        b.ret(Some(v));
    }
    let cfg = Config::new()
        .threshold(5)
        .budget(AlignmentBudget {
            full_matrix_cells: usize::MAX,
            fallback: BudgetFallback::Banded(16),
            max_len: 1_000, // both functions exceed this
        })
        .parallel(2);
    let mut merged = m.clone();
    let stats = run_fmsa_pipeline(&mut merged, &cfg.fmsa_options(), &cfg.pipeline_options());
    assert_eq!(stats.merges, 0, "capped pairs must not merge");
    assert!(stats.pipeline.expect("stats").budget_skipped > 0);
    // Without the cap the same pair merges fine.
    let cfg = Config::new().threshold(5).parallel(2);
    let mut merged = m.clone();
    let stats = run_fmsa_pipeline(&mut merged, &cfg.fmsa_options(), &cfg.pipeline_options());
    assert_eq!(stats.merges, 1);
}

/// Over the cell budget, the banded fallback still merges near-identical
/// clones: their alignment hugs the diagonal, so the band loses nothing.
#[test]
fn banded_fallback_still_merges_clone_families() {
    let cfg = SwarmConfig {
        functions: 12,
        family_size: 2,
        clone_fraction: 1.0,
        target_size: 120,
        seed: 0x0dd_ba11,
    };
    let base = clone_swarm_module(&cfg);
    let cfg = Config::new()
        .threshold(5)
        .budget(AlignmentBudget {
            full_matrix_cells: 2_000, // far below the ~100²+ matrices here
            fallback: BudgetFallback::Banded(32),
            max_len: usize::MAX,
        })
        .parallel(2);
    let mut m_banded = base.clone();
    let banded = run_fmsa_pipeline(&mut m_banded, &cfg.fmsa_options(), &cfg.pipeline_options());
    let mut m_full = base.clone();
    let full = run_fmsa(&mut m_full, &Config::new().threshold(5).fmsa_options());
    assert!(banded.merges > 0);
    assert_eq!(banded.merges, full.merges, "banded must not lose clone-family merges");
    assert!(fmsa::ir::verify_module(&m_banded).is_empty());
    // The banded run's reduction stays within the CI parity budget (10%)
    // of the exact run.
    let (rb, rf) = (banded.reduction_percent(), full.reduction_percent());
    assert!((rf - rb).abs() <= 0.10 * rf.abs().max(1e-9), "banded {rb:.3}% vs full {rf:.3}%");
}

/// On the seed suite modules, the profitability estimate computed from a
/// banded(64) alignment stays within the CI parity budget of the one
/// computed from the full-matrix alignment, for exactly the pairs the
/// pass would explore (each subject's top-ranked candidate).
#[test]
fn banded_estimate_within_error_bound_on_suite_modules() {
    use fmsa::core::fingerprint::Fingerprint;
    use fmsa::core::linearize::linearize;
    use fmsa::core::profitability::optimistic_delta;
    use fmsa::core::ranking::rank_candidates;
    use fmsa::core::EquivCtx;
    use fmsa::target::CostModel;
    use fmsa_align::{banded_needleman_wunsch, needleman_wunsch, ScoringScheme};
    let cm = CostModel::new(fmsa::target::TargetArch::X86_64);
    let scheme = ScoringScheme::default();
    let mut pairs_checked = 0;
    for d in spec_suite().into_iter().filter(|d| d.paper_fns <= 300) {
        let m = d.build();
        let ids = m.func_ids();
        let fps: Vec<(fmsa::ir::FuncId, Fingerprint)> =
            ids.iter().map(|&f| (f, Fingerprint::of(&m, f))).collect();
        for (k, &(f1, ref fp1)) in fps.iter().enumerate().take(20) {
            let others =
                fps.iter().enumerate().filter(|&(j, _)| j != k).map(|(_, (f, fp))| (*f, fp));
            let Some(best) = rank_candidates(f1, fp1, others, 1, 0.0).into_iter().next() else {
                continue;
            };
            let f2 = best.func;
            let seq1 = linearize(m.func(f1));
            let seq2 = linearize(m.func(f2));
            if seq1.is_empty() || seq2.is_empty() {
                continue;
            }
            let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
            let eq = |a: &fmsa::core::Entry, b: &fmsa::core::Entry| ctx.entries_equivalent(a, b);
            let full = needleman_wunsch(&seq1, &seq2, eq, &scheme);
            let banded = banded_needleman_wunsch(&seq1, &seq2, eq, &scheme, 64);
            let est_full = optimistic_delta(&m, &cm, f1, f2, &seq1, &seq2, &full);
            let est_banded = optimistic_delta(&m, &cm, f1, f2, &seq1, &seq2, &banded);
            let slack = (0.10 * est_full.abs() as f64).max(8.0);
            assert!(
                (est_full - est_banded).abs() as f64 <= slack,
                "{}: pair {:?}/{:?} full-est {est_full} vs banded-est {est_banded}",
                d.name,
                m.func(f1).name,
                m.func(f2).name
            );
            pairs_checked += 1;
        }
    }
    assert!(pairs_checked > 30, "suite sample too small: {pairs_checked}");
}
