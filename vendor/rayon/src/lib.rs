//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of the rayon API this workspace uses: a
//! fixed-size [`ThreadPool`] built by [`ThreadPoolBuilder`], rayon-style
//! [`scope`]s whose tasks may borrow from the enclosing stack frame and
//! may spawn further tasks, and a [`ThreadPool::par_map`] convenience
//! (the stand-in's replacement for `par_iter().map().collect()`).
//!
//! Tasks are queued behind a mutex and drained by `num_threads` OS
//! threads created per scope via [`std::thread::scope`] (the calling
//! thread participates as one of the workers, so a pool of one thread
//! runs everything inline without spawning). That favours simplicity
//! over work-stealing throughput, which is the right trade for this
//! workspace: tasks are coarse (one sequence alignment each), so queue
//! contention is negligible. No `unsafe` is used; borrow soundness comes
//! entirely from `std::thread::scope`.
//!
//! A panicking task poisons the scope and the panic is propagated to the
//! caller when the scope joins, like rayon.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of threads the machine can usefully run, rayon's default pool
/// size (`available_parallelism`, or 1 when unknown).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builds a [`ThreadPool`], mirroring rayon's builder API.
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` (the default) means
    /// [`current_num_threads`].
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the stand-in; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 { current_num_threads() } else { self.num_threads };
        Ok(ThreadPool { threads })
    }
}

/// Pool construction error. The stand-in never produces one; the type
/// exists so callers can keep rayon's `build()?` shape.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A fixed-size task pool.
///
/// Unlike real rayon the stand-in keeps no persistent worker threads:
/// each [`ThreadPool::scope`] call spawns its workers scoped to that
/// call. Spawn cost is tens of microseconds per thread, irrelevant next
/// to the coarse task batches this workspace schedules.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Number of worker threads (including the calling thread).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with a [`Scope`] on which tasks can be spawned; returns
    /// when every spawned task (including transitively spawned ones) has
    /// completed.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
        R: Send,
    {
        let sc = Scope {
            state: Mutex::new(ScopeState { queue: VecDeque::new(), running: 0, closed: false }),
            cv: Condvar::new(),
        };
        std::thread::scope(|ts| {
            let mut workers = Vec::new();
            for _ in 1..self.threads {
                workers.push(ts.spawn(|| sc.work()));
            }
            let result = op(&sc);
            sc.close();
            // The calling thread drains the queue alongside the workers.
            sc.work();
            for w in workers {
                // Propagate worker panics like rayon does at join.
                if let Err(p) = w.join() {
                    std::panic::resume_unwind(p);
                }
            }
            result
        })
    }

    /// Applies `f` to every element of `items` on the pool and collects
    /// the results in input order. Stand-in convenience standing in for
    /// `items.par_iter().enumerate().map(f).collect()`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(k, it)| f(k, it)).collect();
        }
        let next = AtomicUsize::new(0);
        let buckets: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        self.scope(|s| {
            for _ in 0..self.threads.min(items.len()) {
                s.spawn(|_| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        local.push((k, f(k, &items[k])));
                    }
                    buckets.lock().expect("par_map buckets").extend(local);
                });
            }
        });
        let mut pairs = buckets.into_inner().expect("par_map buckets");
        pairs.sort_by_key(|&(k, _)| k);
        debug_assert_eq!(pairs.len(), items.len());
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

/// Runs `op` with a scope on a default-size pool ([`current_num_threads`]
/// workers), mirroring `rayon::scope`.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
    R: Send,
{
    ThreadPool { threads: current_num_threads() }.scope(op)
}

type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

struct ScopeState<'scope> {
    queue: VecDeque<Task<'scope>>,
    /// Tasks currently executing on some worker.
    running: usize,
    /// Whether the scope closure has returned (no more external spawns).
    closed: bool,
}

/// A scope handle on which tasks borrowing `'scope` data can be spawned.
pub struct Scope<'scope> {
    state: Mutex<ScopeState<'scope>>,
    cv: Condvar,
}

impl<'scope> Scope<'scope> {
    /// Enqueues `body` to run on the pool. The task receives the scope
    /// and may spawn further tasks.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let mut st = self.state.lock().expect("scope state");
        st.queue.push_back(Box::new(body));
        drop(st);
        self.cv.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("scope state").closed = true;
        self.cv.notify_all();
    }

    /// Worker loop: pop and run tasks until the scope is closed and idle.
    fn work(&self) {
        loop {
            let task = {
                let mut st = self.state.lock().expect("scope state");
                loop {
                    if let Some(t) = st.queue.pop_front() {
                        st.running += 1;
                        break Some(t);
                    }
                    if st.closed && st.running == 0 {
                        break None;
                    }
                    st = self.cv.wait(st).expect("scope state");
                }
            };
            let Some(task) = task else {
                // Wake any sibling still waiting so it can observe idle.
                self.cv.notify_all();
                return;
            };
            task(self);
            let mut st = self.state.lock().expect("scope state");
            st.running -= 1;
            let idle = st.running == 0 && st.queue.is_empty();
            drop(st);
            if idle {
                self.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn builder_defaults_to_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().expect("pool");
        assert_eq!(pool.current_num_threads(), current_num_threads());
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn scope_runs_all_tasks_and_returns_value() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let hits = AtomicU64::new(0);
        let out = pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn tasks_borrow_stack_data() {
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        pool.scope(|s| {
            for chunk in data.chunks(64) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), data.iter().sum::<u64>());
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 5] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            let items: Vec<usize> = (0..257).collect();
            let out = pool.par_map(&items, |k, &x| {
                assert_eq!(k, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let tid = std::thread::current().id();
        pool.scope(|s| {
            s.spawn(move |_| {
                assert_eq!(std::thread::current().id(), tid);
            });
        });
    }

    #[test]
    fn free_scope_function_works() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }
}
