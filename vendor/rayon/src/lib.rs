//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of the rayon API this workspace uses: a
//! fixed-size [`ThreadPool`] built by [`ThreadPoolBuilder`], rayon-style
//! [`scope`]s whose tasks may borrow from the enclosing stack frame and
//! may spawn further tasks, and a [`ThreadPool::par_map`] convenience
//! (the stand-in's replacement for `par_iter().map().collect()`).
//!
//! # Scheduler
//!
//! The pool keeps `num_threads - 1` **persistent worker threads** (the
//! calling thread participates as the last worker whenever it waits on a
//! scope, so a pool of one thread runs everything inline without
//! spawning). Workers **park** on a condvar while the queue is empty and
//! are woken per spawned job, so an idle pool costs nothing between
//! generations. Jobs live in one shared deque; to keep lock traffic off
//! the hot path each worker drains a **chunk** of jobs proportional to
//! `queue_len / threads` (capped) per lock acquisition instead of one
//! job at a time.
//!
//! Scope soundness: a spawned closure may borrow from the spawning stack
//! frame (`'scope`), but worker threads are `'static`, so the queued job
//! is lifetime-erased with one `transmute`. This is sound for the same
//! reason rayon's registry is: [`ThreadPool::scope`] does not return —
//! and therefore the borrowed frame cannot be popped — until the scope's
//! completion latch reports every spawned job (including transitively
//! spawned ones) finished. A panicking job is caught on the worker,
//! stored in the latch, and re-thrown from `scope` at join, like rayon.
//!
//! Dropping the last clone of a [`ThreadPool`] shuts the workers down
//! and joins them.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of threads the machine can usefully run, rayon's default pool
/// size (`available_parallelism`, or 1 when unknown).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builds a [`ThreadPool`], mirroring rayon's builder API.
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` (the default) means
    /// [`current_num_threads`].
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the stand-in; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 { current_num_threads() } else { self.num_threads };
        Ok(ThreadPool::with_threads(threads))
    }
}

/// Pool construction error. The stand-in never produces one; the type
/// exists so callers can keep rayon's `build()?` shape.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A queued, lifetime-erased job. The erasure is sound because the
/// enqueuing scope blocks until its latch counts the job complete.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state: the job deque plus the shutdown flag, all under
/// one mutex/condvar pair (jobs are coarse — an alignment, a codegen, a
/// chunk of hash queries — so a single lock is not the bottleneck; the
/// chunked drain below keeps acquisitions per job amortized well under
/// one).
struct PoolState {
    shared: Mutex<PoolShared>,
    cv: Condvar,
    threads: usize,
}

struct PoolShared {
    queue: VecDeque<Job>,
    shutdown: bool,
}

impl PoolState {
    fn push(&self, job: Job) {
        let mut sh = self.shared.lock().expect("pool state");
        sh.queue.push_back(job);
        drop(sh);
        self.cv.notify_one();
    }

    /// Persistent worker loop: drain chunks, park when empty.
    fn worker(self: &Arc<PoolState>) {
        const MAX_CHUNK: usize = 8;
        let mut sh = self.shared.lock().expect("pool state");
        loop {
            if !sh.queue.is_empty() {
                // Proportional chunking: leave work for the other
                // workers, but amortize the lock over several jobs when
                // the queue is deep.
                let n = (sh.queue.len() / self.threads.max(1)).clamp(1, MAX_CHUNK);
                let jobs: Vec<Job> = sh.queue.drain(..n).collect();
                drop(sh);
                for job in jobs {
                    job();
                }
                sh = self.shared.lock().expect("pool state");
            } else if sh.shutdown {
                return;
            } else {
                sh = self.cv.wait(sh).expect("pool state");
            }
        }
    }

    /// Caller-side drain: run queued jobs until `latch` reports the
    /// caller's scope complete. Unlike a worker, takes one job at a time
    /// (to re-check the latch promptly) and exits on completion rather
    /// than shutdown.
    fn drain_until(&self, latch: &Latch) {
        let mut sh = self.shared.lock().expect("pool state");
        loop {
            if let Some(job) = sh.queue.pop_front() {
                drop(sh);
                job();
                sh = self.shared.lock().expect("pool state");
                continue;
            }
            if latch.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Queue empty but jobs of this scope still running on
            // workers (or about to spawn successors): park alongside the
            // workers. Latch completion notifies this condvar.
            sh = self.cv.wait(sh).expect("pool state");
        }
    }
}

/// Per-scope completion latch: counts outstanding jobs and stores the
/// first panic. Completion notifies the pool condvar (under the pool
/// lock, so the caller's empty-queue check cannot miss the wakeup).
struct Latch {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new() -> Latch {
        Latch { pending: AtomicUsize::new(0), panic: Mutex::new(None) }
    }

    fn complete(&self, state: &PoolState) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the pool lock so the notification is ordered after
            // any caller currently deciding to wait.
            drop(state.shared.lock().expect("pool state"));
            state.cv.notify_all();
        }
    }

    fn store_panic(&self, p: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("latch panic");
        if slot.is_none() {
            *slot = Some(p);
        }
    }
}

/// Joins the persistent workers when the last [`ThreadPool`] clone is
/// dropped. Kept separate from [`PoolState`] (which the workers
/// themselves hold) so the shutdown edge is the registry drop, not a
/// reference-count race.
struct Registry {
    state: Arc<PoolState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.state.shared.lock().expect("pool state").shutdown = true;
        self.state.cv.notify_all();
        for h in self.handles.drain(..) {
            // Workers never unwind (every job is caught into its scope
            // latch), so a join error here is a stand-in bug.
            h.join().expect("pool worker exited cleanly");
        }
    }
}

/// A fixed-size task pool with persistent, parked worker threads.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same workers;
/// the workers shut down when the last clone is dropped.
#[derive(Clone)]
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.registry.state.threads).finish()
    }
}

impl ThreadPool {
    fn with_threads(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let state = Arc::new(PoolState {
            shared: Mutex::new(PoolShared { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            threads,
        });
        // The calling thread is one of the `threads` workers (it drains
        // the queue whenever it waits on a scope), so only threads - 1
        // OS threads are spawned.
        let handles = (1..threads)
            .map(|k| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("fmsa-pool-{k}"))
                    .spawn(move || state.worker())
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { registry: Arc::new(Registry { state, handles }) }
    }

    /// Number of worker threads (including the calling thread).
    pub fn current_num_threads(&self) -> usize {
        self.registry.state.threads
    }

    /// Runs `op` with a [`Scope`] on which tasks can be spawned; returns
    /// when every spawned task (including transitively spawned ones) has
    /// completed. A panic in any task (or in `op` itself) is re-thrown
    /// here, after all tasks have completed.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
        R: Send,
    {
        let state = &self.registry.state;
        let sc = Scope {
            latch: Arc::new(Latch::new()),
            state: Arc::clone(state),
            _marker: std::marker::PhantomData,
        };
        // `op` may panic after spawning; the drain below must still run
        // before this frame unwinds, or queued jobs would read a popped
        // stack frame.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| op(&sc)));
        state.drain_until(&sc.latch);
        if let Some(p) = sc.latch.panic.lock().expect("latch panic").take() {
            std::panic::resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Applies `f` to every element of `items` on the pool and collects
    /// the results in input order. Stand-in convenience standing in for
    /// `items.par_iter().enumerate().map(f).collect()`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = self.registry.state.threads;
        if threads <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(k, it)| f(k, it)).collect();
        }
        let next = AtomicUsize::new(0);
        let buckets: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        self.scope(|s| {
            for _ in 0..threads.min(items.len()) {
                s.spawn(|_| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        local.push((k, f(k, &items[k])));
                    }
                    buckets.lock().expect("par_map buckets").extend(local);
                });
            }
        });
        let mut pairs = buckets.into_inner().expect("par_map buckets");
        pairs.sort_by_key(|&(k, _)| k);
        debug_assert_eq!(pairs.len(), items.len());
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

/// The process-global pool backing the free [`scope`] function,
/// mirroring rayon's implicit global pool (sized by
/// [`current_num_threads`], created on first use, lives for the
/// process).
fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::with_threads(current_num_threads()))
}

/// Runs `op` with a scope on the global pool ([`current_num_threads`]
/// workers), mirroring `rayon::scope`.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
    R: Send,
{
    global_pool().scope(op)
}

/// A scope handle on which tasks borrowing `'scope` data can be spawned.
pub struct Scope<'scope> {
    latch: Arc<Latch>,
    state: Arc<PoolState>,
    /// Invariant over `'scope`, as in rayon: the scope must not be
    /// usable with a shorter borrow than the tasks capture.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

/// Raw pointer to the caller's stack-pinned [`Scope`], shipped to the
/// worker inside the job closure. Valid for the job's whole run: `scope`
/// does not return (the frame is not popped) until the latch counts this
/// job complete.
struct ScopePtr(*const ());

impl ScopePtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field.
    fn get(&self) -> *const () {
        self.0
    }
}

// SAFETY: the pointer crosses threads only inside a job whose lifetime
// is bounded by the scope's latch (see above); `Scope` itself is
// `Sync` (latch + Arc'd pool state).
unsafe impl Send for ScopePtr {}

impl<'scope> Scope<'scope> {
    /// Enqueues `body` to run on the pool. The task receives the scope
    /// and may spawn further tasks onto it.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // Count before queueing so the latch can never read 0 while this
        // job (or a successor it spawns) is outstanding.
        self.latch.pending.fetch_add(1, Ordering::AcqRel);
        let latch = Arc::clone(&self.latch);
        let state = Arc::clone(&self.state);
        let scope_ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: see ScopePtr — the scope outlives every job it
            // counts.
            let scope: &Scope<'scope> = unsafe { &*(scope_ptr.get() as *const Scope<'scope>) };
            if let Err(p) = std::panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                latch.store_panic(p);
            }
            latch.complete(&state);
        });
        // SAFETY: lifetime erasure of the queued job; sound because the
        // scope blocks until the latch counts it complete, so every
        // `'scope` borrow it carries stays live while it can run.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.state.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn builder_defaults_to_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().expect("pool");
        assert_eq!(pool.current_num_threads(), current_num_threads());
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn scope_runs_all_tasks_and_returns_value() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let hits = AtomicU64::new(0);
        let out = pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn tasks_borrow_stack_data() {
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        pool.scope(|s| {
            for chunk in data.chunks(64) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), data.iter().sum::<u64>());
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 5] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            let items: Vec<usize> = (0..257).collect();
            let out = pool.par_map(&items, |k, &x| {
                assert_eq!(k, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let tid = std::thread::current().id();
        pool.scope(|s| {
            s.spawn(move |_| {
                assert_eq!(std::thread::current().id(), tid);
            });
        });
    }

    #[test]
    fn free_scope_function_works() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn workers_persist_across_scopes() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        for _ in 0..20 {
            pool.scope(|s| {
                for _ in 0..16 {
                    s.spawn(|_| {
                        seen.lock().unwrap().insert(std::thread::current().id());
                        // Hold the worker briefly so siblings get a turn.
                        std::thread::yield_now();
                    });
                }
            });
        }
        // 3 persistent workers + the caller; across 20 scopes no more
        // distinct thread ids than that may ever appear.
        assert!(seen.lock().unwrap().len() <= 4);
    }

    #[test]
    fn task_panic_propagates_at_join() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(r.is_err(), "task panic must re-throw at scope join");
        // The pool must remain usable after a panicked scope.
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clones_share_workers_and_drop_cleanly() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        let clone = pool.clone();
        let hits = AtomicU64::new(0);
        clone.scope(|s| {
            for _ in 0..10 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(pool);
        // Workers stay alive while any clone exists.
        clone.scope(|s| {
            s.spawn(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 11);
    }
}
