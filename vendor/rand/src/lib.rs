//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact API subset the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over the
//! integer types the generators draw. The generator is a fixed xoshiro256++
//! so every workload module is deterministic across runs and platforms —
//! which is all the callers rely on (they never ask for cryptographic or
//! statistical guarantees).

#![warn(missing_docs)]

pub mod rngs {
    //! Concrete RNG types (`StdRng` only).

    /// A deterministic xoshiro256++ generator, seeded via SplitMix64 like
    /// the real `rand::rngs::StdRng::seed_from_u64` path.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface: only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the full state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be produced by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`. `hi > lo` must hold.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                debug_assert!(span > 0, "gen_range requires a non-empty range");
                // Multiply-shift bounded sampling (Lemire); the tiny bias is
                // irrelevant for workload generation.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(r as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        usize::sample_range(rng, lo, hi + 1)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample(self, rng: &mut StdRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        u64::sample_range(rng, lo, hi + 1)
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Draws a value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53-bit uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen();
            let y: u64 = b.gen();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let z = rng.gen_range(-4i32..9);
            assert!((-4..9).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
