//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this vendored
//! crate implements the API subset the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `Bencher::{iter, iter_batched}` — as a
//! plain wall-clock harness: it calibrates an iteration count to a small
//! time budget, measures, and prints `name: median time/iter`. No
//! statistics beyond min/median, no plots, no baselines; enough to compare
//! implementations on one machine, which is what the benches are for.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup per
/// measured call either way, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: many iterations per batch in real criterion.
    SmallInput,
    /// Large input: one iteration per batch in real criterion.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// Target measurement time for this benchmark.
    budget: Duration,
    /// Collected per-iteration times, filled by `iter`/`iter_batched`.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher { budget, samples: Vec::new() }
    }

    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, also used to scale the iteration count.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let reps = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..reps {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let reps = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..reps {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut xs = self.samples.clone();
        xs.sort();
        let median = xs[xs.len() / 2];
        let min = xs[0];
        println!("{name:<48} median {:>12?}  min {:>12?}  ({} iters)", median, min, xs.len());
    }
}

/// Top-level benchmark registry handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep whole suites fast; the stand-in is for relative comparison.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(&id.to_string());
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name));
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
