//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! [`Just`], range strategies, `prop::collection::vec`, `prop_map`, and
//! [`ProptestConfig`] with a `cases` knob. Cases are generated from a
//! deterministic RNG seeded per test name, so failures reproduce; there is
//! no shrinking — the failing inputs are printed instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::fmt;
use std::rc::Rc;

/// Deterministic per-test RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for one test case from the test-name hash and case
    /// index.
    pub fn for_case(test_hash: u64, case: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }
}

/// FNV-1a hash of a test name, used to derive per-test seeds.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed with a message.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for API shape).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type returned by a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted-but-ignored knob kept for struct-update compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A source of random values. Unlike real proptest there is no value tree
/// and no shrinking; a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies unify
    /// (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] backend).
#[derive(Clone)]
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.0.len());
        self.0[k].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies over tuples, generated
// element-wise left to right — so a property can draw correlated groups
// like `(offset, bitmask, kill_point)` in one binding.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    //! Collection strategies (`vec` only).

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace as the prelude exposes it.
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, returning a failure instead of
/// panicking so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let hash = $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(hash, case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case} failed: {msg}\n  inputs: {}",
                                [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+]
                                    .join(", ")
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(k in prop_oneof![Just(1i32), (5i32..8).prop_map(|v| v * 10)]) {
            prop_assert!(k == 1 || (50..80).contains(&k));
        }

        #[test]
        fn tuple_strategies_generate_element_wise(
            (a, b, c) in (0u8..4, 10usize..20, Just("x")),
        ) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
            prop_assert_eq!(c, "x");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(1, 2);
        let mut b = crate::TestRng::for_case(1, 2);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
