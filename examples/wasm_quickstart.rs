//! Decode a generated wasm corpus, merge it, and report the reduction —
//! the end-to-end "real binary" path of the reproduction.
//!
//! ```text
//! cargo run --release --example wasm_quickstart [n_functions]
//! ```

use fmsa::core::pipeline::run_fmsa_pipeline;
use fmsa::workloads::{wasm_fixture_bytes, WasmFixtureConfig};
use fmsa::Config;

fn main() {
    let n = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let cfg = WasmFixtureConfig::with_functions(n);
    let bytes = wasm_fixture_bytes(&cfg);
    println!("corpus: {n} functions, {} wasm bytes", bytes.len());
    let mut module = fmsa::wasm::load_wasm(&bytes, "wasm-corpus").expect("decodes and lowers");
    assert!(fmsa::ir::verify_module(&module).is_empty());
    println!("lowered: {} functions, {} instructions", module.func_count(), module.total_insts());
    let merge = Config::new().threshold(5).parallel(0);
    let stats = run_fmsa_pipeline(&mut module, &merge.fmsa_options(), &merge.pipeline_options());
    println!(
        "merges: {} (attempted {}), size {} -> {} ({:.2}% reduction)",
        stats.merges,
        stats.attempted,
        stats.size_before,
        stats.size_after,
        stats.reduction_percent()
    );
}
