//! Template-instantiation deduplication: the C++-flavoured scenario behind
//! dealII/xalancbmk in the paper. A "template" is instantiated at several
//! types; identical merging folds the exact duplicates, but only FMSA also
//! fuses the instantiations that differ in operand widths — and the
//! feedback loop then merges merged functions again.
//!
//! ```sh
//! cargo run --example template_dedup
//! ```

use fmsa::core::baselines::run_identical;
use fmsa::core::pass::run_fmsa;
use fmsa::ir::Module;
use fmsa::target::{reduction_percent, CostModel, TargetArch};
use fmsa::workloads::{generate_function, GenConfig, Variant};
use fmsa::Config;

fn build_instantiations() -> Module {
    let mut m = Module::new("templates");
    let cfg =
        GenConfig { target_size: 60, flex_weight: 8, flexf_weight: 6, ..GenConfig::default() };
    // One "template" stamped out six times: two identical i32 copies, two
    // identical i64 copies, one float and one double instantiation.
    let seed = 4242;
    for (name, variant) in [
        ("vec_sum_i32", Variant::exact()),
        ("vec_sum_i32_dup", Variant::exact()),
        ("vec_sum_i64", Variant::typed(true, false)),
        ("vec_sum_i64_dup", Variant::typed(true, false)),
        ("vec_sum_f32", Variant::typed(false, false)),
        ("vec_sum_f64", Variant::typed(false, true)),
    ] {
        generate_function(&mut m, name, seed, &cfg, &variant);
    }
    m
}

fn main() {
    let module = build_instantiations();
    let cm = CostModel::new(TargetArch::X86_64);
    let before = cm.module_size(&module);
    println!(
        "6 instantiations of one template, {} instructions total, {} bytes",
        module.total_insts(),
        before
    );

    // What a production compiler achieves.
    let mut m_ident = module.clone();
    let ident = run_identical(&mut m_ident, TargetArch::X86_64);
    println!(
        "\nIdentical merging folds the exact duplicates: {} merges, {:.1}% reduction",
        ident.merges,
        ident.reduction_percent()
    );

    // FMSA with the feedback loop.
    let mut m = module.clone();
    run_identical(&mut m, TargetArch::X86_64);
    let stats = run_fmsa(&mut m, &Config::new().threshold(5).fmsa_options());
    let after = cm.module_size(&m);
    println!(
        "FMSA merges across types too: {} more merges, {:.1}% total reduction",
        stats.merges,
        reduction_percent(before, after)
    );
    println!("\nsurviving functions:");
    for f in m.func_ids() {
        let func = m.func(f);
        if !func.is_declaration() {
            println!("  @{:<28} {:>4} insts", func.name, func.inst_count());
        }
    }
}
