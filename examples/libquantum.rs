//! The paper's Fig. 2 motivating example: `quantum_cond_phase_inv` vs
//! `quantum_cond_phase` from 462.libquantum — same signature, but one has
//! an extra guarded early-exit block (different CFGs) and the angle's sign
//! differs. Only FMSA can merge them; we verify behaviour is preserved by
//! running both versions through the interpreter.
//!
//! ```sh
//! cargo run --example libquantum
//! ```

use fmsa::core::merge::{merge_pair, MergeConfig};
use fmsa::core::thunks::commit_merge;
use fmsa::interp::{HostRegistry, HostResult, Interpreter, Val};
use fmsa::ir::{printer, Linkage};
use fmsa::workloads::motivating::libquantum_cond_phase_module;

fn hosts() -> HostRegistry {
    let mut reg = HostRegistry::with_defaults();
    // quantum_objcode_put: pretend object-code recording is off (returns 0).
    reg.register("quantum_objcode_put", |_, _| Ok(HostResult::Return(Val::i32(0))));
    reg.register("quantum_cexp", |_, args| {
        let x = args[0].as_f64().expect("angle");
        Ok(HostResult::Return(Val::F64(x.cos())))
    });
    reg.register("quantum_decohere", |_, _| Ok(HostResult::Return(Val::bool(false))));
    reg
}

fn main() {
    let (module, _, _) = libquantum_cond_phase_module();
    println!("--- the Fig. 2 pair ---");
    print!("{}", printer::print_module(&module));

    let mut merged_mod = module.clone();
    let f1 = merged_mod.func_by_name("quantum_cond_phase_inv").expect("exists");
    let f2 = merged_mod.func_by_name("quantum_cond_phase").expect("exists");
    // External linkage keeps both entry points alive as thunks.
    merged_mod.func_mut(f1).linkage = Linkage::External;
    merged_mod.func_mut(f2).linkage = Linkage::External;
    let info = merge_pair(&mut merged_mod, f1, f2, &MergeConfig::default())
        .expect("FMSA merges the Fig. 2 pair");
    commit_merge(&mut merged_mod, &info).expect("commit");
    println!("\n--- after FMSA ({} matched / {} columns) ---", info.matches, info.alignment_len);
    print!("{}", printer::print_module(&merged_mod));

    // Differential check through the interpreter.
    let inputs = [(5, 2, 4), (3, 1, 2), (8, 3, 0)];
    for name in ["quantum_cond_phase_inv", "quantum_cond_phase"] {
        for (control, target, size) in inputs {
            let args = vec![Val::i32(control), Val::i32(target), Val::i32(size), Val::i64(0)];
            let before = Interpreter::new(&module)
                .with_host(hosts())
                .run(name, args.clone())
                .expect("original runs");
            let after = Interpreter::new(&merged_mod)
                .with_host(hosts())
                .run(name, args)
                .expect("thunk runs");
            assert_eq!(before.output, after.output);
            println!(
                "{name}({control},{target},{size}): identical behaviour, {} -> {} dynamic insts",
                before.steps, after.steps
            );
        }
    }
    println!("\nbehaviour preserved; the small dynamic-instruction increase is the");
    println!("func_id dispatch overhead the paper measures in Fig. 14.");
}
