//! Quickstart: build two similar functions, run the FMSA pass, and inspect
//! the merged output.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fmsa::core::pass::run_fmsa;
use fmsa::interp::{execute, Val};
use fmsa::ir::{printer, FuncBuilder, Module, Value};
use fmsa::Config;

fn main() {
    // 1. Build a module with two near-identical functions: polynomial
    //    evaluators that differ in a single coefficient.
    let mut module = Module::new("quickstart");
    let i32t = module.types.i32();
    let fn_ty = module.types.func(i32t, vec![i32t, i32t]);
    for (name, coeff) in [("poly_a", 3), ("poly_b", 5)] {
        let f = module.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut module, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let mut acc = Value::Param(0);
        for k in 1..8 {
            acc = b.mul(acc, Value::Param(1));
            acc = b.add(acc, b.const_i32(k));
        }
        acc = b.mul(acc, b.const_i32(coeff)); // the one difference
        b.ret(Some(acc));
    }
    println!("--- before merging ---");
    print!("{}", printer::print_module(&module));
    let before_a = execute(&module, "poly_a", vec![Val::i32(2), Val::i32(3)]).unwrap();
    let before_b = execute(&module, "poly_b", vec![Val::i32(2), Val::i32(3)]).unwrap();

    // 2. Run the FMSA optimization.
    let stats = run_fmsa(&mut module, &Config::new().fmsa_options());
    println!("\n--- after merging ---");
    print!("{}", printer::print_module(&module));
    println!("\nmerges committed : {}", stats.merges);
    println!(
        "module size      : {} -> {} cost-model bytes ({:.1}% smaller)",
        stats.size_before,
        stats.size_after,
        stats.reduction_percent()
    );

    // 3. The merged module still computes the same results: the originals
    //    were deleted and their call sites redirect to the merged function,
    //    so we call it directly with the function identifier.
    let merged_name = module
        .func_ids()
        .into_iter()
        .map(|f| module.func(f).name.clone())
        .find(|n| n.starts_with("__merged"))
        .expect("merged function exists");
    let run = |fid: bool| {
        execute(&module, &merged_name, vec![Val::bool(fid), Val::i32(2), Val::i32(3)])
            .expect("merged function runs")
            .value
    };
    assert_eq!(run(true), before_a.value, "func_id=1 behaves like poly_a");
    assert_eq!(run(false), before_b.value, "func_id=0 behaves like poly_b");
    println!("\nbehaviour of both originals preserved through @{merged_name}");
}
