//! The paper's Fig. 1 motivating example: `glist_add_float32` vs
//! `glist_add_float64` from 482.sphinx3 — same body, different element
//! type and parameter list. Neither production compilers (identical
//! merging) nor the prior state of the art (same signature + isomorphic
//! CFG required) can merge them; FMSA can.
//!
//! ```sh
//! cargo run --example sphinx
//! ```

use fmsa::core::baselines::{run_identical, run_soa};
use fmsa::core::merge::{merge_pair, MergeConfig};
use fmsa::core::profitability::evaluate;
use fmsa::ir::printer;
use fmsa::target::{CostModel, TargetArch};
use fmsa::workloads::motivating::sphinx_glist_module;

fn main() {
    let (module, _f32v, _f64v) = sphinx_glist_module();
    println!("--- the Fig. 1 pair ---");
    print!("{}", printer::print_module(&module));

    // Production-compiler identical merging: no effect.
    let mut m_ident = module.clone();
    let ident = run_identical(&mut m_ident, TargetArch::X86_64);
    println!("\nIdentical merging      : {} merges (paper: cannot merge them)", ident.merges);

    // State of the art (von Koch et al.): signatures differ -> no effect.
    let mut m_soa = module.clone();
    let soa = run_soa(&mut m_soa, TargetArch::X86_64);
    println!("SOA structural merging : {} merges (paper: cannot merge them)", soa.merges);

    // FMSA merges them.
    let mut m = module.clone();
    let f1 = m.func_by_name("glist_add_float32").expect("exists");
    let f2 = m.func_by_name("glist_add_float64").expect("exists");
    let info = merge_pair(&mut m, f1, f2, &MergeConfig::default()).expect("FMSA merges");
    let cm = CostModel::new(TargetArch::X86_64);
    let report = evaluate(&m, &cm, &info);
    println!(
        "FMSA                   : merged with {} matched columns of {} ({}% identity)",
        info.matches,
        info.alignment_len,
        info.matches * 100 / info.alignment_len.max(1)
    );
    println!(
        "profitability          : c(f1)={} c(f2)={} c(merged)={} epsilon={} delta={:+}",
        report.size_f1, report.size_f2, report.size_merged, report.epsilon, report.delta
    );
    println!("\n--- merged function ---");
    print!("{}", printer::print_function(&m, m.func(info.merged)));
}
