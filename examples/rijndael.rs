//! The paper's best MiBench result (§V-B): in `rijndael`, FMSA merges the
//! two giant `encrypt`/`decrypt` functions — over 70% of the program — for
//! a 20.6% object-file reduction, while Identical and SOA find nothing.
//! This example reproduces that situation on the rijndael-calibrated
//! synthetic module.
//!
//! ```sh
//! cargo run --release --example rijndael
//! ```

use fmsa::core::baselines::{run_identical, run_soa};
use fmsa::core::pass::run_fmsa;
use fmsa::target::{reduction_percent, CostModel, TargetArch};
use fmsa::Config;

fn main() {
    let desc = fmsa::workloads::mibench_suite()
        .into_iter()
        .find(|d| d.name == "rijndael")
        .expect("rijndael in the MiBench suite");
    let module = desc.build();
    let cm = CostModel::new(TargetArch::X86_64);
    let before = cm.module_size(&module);
    println!("rijndael-calibrated module: {} functions, {} bytes", module.func_count(), before);
    let (_, avg, max) = module.size_stats();
    println!("average function size {avg:.0} insts, largest {max} insts");

    let mut m = module.clone();
    let ident = run_identical(&mut m, TargetArch::X86_64);
    println!("\nIdentical: {} merges, {:.2}% reduction", ident.merges, ident.reduction_percent());

    let mut m = module.clone();
    let soa = run_soa(&mut m, TargetArch::X86_64);
    println!("SOA      : {} merges, {:.2}% reduction", soa.merges, soa.reduction_percent());

    let mut m = module.clone();
    let stats = run_fmsa(&mut m, &Config::new().fmsa_options());
    let after = cm.module_size(&m);
    println!(
        "FMSA     : {} merges, {:.2}% reduction (paper: 20.6%)",
        stats.merges,
        reduction_percent(before, after)
    );
    // The winning merge is the giant pair.
    let merged = m
        .func_ids()
        .into_iter()
        .filter(|&f| m.func(f).name.starts_with("__merged"))
        .max_by_key(|&f| m.func(f).inst_count());
    if let Some(f) = merged {
        println!(
            "largest merged function: @{} with {} instructions",
            m.func(f).name,
            m.func(f).inst_count()
        );
    }
}
