//! Calibration checks: generated modules should match the statistical
//! envelope the descriptors promise (function counts, size bands, family
//! structure), since the experiment harness depends on it.

use fmsa_workloads::{mibench_suite, spec_suite, Suite};

#[test]
fn spec_counts_scale_with_paper() {
    for desc in spec_suite() {
        let m = desc.build();
        let scaled = desc.scaled_fns();
        let n = m.func_count();
        // Families may add a handful of functions beyond the singleton
        // budget; the total should stay in the right ballpark.
        assert!(
            n >= scaled.min(4) && n <= scaled * 2 + 8,
            "{}: {} functions vs scaled {}",
            desc.name,
            n,
            scaled
        );
    }
}

#[test]
fn average_sizes_track_descriptors() {
    for desc in spec_suite() {
        if desc.paper_fns > 2000 {
            continue; // keep the test fast
        }
        let m = desc.build();
        let (_, avg, _) = m.size_stats();
        let target = desc.avg_size as f64;
        assert!(
            avg > target * 0.3 && avg < target * 2.0,
            "{}: measured avg {avg:.1} vs paper {target}",
            desc.name
        );
    }
}

#[test]
fn family_functions_come_in_pairs() {
    let desc = spec_suite().into_iter().find(|d| d.name == "433.milc").expect("milc");
    let m = desc.build();
    let names: Vec<String> = m
        .func_ids()
        .iter()
        .map(|&f| m.func(f).name.clone())
        .filter(|n| !n.starts_with("single"))
        .collect();
    for n in &names {
        assert!(n.ends_with("_a") || n.ends_with("_b"), "family member naming: {n}");
    }
    let a_count = names.iter().filter(|n| n.ends_with("_a")).count();
    let b_count = names.iter().filter(|n| n.ends_with("_b")).count();
    assert_eq!(a_count, b_count, "families are pairs");
    assert_eq!(a_count, desc.family_mix().families());
}

#[test]
fn mibench_suite_structure() {
    let suite = mibench_suite();
    assert!(suite.iter().all(|d| d.suite == Suite::MiBench));
    // The tiny benchmarks from Table II really are tiny.
    for name in ["CRC32", "qsort", "patricia"] {
        let d = suite.iter().find(|d| d.name == name).expect("present");
        assert!(d.build().func_count() <= 10, "{name} must stay small");
    }
    // ghostscript is the big one.
    let gs = suite.iter().find(|d| d.name == "ghostscript").expect("present");
    assert!(gs.build().func_count() > 100);
}

#[test]
fn modules_are_interpreter_clean() {
    // Every defined function of a small benchmark can run to completion on
    // synthesized constants — no traps, no unbounded loops.
    use fmsa_interp::{Interpreter, Val};
    let desc = spec_suite().into_iter().find(|d| d.name == "429.mcf").expect("mcf");
    let m = desc.build();
    for f in m.func_ids() {
        let func = m.func(f);
        if func.is_declaration() {
            continue;
        }
        let args: Vec<Val> = func
            .params()
            .iter()
            .map(|p| {
                if m.types.is_float(p.ty) {
                    if m.types.display(p.ty) == "float" {
                        Val::F32(3.0)
                    } else {
                        Val::F64(3.0)
                    }
                } else if m.types.int_width(p.ty) == Some(64) {
                    Val::i64(5)
                } else {
                    Val::i32(5)
                }
            })
            .collect();
        let mut interp = Interpreter::new(&m);
        interp.set_fuel(5_000_000);
        interp.run_func(f, args).unwrap_or_else(|e| panic!("{} trapped: {e}", func.name));
    }
}
