//! Synthesizes a `__driver` function that exercises a module's functions
//! with a skewed call profile — the workload side of the paper's Fig. 14
//! runtime-overhead experiment and §V-D hot-function case study.

use fmsa_ir::{FuncBuilder, FuncId, IntPredicate, Module, TyId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the driver weights its callees.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Seed for callee selection.
    pub seed: u64,
    /// Fraction (0..=1) of functions that are *hot*.
    pub hot_fraction: f64,
    /// Loop trip count for hot callees.
    pub hot_calls: u64,
    /// Loop trip count for cold callees.
    pub cold_calls: u64,
    /// At most this many callees are exercised (keeps interpretation
    /// affordable for the big modules).
    pub max_callees: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            seed: 0xd21e,
            hot_fraction: 0.1,
            hot_calls: 40,
            cold_calls: 2,
            max_callees: 60,
        }
    }
}

/// Adds a `void __driver()` to `module` that calls a sample of the defined
/// functions in bounded loops; hot callees get [`DriverConfig::hot_calls`]
/// iterations. Returns the driver id and the names of the hot functions
/// (the set the §V-D case study excludes from merging).
pub fn add_driver(module: &mut Module, config: &DriverConfig) -> (FuncId, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut callees: Vec<FuncId> = module
        .func_ids()
        .into_iter()
        .filter(|&f| {
            let func = module.func(f);
            !func.is_declaration() && driver_callable(module, f)
        })
        .collect();
    if callees.len() > config.max_callees {
        // Deterministic sample.
        for k in (1..callees.len()).rev() {
            let j = rng.gen_range(0..=k);
            callees.swap(k, j);
        }
        callees.truncate(config.max_callees);
        callees.sort();
    }
    let mut hot_names = Vec::new();
    let void = module.types.void();
    let fn_ty = module.types.func(void, vec![]);
    let driver = module.create_function("__driver", fn_ty);
    let i32t = module.types.i32();
    let mut b = FuncBuilder::new(module, driver);
    let entry = b.block("entry");
    b.switch_to(entry);
    for (k, &callee) in callees.iter().enumerate() {
        let hot = rng.gen_bool(config.hot_fraction);
        if hot {
            hot_names.push(b.module().func(callee).name.clone());
        }
        let trips = if hot { config.hot_calls } else { config.cold_calls };
        // for (i = 0; i < trips; i++) callee(args...)
        let counter = b.alloca(i32t);
        b.store(b.const_i32(0), counter);
        let header = b.block(format!("h{k}"));
        let body = b.block(format!("b{k}"));
        let exit = b.block(format!("x{k}"));
        b.br(header);
        b.switch_to(header);
        let iv = b.load(counter);
        let bound = Value::ConstInt { ty: i32t, bits: trips };
        let c = b.icmp(IntPredicate::Slt, iv, bound);
        b.condbr(c, body, exit);
        b.switch_to(body);
        let args = arg_values(b.module_mut(), callee, k as u64);
        b.call(callee, args);
        let inc = b.add(iv, b.const_i32(1));
        b.store(inc, counter);
        b.br(header);
        b.switch_to(exit);
    }
    b.ret(None);
    hot_names.sort();
    (driver, hot_names)
}

/// A function is driver-callable when every parameter can be synthesized
/// from a constant (int/float).
fn driver_callable(module: &Module, f: FuncId) -> bool {
    module.func(f).params().iter().all(|p| module.types.is_int(p.ty) || module.types.is_float(p.ty))
}

fn arg_values(module: &mut Module, callee: FuncId, salt: u64) -> Vec<Value> {
    let param_tys: Vec<TyId> = module.func(callee).params().iter().map(|p| p.ty).collect();
    param_tys
        .into_iter()
        .enumerate()
        .map(|(k, ty)| {
            let v = 3 + ((salt + k as u64) % 11);
            if module.types.is_float(ty) {
                if module.types.display(ty) == "float" {
                    Value::ConstFloat { ty, bits: ((v as f32) * 0.5).to_bits() as u64 }
                } else {
                    Value::ConstFloat { ty, bits: (v as f64 * 0.5).to_bits() }
                }
            } else {
                Value::ConstInt { ty, bits: v }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_function, GenConfig, Variant};
    use fmsa_interp::Interpreter;

    fn module_with_functions(n: usize) -> Module {
        let mut m = Module::new("m");
        for k in 0..n {
            generate_function(
                &mut m,
                &format!("g{k}"),
                k as u64 + 100,
                &GenConfig::default(),
                &Variant::exact(),
            );
        }
        m
    }

    #[test]
    fn driver_builds_and_verifies() {
        let mut m = module_with_functions(10);
        let (driver, _hot) = add_driver(&mut m, &DriverConfig::default());
        assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
        assert!(m.func(driver).inst_count() > 10);
    }

    #[test]
    fn driver_executes_and_profiles() {
        let mut m = module_with_functions(8);
        let config = DriverConfig { hot_fraction: 0.5, ..DriverConfig::default() };
        let (_, hot) = add_driver(&mut m, &config);
        let mut interp = Interpreter::new(&m);
        interp.set_fuel(5_000_000);
        interp.run("__driver", vec![]).expect("driver runs");
        let profile = interp.profile();
        assert!(profile.total_steps > 100);
        // Hot functions should dominate the profile.
        if let Some(hot_name) = hot.first() {
            let cold_steps: u64 = (0..8)
                .map(|k| format!("g{k}"))
                .filter(|n| !hot.contains(n))
                .map(|n| profile.steps_of(&n))
                .max()
                .unwrap_or(0);
            assert!(
                profile.steps_of(hot_name) > cold_steps,
                "hot {} should out-execute every cold function",
                hot_name
            );
        }
    }

    #[test]
    fn driver_is_deterministic() {
        let mut m1 = module_with_functions(6);
        add_driver(&mut m1, &DriverConfig::default());
        let mut m2 = module_with_functions(6);
        add_driver(&mut m2, &DriverConfig::default());
        assert_eq!(fmsa_ir::printer::print_module(&m1), fmsa_ir::printer::print_module(&m2));
    }
}
