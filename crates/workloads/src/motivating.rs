//! The paper's motivating examples (Figs. 1 and 2) rebuilt in IR, used by
//! the runnable examples and by tests that check FMSA merges them while
//! both baselines fail — the paper's §II argument.

use fmsa_ir::{FuncBuilder, FuncId, IntPredicate, Module, Opcode, Value};

/// Builds the `482.sphinx3` example of Fig. 1: `glist_add_float32` and
/// `glist_add_float64`, identical except for the element type they store.
/// Returns `(module, f32_version, f64_version)`.
pub fn sphinx_glist_module() -> (Module, FuncId, FuncId) {
    let mut m = Module::new("sphinx3.glist");
    let i64t = m.types.i64();
    let f32t = m.types.f32();
    let f64t = m.types.f64();
    let p8 = m.types.ptr(m.types.i8());
    let malloc_ty = m.types.func(p8, vec![i64t]);
    let malloc = m.create_function("mymalloc", malloc_ty);

    // gnode_t { data: 8 bytes, next: glist_t } modelled as raw memory:
    // data at offset 0, next pointer at offset 8.
    let build = |m: &mut Module, name: &str, wide: bool| -> FuncId {
        let val_ty = if wide { f64t } else { f32t };
        let fn_ty = m.types.func(i64t, vec![i64t, val_ty]);
        let p_val = m.types.ptr(val_ty);
        let p_i64 = m.types.ptr(i64t);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let e = b.block("entry");
        b.switch_to(e);
        // gn = mymalloc(sizeof(gnode_t))
        let raw = b.call(malloc, vec![b.const_i64(16)]);
        // gn->data.floatXX = val
        let data_ptr = b.bitcast(raw, p_val);
        b.store(Value::Param(1), data_ptr);
        // gn->next = g
        let addr = b.cast(Opcode::PtrToInt, raw, i64t);
        let next_addr = b.add(addr, b.const_i64(8));
        let next_ptr = b.cast(Opcode::IntToPtr, next_addr, p_i64);
        b.store(Value::Param(0), next_ptr);
        // return (glist_t) gn
        b.ret(Some(addr));
        f
    };
    let f32v = build(&mut m, "glist_add_float32", false);
    let f64v = build(&mut m, "glist_add_float64", true);
    (m, f32v, f64v)
}

/// Builds the `462.libquantum` example of Fig. 2: `quantum_cond_phase_inv`
/// and `quantum_cond_phase`. The two bodies share the loop over the
/// register; `quantum_cond_phase` additionally has the guarded
/// `quantum_objcode_put` early exit, and the sign of the angle differs.
/// Returns `(module, inv_version, plain_version)`.
pub fn libquantum_cond_phase_module() -> (Module, FuncId, FuncId) {
    let mut m = Module::new("libquantum.cond_phase");
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let f64t = m.types.f64();
    let void = m.types.void();
    // Host-ish helpers, shared by both functions (same callees, as in the
    // benchmark).
    let objcode_ty = m.types.func(i32t, vec![i32t, i32t]);
    let objcode_put = m.create_function("quantum_objcode_put", objcode_ty);
    let cexp_ty = m.types.func(f64t, vec![f64t]);
    let cexp = m.create_function("quantum_cexp", cexp_ty);
    let decohere_ty = m.types.func(void, vec![i64t]);
    let decohere = m.create_function("quantum_decohere", decohere_ty);

    let build = |m: &mut Module, name: &str, with_guard: bool, pi_sign: f64| -> FuncId {
        // (control: i32, target: i32, reg_size: i32, reg: i64) -> void
        let fn_ty = m.types.func(void, vec![i32t, i32t, i32t, i64t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        if with_guard {
            let guard_exit = b.block("guard_exit");
            let cont = b.block("cont");
            let r = b.call(objcode_put, vec![Value::Param(0), Value::Param(1)]);
            let nz = b.icmp(IntPredicate::Ne, r, b.const_i32(0));
            b.condbr(nz, guard_exit, cont);
            b.switch_to(guard_exit);
            b.ret(None);
            b.switch_to(cont);
        }
        // z = quantum_cexp(±pi / (1 << (control - target)))
        let diff = b.sub(Value::Param(0), Value::Param(1));
        let one = b.const_i32(1);
        let shifted = b.shl(one, diff);
        let shf = b.sitofp(shifted, f64t);
        let pi = b.const_f64(pi_sign * std::f64::consts::PI);
        let angle = b.fdiv(pi, shf);
        let z = b.call(cexp, vec![angle]);
        // for (i = 0; i < reg_size; i++) { amplitude *= z; } — the array
        // walk is modelled through an accumulator cell.
        let i_cell = b.alloca(i32t);
        let acc_cell = b.alloca(f64t);
        b.store(b.const_i32(0), i_cell);
        b.store(b.const_f64(1.0), acc_cell);
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.br(header);
        b.switch_to(header);
        let iv = b.load(i_cell);
        let c = b.icmp(IntPredicate::Slt, iv, Value::Param(2));
        b.condbr(c, body, exit);
        b.switch_to(body);
        let acc = b.load(acc_cell);
        let acc2 = b.fmul(acc, z);
        b.store(acc2, acc_cell);
        let inc = b.add(iv, b.const_i32(1));
        b.store(inc, i_cell);
        b.br(header);
        b.switch_to(exit);
        b.call(decohere, vec![Value::Param(3)]);
        b.ret(None);
        f
    };
    let inv = build(&mut m, "quantum_cond_phase_inv", false, -1.0);
    let plain = build(&mut m, "quantum_cond_phase", true, 1.0);
    (m, inv, plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_core::baselines::{run_identical, run_soa};
    use fmsa_core::merge::{merge_pair, MergeConfig};
    use fmsa_target::TargetArch;

    #[test]
    fn sphinx_example_verifies_and_merges_with_fmsa_only() {
        let (m, _, _) = sphinx_glist_module();
        assert!(fmsa_ir::verify_module(&m).is_empty());
        // Neither baseline can touch it (§II).
        let mut mi = m.clone();
        assert_eq!(run_identical(&mut mi, TargetArch::X86_64).merges, 0);
        let mut ms = m.clone();
        assert_eq!(run_soa(&mut ms, TargetArch::X86_64).merges, 0, "different signatures");
        // FMSA merges it.
        let mut mf = m.clone();
        let f1 = mf.func_by_name("glist_add_float32").expect("exists");
        let f2 = mf.func_by_name("glist_add_float64").expect("exists");
        let info = merge_pair(&mut mf, f1, f2, &MergeConfig::default()).expect("FMSA merges");
        assert!(info.has_func_id);
        assert!(info.matches > 5, "most of the body is shared: {info:?}");
    }

    #[test]
    fn libquantum_example_verifies_and_merges_with_fmsa_only() {
        let (m, _, _) = libquantum_cond_phase_module();
        assert!(fmsa_ir::verify_module(&m).is_empty());
        let mut mi = m.clone();
        assert_eq!(run_identical(&mut mi, TargetArch::X86_64).merges, 0);
        let mut ms = m.clone();
        assert_eq!(run_soa(&mut ms, TargetArch::X86_64).merges, 0, "different CFGs");
        let mut mf = m.clone();
        let f1 = mf.func_by_name("quantum_cond_phase_inv").expect("exists");
        let f2 = mf.func_by_name("quantum_cond_phase").expect("exists");
        let info = merge_pair(&mut mf, f1, f2, &MergeConfig::default()).expect("FMSA merges");
        assert!(info.has_func_id);
        assert!(info.matches * 2 > info.alignment_len, "the loop bodies align: {info:?}");
    }
}
