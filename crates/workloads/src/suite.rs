//! Benchmark-suite descriptors calibrated to Tables I and II of the paper.
//!
//! Each descriptor records the paper's per-benchmark statistics (function
//! count, size distribution, and how many merge operations each technique
//! found) and derives a *clone-family mix* from them: exact clones for what
//! Identical can fold, same-CFG body mutations for what SOA additionally
//! catches, and type/CFG/signature mutations for the FMSA-only remainder.
//!
//! Function counts are scaled down by [`SCALE`] (default 10×) so that the
//! full experiment sweep — including the quadratic oracle — runs on a
//! laptop; the scaling preserves the *proportions* that drive every
//! qualitative result. EXPERIMENTS.md discusses the scaling.

use crate::gen::{generate_function, GenConfig, Variant};
use fmsa_ir::{FuncId, Module};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Function-count scale factor relative to the paper's benchmarks.
pub const SCALE: usize = 10;

/// The paper's per-benchmark row (Tables I and II).
#[derive(Debug, Clone)]
pub struct BenchDesc {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// Paper's function count (#Fns column).
    pub paper_fns: usize,
    /// Paper's average function size in IR instructions.
    pub avg_size: usize,
    /// Paper's merge-operation counts: (Identical, SOA, FMSA[t=1],
    /// FMSA[t=10]).
    pub paper_merges: (usize, usize, usize, usize),
    /// Whether the benchmark is C++-template-heavy (drives the share of
    /// exact clones, like dealII/xalancbmk).
    pub cpp_like: bool,
    /// Deterministic seed for module generation.
    pub seed: u64,
}

/// Benchmark suite tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2006 (Table I).
    Spec,
    /// MiBench (Table II).
    MiBench,
}

/// How many clone families of each kind a generated module contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FamilyMix {
    /// Exact clone pairs (Identical-mergeable).
    pub exact: usize,
    /// Same-CFG body-mutated pairs (SOA-mergeable).
    pub body: usize,
    /// Type-theme pairs (FMSA-only; Fig. 1 situation).
    pub typed: usize,
    /// Extra-block pairs (FMSA-only; Fig. 2 situation).
    pub cfg: usize,
    /// Signature-mutated pairs (FMSA-only).
    pub sig: usize,
}

impl FamilyMix {
    /// Total number of 2-function families.
    pub fn families(&self) -> usize {
        self.exact + self.body + self.typed + self.cfg + self.sig
    }
}

impl BenchDesc {
    /// Scaled function count for generation.
    pub fn scaled_fns(&self) -> usize {
        (self.paper_fns / SCALE).max(10)
    }

    /// Derives the family mix from the paper's merge counts.
    ///
    /// `Identical` merges ⇒ exact clones; `SOA − Identical` ⇒ body
    /// mutations; `FMSA[t=10] − SOA` ⇒ FMSA-only mutations, split evenly
    /// between type, CFG and signature variants.
    pub fn family_mix(&self) -> FamilyMix {
        let scale = |x: usize| x / SCALE;
        let (ident, soa, _t1, t10) = self.paper_merges;
        let exact = scale(ident);
        let body = scale(soa.saturating_sub(ident));
        let fmsa_only = scale(t10.saturating_sub(soa));
        // Small benchmarks where the paper still found a handful of FMSA
        // merges keep at least one family so the qualitative result (only
        // FMSA finds anything) is preserved.
        let fmsa_only = if fmsa_only == 0 && t10 > soa { 1 } else { fmsa_only };
        let body = if body == 0 && soa > ident { 1 } else { body };
        let typed = fmsa_only / 3 + usize::from(fmsa_only % 3 > 0);
        let cfg = fmsa_only / 3 + usize::from(fmsa_only % 3 > 1);
        let sig = fmsa_only / 3;
        FamilyMix { exact, body, typed, cfg, sig }
    }

    /// Builds the synthetic module for this benchmark.
    pub fn build(&self) -> Module {
        build_module(self)
    }
}

/// One descriptor row: `(name, #fns, avg size, merge counts, cpp_like)`.
type SpecRow = (&'static str, usize, usize, (usize, usize, usize, usize), bool);

/// One descriptor row: `(name, #fns, avg size, merge counts)`.
type MiBenchRow = (&'static str, usize, usize, (usize, usize, usize, usize));

/// The 19 C/C++ SPEC CPU2006 benchmarks of Table I.
pub fn spec_suite() -> Vec<BenchDesc> {
    let rows: Vec<SpecRow> = vec![
        ("400.perlbench", 1699, 125, (12, 103, 175, 200), false),
        ("401.bzip2", 74, 206, (0, 0, 7, 7), false),
        ("403.gcc", 4541, 128, (136, 341, 614, 710), false),
        ("429.mcf", 24, 87, (0, 1, 1, 1), false),
        ("433.milc", 235, 68, (0, 6, 26, 34), false),
        ("444.namd", 99, 571, (1, 1, 5, 5), true),
        ("445.gobmk", 2511, 43, (183, 485, 436, 605), false),
        ("447.dealII", 7380, 61, (1835, 2785, 2974, 3315), true),
        ("450.soplex", 1035, 73, (27, 125, 156, 163), true),
        ("453.povray", 1585, 98, (60, 112, 193, 212), true),
        ("456.hmmer", 487, 100, (3, 16, 45, 47), false),
        ("458.sjeng", 134, 145, (0, 5, 11, 11), false),
        ("462.libquantum", 95, 57, (0, 1, 9, 9), false),
        ("464.h264ref", 523, 171, (3, 22, 50, 52), false),
        ("470.lbm", 17, 123, (0, 0, 0, 0), false),
        ("471.omnetpp", 1406, 27, (45, 69, 227, 270), true),
        ("473.astar", 101, 67, (0, 2, 4, 4), true),
        ("482.sphinx3", 326, 80, (2, 6, 24, 26), false),
        ("483.xalancbmk", 14191, 39, (3057, 4573, 4342, 4887), true),
    ];
    rows.into_iter()
        .enumerate()
        .map(|(k, (name, fns, avg, merges, cpp))| BenchDesc {
            name,
            suite: Suite::Spec,
            paper_fns: fns,
            avg_size: avg,
            paper_merges: merges,
            cpp_like: cpp,
            seed: 0x5bec_0000 + k as u64,
        })
        .collect()
}

/// The 23 MiBench benchmarks of Table II.
pub fn mibench_suite() -> Vec<BenchDesc> {
    let rows: Vec<MiBenchRow> = vec![
        ("CRC32", 4, 25, (0, 0, 0, 0)),
        ("FFT", 7, 50, (0, 0, 0, 0)),
        ("adpcm_c", 3, 73, (0, 0, 0, 0)),
        ("adpcm_d", 3, 73, (0, 0, 0, 0)),
        ("basicmath", 5, 71, (0, 0, 0, 0)),
        ("bitcount", 19, 22, (0, 1, 3, 3)),
        ("blowfish_d", 8, 245, (0, 0, 0, 0)),
        ("blowfish_e", 8, 245, (0, 0, 0, 0)),
        ("jpeg_c", 322, 101, (2, 6, 8, 11)),
        ("dijkstra", 6, 33, (0, 0, 0, 0)),
        ("jpeg_d", 310, 99, (3, 6, 10, 10)),
        ("ghostscript", 3446, 54, (53, 53, 234, 250)),
        ("gsm", 69, 97, (0, 3, 8, 8)),
        ("ispell", 84, 106, (0, 2, 5, 5)),
        ("patricia", 5, 77, (0, 0, 0, 0)),
        ("pgp", 310, 89, (0, 1, 10, 10)),
        ("qsort", 2, 50, (0, 0, 0, 0)),
        ("rijndael", 7, 472, (0, 0, 1, 1)),
        ("rsynth", 46, 97, (0, 0, 0, 0)),
        ("sha", 7, 53, (0, 0, 0, 0)),
        ("stringsearch", 10, 48, (0, 0, 1, 1)),
        ("susan", 19, 292, (0, 0, 1, 1)),
        ("typeset", 362, 354, (1, 4, 31, 35)),
    ];
    rows.into_iter()
        .enumerate()
        .map(|(k, (name, fns, avg, merges))| BenchDesc {
            name,
            suite: Suite::MiBench,
            paper_fns: fns,
            avg_size: avg,
            paper_merges: merges,
            cpp_like: false,
            seed: 0x31be_0000 + k as u64,
        })
        .collect()
}

/// MiBench keeps its real (tiny) function counts: the point of Table II is
/// that these programs are too small for trivial duplicate detection.
fn effective_fns(desc: &BenchDesc) -> usize {
    match desc.suite {
        Suite::Spec => desc.scaled_fns(),
        Suite::MiBench => {
            if desc.paper_fns > 200 {
                desc.scaled_fns()
            } else {
                desc.paper_fns.max(2)
            }
        }
    }
}

fn family_mix_for(desc: &BenchDesc) -> FamilyMix {
    match desc.suite {
        Suite::Spec => desc.family_mix(),
        Suite::MiBench => {
            // Small benchmarks: use the paper counts directly (they are
            // already tiny), scaled only for the big ones.
            if desc.paper_fns > 200 {
                desc.family_mix()
            } else {
                let (ident, soa, _t1, t10) = desc.paper_merges;
                let body = soa.saturating_sub(ident);
                let fmsa_only = t10.saturating_sub(soa);
                FamilyMix {
                    exact: ident,
                    body,
                    typed: fmsa_only / 3 + usize::from(fmsa_only % 3 > 0),
                    cfg: fmsa_only / 3 + usize::from(fmsa_only % 3 > 1),
                    sig: fmsa_only / 3,
                }
            }
        }
    }
}

/// Generates the module for `desc`: singleton functions first (usable as
/// callees), then the clone families.
pub fn build_module(desc: &BenchDesc) -> Module {
    let mut module = Module::new(desc.name);
    let mut rng = StdRng::seed_from_u64(desc.seed);
    let total = effective_fns(desc);
    let mix = family_mix_for(desc);
    let family_fns = mix.families() * 2;
    let singles = total.saturating_sub(family_fns).max(2);

    // Rijndael special case: the paper's encrypt/decrypt giants hold over
    // 70% of the program's instructions; the rest of the functions are
    // comparatively small.
    let big_pair = desc.name == "rijndael";

    let mut singleton_ids: Vec<FuncId> = Vec::new();
    let single_avg = if big_pair { (desc.avg_size / 2).max(12) } else { desc.avg_size };
    for k in 0..singles {
        let size = sample_size(&mut rng, single_avg);
        let cfg = GenConfig {
            target_size: size,
            callables: pick_callables(&mut rng, &singleton_ids),
            ..GenConfig::default()
        };
        let seed = rng.gen();
        let f =
            generate_function(&mut module, &format!("single_{k}"), seed, &cfg, &Variant::exact());
        singleton_ids.push(f);
    }

    let mut fam = 0usize;
    let mut emit_family = |module: &mut Module,
                           rng: &mut StdRng,
                           kind: &str,
                           variant: Variant,
                           size_override: Option<usize>| {
        let size = size_override.unwrap_or_else(|| sample_size(rng, desc.avg_size) * 3 / 4).max(16);
        // Type-theme clones differ only where flexible slots occur, so
        // keep those rare — real template specializations differ in a few
        // operations, not a quarter of the body (Fig. 1).
        let (flex_weight, flexf_weight) = if kind == "typed" { (6, 6) } else { (25, 15) };
        let cfg = GenConfig {
            target_size: size,
            flex_weight,
            flexf_weight,
            callables: pick_callables(rng, &singleton_ids),
            ..GenConfig::default()
        };
        let seed: u64 = rng.gen();
        generate_function(module, &format!("{kind}_{fam}_a"), seed, &cfg, &Variant::exact());
        generate_function(module, &format!("{kind}_{fam}_b"), seed, &cfg, &variant);
        fam += 1;
    };

    for _ in 0..mix.exact {
        // "All the functions merged by LLVM's identical technique are tiny
        // functions relative to the overall size of the program" (§V-B):
        // exact clones are small template-like bodies.
        let tiny = (desc.avg_size / 4).max(8);
        emit_family(&mut module, &mut rng, "exact", Variant::exact(), Some(tiny));
    }
    for k in 0..mix.body {
        emit_family(&mut module, &mut rng, "body", Variant::body(k as u64 + 1), None);
    }
    for k in 0..mix.typed {
        let v = match k % 3 {
            0 => Variant::typed(true, false),
            1 => Variant::typed(false, true),
            _ => Variant::typed(true, true),
        };
        let boost = if big_pair { Some(desc.avg_size * 2) } else { None };
        emit_family(&mut module, &mut rng, "typed", v, boost);
    }
    for k in 0..mix.cfg {
        let boost = if big_pair { Some(desc.avg_size * 2) } else { None };
        emit_family(&mut module, &mut rng, "cfg", Variant::cfg(k as u64 + 1), boost);
    }
    for k in 0..mix.sig {
        emit_family(&mut module, &mut rng, "sig", Variant::sig(k as u64 + 1), None);
    }
    if big_pair && mix.families() == 0 {
        // rijndael in the paper: FMSA merges the two giant functions that
        // dominate the program even though no other technique finds
        // anything.
        emit_family(&mut module, &mut rng, "giant", Variant::body(7), Some(desc.avg_size * 2));
    }
    module
}

fn sample_size(rng: &mut StdRng, avg: usize) -> usize {
    // Right-skewed around the average, clamped to something alignable.
    let lo = (avg / 2).max(8);
    let hi = (avg * 3 / 2).max(lo + 8);
    rng.gen_range(lo..hi)
}

fn pick_callables(rng: &mut StdRng, pool: &[FuncId]) -> Vec<FuncId> {
    if pool.is_empty() {
        return Vec::new();
    }
    let n = rng.gen_range(0..4.min(pool.len() + 1));
    (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_benchmark_counts() {
        assert_eq!(spec_suite().len(), 19);
        assert_eq!(mibench_suite().len(), 23);
    }

    #[test]
    fn family_mix_matches_paper_proportions() {
        let dealii =
            spec_suite().into_iter().find(|d| d.name == "447.dealII").expect("dealII present");
        let mix = dealii.family_mix();
        assert_eq!(mix.exact, 183, "Identical merges / SCALE");
        assert_eq!(mix.body, 95, "(SOA - Identical) / SCALE");
        assert_eq!(mix.typed + mix.cfg + mix.sig, 53, "(FMSA[t10] - SOA) / SCALE");
    }

    #[test]
    fn lbm_has_no_families() {
        let lbm = spec_suite().into_iter().find(|d| d.name == "470.lbm").expect("lbm");
        assert_eq!(lbm.family_mix().families(), 0);
    }

    #[test]
    fn built_modules_verify() {
        for desc in spec_suite() {
            if desc.paper_fns > 500 {
                continue; // keep the unit test fast; big ones are covered
                          // by integration tests and the harness
            }
            let m = desc.build();
            let errs = fmsa_ir::verify_module(&m);
            assert!(errs.is_empty(), "{}: {errs:?}", desc.name);
            assert!(m.func_count() >= 4, "{}", desc.name);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let desc = spec_suite().into_iter().find(|d| d.name == "429.mcf").expect("mcf");
        let a = fmsa_ir::printer::print_module(&desc.build());
        let b = fmsa_ir::printer::print_module(&desc.build());
        assert_eq!(a, b);
    }

    #[test]
    fn mibench_small_benchmarks_keep_real_counts() {
        let crc = mibench_suite().into_iter().find(|d| d.name == "CRC32").expect("CRC32");
        let m = crc.build();
        assert!(m.func_count() <= 6, "CRC32 is tiny in the paper too");
    }
}
