//! Seeded random function generation.
//!
//! The generator builds verifier-valid, terminating functions with
//! realistic shape: arithmetic over typed value pools, locals through
//! `alloca`/`load`/`store`, if-diamonds, bounded loops, early returns, and
//! calls to previously generated functions.
//!
//! Reproducible *clone families* come from the [`Variant`] mechanism: all
//! structural decisions are driven by fixed-width draws from the seeded
//! RNG (every decision consumes exactly one `u32`, so variants never
//! desynchronize the stream), while a variant perturbs the emitted code
//! deterministically — different type themes, constants, opcodes, an extra
//! guard block, or a shuffled signature. Two variants of one seed are
//! therefore alignable near-clones: exactly the template-instantiation
//! phenomenon the FMSA paper exploits.

use fmsa_ir::{FuncBuilder, FuncId, IntPredicate, Module, Opcode, TyId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Type theme: which concrete types the function's "flexible" slots use.
/// Cloning a function under a different theme yields the paper's Fig. 1
/// situation (float32 vs float64 specializations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TypeTheme {
    /// Use `i64` instead of `i32` for flexible integer slots.
    pub wide_int: bool,
    /// Use `double` instead of `float` for flexible float slots.
    pub wide_float: bool,
}

/// A deterministic perturbation of a generated function. The default
/// variant of the same seed is an exact clone.
#[derive(Debug, Clone, Default)]
pub struct Variant {
    /// Type theme for flexible slots.
    pub theme: TypeTheme,
    /// Added to constants at sites selected by `const_mask`.
    pub const_delta: i64,
    /// Bitmask over constant sites (site index mod 64).
    pub const_mask: u64,
    /// Swap add/sub (and and/or/xor) at sites selected by this mask.
    pub opcode_mask: u64,
    /// Insert an extra early-exit guard block at the function entry
    /// (the paper's Fig. 2 libquantum situation — a CFG difference).
    pub extra_guard: bool,
    /// Rotate the parameter list by this amount (signature difference).
    pub param_rotation: usize,
    /// Append this many extra unused `i32` parameters (signature
    /// difference).
    pub extra_params: usize,
}

impl Variant {
    /// An exact-clone variant.
    pub fn exact() -> Variant {
        Variant::default()
    }

    /// A small body mutation with the same CFG and signature —
    /// SOA-mergeable.
    pub fn body(salt: u64) -> Variant {
        Variant {
            const_delta: (salt % 23) as i64 + 1,
            const_mask: 0x5555_5555_5555_5555u64.rotate_left((salt % 17) as u32),
            opcode_mask: 0x1111_1111_1111_1111u64.rotate_left((salt % 13) as u32),
            ..Variant::default()
        }
    }

    /// A type-theme mutation (FMSA-only: operand widths differ).
    pub fn typed(wide_int: bool, wide_float: bool) -> Variant {
        Variant { theme: TypeTheme { wide_int, wide_float }, ..Variant::default() }
    }

    /// A CFG mutation: extra guarded early-exit block (FMSA-only).
    pub fn cfg(salt: u64) -> Variant {
        Variant {
            extra_guard: true,
            const_delta: (salt % 7) as i64,
            const_mask: 0x8080_8080_8080_8080u64.rotate_left((salt % 11) as u32),
            ..Variant::default()
        }
    }

    /// A signature mutation: rotated parameters and extras (FMSA-only).
    pub fn sig(salt: u64) -> Variant {
        Variant {
            param_rotation: (salt as usize % 3) + 1,
            extra_params: salt as usize % 2,
            ..Variant::default()
        }
    }
}

/// Shape knobs for one generated function.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Approximate number of instructions to emit.
    pub target_size: usize,
    /// Maximum number of parameters.
    pub max_params: usize,
    /// Probability of emitting control-flow regions vs straight-line code
    /// (0..=100).
    pub branchiness: u32,
    /// Percent of value slots using the flexible integer type (the part a
    /// type-theme clone changes).
    pub flex_weight: u32,
    /// Percent of value slots using the flexible float type.
    pub flexf_weight: u32,
    /// Functions this one may call (must exist already).
    pub callables: Vec<FuncId>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_size: 40,
            max_params: 4,
            branchiness: 30,
            flex_weight: 25,
            flexf_weight: 15,
            callables: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    I32,
    Flex,
    FlexFloat,
}

/// Generates one function named `name` into `module`, deterministic in
/// `seed`, perturbed by `variant`. Returns the new function's id.
pub fn generate_function(
    module: &mut Module,
    name: &str,
    seed: u64,
    config: &GenConfig,
    variant: &Variant,
) -> FuncId {
    let fixed_i32 = module.types.i32();
    let flex_ty = if variant.theme.wide_int { module.types.i64() } else { module.types.i32() };
    let flexf_ty = if variant.theme.wide_float { module.types.f64() } else { module.types.f32() };
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        config: config.clone(),
        variant: variant.clone(),
        const_site: 0,
        op_site: 0,
        int_pool: Vec::new(),
        long_pool: Vec::new(),
        float_pool: Vec::new(),
        fixed_i32,
        flex_ty,
        flexf_ty,
        emitted: 0,
    };
    g.run(module, name)
}

struct Gen {
    rng: StdRng,
    config: GenConfig,
    variant: Variant,
    const_site: u64,
    op_site: u64,
    int_pool: Vec<Value>,
    long_pool: Vec<Value>,
    float_pool: Vec<Value>,
    fixed_i32: TyId,
    flex_ty: TyId,
    flexf_ty: TyId,
    emitted: usize,
}

impl Gen {
    /// Every structural decision consumes exactly one `u32` so variants
    /// cannot desynchronize the stream.
    fn draw(&mut self, modulus: u32) -> u32 {
        let r: u32 = self.rng.gen();
        r % modulus.max(1)
    }

    fn run(&mut self, module: &mut Module, name: &str) -> FuncId {
        // Signature: structural decisions first; the variant rotates or
        // extends afterwards without touching the RNG.
        let n_params = 1 + self.draw(self.config.max_params as u32) as usize;
        let mut slots: Vec<Slot> = (0..n_params)
            .map(|_| match self.draw(3) {
                0 => Slot::I32,
                1 => Slot::Flex,
                _ => Slot::FlexFloat,
            })
            .collect();
        let ret_slot = match self.draw(4) {
            0 => None,
            1 => Some(Slot::I32),
            2 => Some(Slot::Flex),
            _ => Some(Slot::FlexFloat),
        };
        let rot = self.variant.param_rotation % slots.len().max(1);
        slots.rotate_left(rot);
        for _ in 0..self.variant.extra_params {
            slots.push(Slot::I32);
        }
        let param_tys: Vec<TyId> = slots.iter().map(|&s| self.slot_ty(s)).collect();
        let ret_ty = match ret_slot {
            None => module.types.void(),
            Some(s) => self.slot_ty(s),
        };
        let fn_ty = module.types.func(ret_ty, param_tys);
        let f = module.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(module, f);
        let entry = b.block("entry");
        b.switch_to(entry);

        // Seed the pools: parameters plus one constant each.
        for (k, &s) in slots.iter().enumerate() {
            self.pool_mut(s).push(Value::Param(k as u32));
        }
        let c0 = self.next_const(Slot::I32);
        self.int_pool.push(c0);
        let c1 = self.next_const(Slot::Flex);
        self.long_pool.push(c1);
        let c2 = self.next_const(Slot::FlexFloat);
        self.float_pool.push(c2);

        // Optional CFG mutation: RNG-free so the stream stays aligned with
        // the unguarded variants.
        if self.variant.extra_guard {
            let exit = b.block("guard_exit");
            let cont = b.block("guard_cont");
            let probe = self.int_pool[0];
            let sentinel = Value::ConstInt { ty: self.fixed_i32, bits: 0x7fff_fff1 };
            let c = b.icmp(IntPredicate::Eq, probe, sentinel);
            b.condbr(c, exit, cont);
            b.switch_to(exit);
            self.emit_ret_fixed(&mut b, ret_slot);
            b.switch_to(cont);
            self.emitted += 3;
        }

        while self.emitted < self.config.target_size {
            let roll = self.draw(100);
            if roll < self.config.branchiness {
                match self.draw(3) {
                    0 => self.emit_diamond(&mut b),
                    1 => self.emit_loop(&mut b),
                    _ => self.emit_early_return(&mut b, ret_slot),
                }
            } else if roll < self.config.branchiness + 12 && !self.config.callables.is_empty() {
                self.emit_call(&mut b);
            } else if roll < self.config.branchiness + 25 {
                self.emit_memory(&mut b);
            } else {
                self.emit_straight(&mut b);
            }
        }
        self.emit_ret(&mut b, ret_slot);
        f
    }

    fn slot_ty(&self, s: Slot) -> TyId {
        match s {
            Slot::I32 => self.fixed_i32,
            Slot::Flex => self.flex_ty,
            Slot::FlexFloat => self.flexf_ty,
        }
    }

    fn pool_mut(&mut self, s: Slot) -> &mut Vec<Value> {
        match s {
            Slot::I32 => &mut self.int_pool,
            Slot::Flex => &mut self.long_pool,
            Slot::FlexFloat => &mut self.float_pool,
        }
    }

    /// Picks a pool value; consumes exactly one draw.
    fn pick(&mut self, s: Slot) -> Value {
        let r: u32 = self.rng.gen();
        let pool = match s {
            Slot::I32 => &self.int_pool,
            Slot::Flex => &self.long_pool,
            Slot::FlexFloat => &self.float_pool,
        };
        pool[r as usize % pool.len()]
    }

    /// A constant of slot `s`; the variant's mask may perturb its value.
    fn next_const(&mut self, s: Slot) -> Value {
        let site = self.const_site;
        self.const_site += 1;
        let base = 1 + self.draw(49) as i64;
        let delta = if self.variant.const_mask & (1u64 << (site % 64)) != 0 {
            self.variant.const_delta
        } else {
            0
        };
        let v = (base + delta) as u64;
        match s {
            Slot::I32 => Value::ConstInt { ty: self.fixed_i32, bits: v },
            Slot::Flex => Value::ConstInt { ty: self.flex_ty, bits: v },
            Slot::FlexFloat => {
                if self.variant.theme.wide_float {
                    Value::ConstFloat { ty: self.flexf_ty, bits: (v as f64 * 0.5).to_bits() }
                } else {
                    Value::ConstFloat {
                        ty: self.flexf_ty,
                        bits: ((v as f32) * 0.5).to_bits() as u64,
                    }
                }
            }
        }
    }

    /// A binary opcode for slot `s`; the variant may swap it.
    fn next_binop(&mut self, s: Slot) -> Opcode {
        let site = self.op_site;
        self.op_site += 1;
        let swap = self.variant.opcode_mask & (1u64 << (site % 64)) != 0;
        match s {
            Slot::I32 | Slot::Flex => {
                let base = match self.draw(6) {
                    0 => Opcode::Add,
                    1 => Opcode::Sub,
                    2 => Opcode::Mul,
                    3 => Opcode::And,
                    4 => Opcode::Or,
                    _ => Opcode::Xor,
                };
                if swap {
                    match base {
                        Opcode::Add => Opcode::Sub,
                        Opcode::Sub => Opcode::Add,
                        Opcode::And => Opcode::Or,
                        Opcode::Or => Opcode::Xor,
                        Opcode::Xor => Opcode::And,
                        other => other,
                    }
                } else {
                    base
                }
            }
            Slot::FlexFloat => {
                let base = match self.draw(3) {
                    0 => Opcode::FAdd,
                    1 => Opcode::FSub,
                    _ => Opcode::FMul,
                };
                if swap && base == Opcode::FAdd {
                    Opcode::FSub
                } else {
                    base
                }
            }
        }
    }

    fn random_slot(&mut self) -> Slot {
        // Weighted: most code is plain i32; flexible slots are the
        // minority so type-theme clones differ in a narrow slice, like the
        // paper's Fig. 1 example where a single store differs.
        let r = self.draw(100);
        if r < 100 - self.config.flex_weight - self.config.flexf_weight {
            Slot::I32
        } else if r < 100 - self.config.flexf_weight {
            Slot::Flex
        } else {
            Slot::FlexFloat
        }
    }

    fn emit_straight(&mut self, b: &mut FuncBuilder<'_>) {
        let n = 2 + self.draw(5);
        for _ in 0..n {
            let s = self.random_slot();
            let op = self.next_binop(s);
            let lhs = self.pick(s);
            let use_const = self.draw(10) < 4;
            let rhs = if use_const { self.next_const(s) } else { self.pick(s) };
            let v = b.binary(op, lhs, rhs);
            self.pool_mut(s).push(v);
            self.emitted += 1;
        }
    }

    fn emit_memory(&mut self, b: &mut FuncBuilder<'_>) {
        let s = self.random_slot();
        let ty = self.slot_ty(s);
        let slot = b.alloca(ty);
        let v = self.pick(s);
        b.store(v, slot);
        let loaded = b.load(slot);
        self.pool_mut(s).push(loaded);
        self.emitted += 3;
    }

    fn emit_call(&mut self, b: &mut FuncBuilder<'_>) {
        let idx = self.draw(self.config.callables.len() as u32) as usize;
        let callee = self.config.callables[idx];
        let (param_tys, ret_ty) = {
            let m = b.module();
            let fn_ty = m.func(callee).fn_ty();
            (
                m.types.fn_params(fn_ty).expect("callable").to_vec(),
                m.types.fn_ret(fn_ty).expect("callable"),
            )
        };
        let mut args = Vec::with_capacity(param_tys.len());
        for ty in param_tys {
            args.push(self.value_of_type(b, ty));
        }
        let r = b.call(callee, args);
        if ret_ty == self.fixed_i32 {
            self.int_pool.push(r);
        } else if ret_ty == self.flex_ty {
            self.long_pool.push(r);
        } else if ret_ty == self.flexf_ty {
            self.float_pool.push(r);
        }
        self.emitted += 1;
    }

    /// Produces a value of exactly `ty`. Consumes exactly one draw
    /// regardless of the path taken, keeping variants aligned.
    fn value_of_type(&mut self, b: &mut FuncBuilder<'_>, ty: TyId) -> Value {
        let r: u32 = self.rng.gen();
        let pool = if ty == self.fixed_i32 {
            Some(&self.int_pool)
        } else if ty == self.flex_ty {
            Some(&self.long_pool)
        } else if ty == self.flexf_ty {
            Some(&self.float_pool)
        } else {
            None
        };
        if let Some(pool) = pool {
            return pool[r as usize % pool.len()];
        }
        let m = b.module();
        if m.types.is_int(ty) {
            return Value::ConstInt { ty, bits: (r % 50) as u64 };
        }
        if m.types.is_float(ty) {
            let x = (r % 50) as f64 * 0.25;
            let bits = if m.types.display(ty) == "float" {
                (x as f32).to_bits() as u64
            } else {
                x.to_bits()
            };
            return Value::ConstFloat { ty, bits };
        }
        Value::Undef(ty)
    }

    fn emit_diamond(&mut self, b: &mut FuncBuilder<'_>) {
        // The communicated value crosses the join through a memory cell so
        // SSA dominance holds by construction.
        let comm_s = self.random_slot();
        let comm_ty = self.slot_ty(comm_s);
        let cell = b.alloca(comm_ty);
        let init = self.pick(comm_s);
        b.store(init, cell);
        let then_b = b.block("then");
        let else_b = b.block("else");
        let join = b.block("join");
        let x = self.pick(Slot::I32);
        let c0 = self.next_const(Slot::I32);
        let pred = match self.draw(4) {
            0 => IntPredicate::Slt,
            1 => IntPredicate::Sgt,
            2 => IntPredicate::Eq,
            _ => IntPredicate::Ne,
        };
        let c = b.icmp(pred, x, c0);
        b.condbr(c, then_b, else_b);
        let snapshot = self.pools_snapshot();
        b.switch_to(then_b);
        self.emit_straight(b);
        let tv = self.pick(comm_s);
        b.store(tv, cell);
        b.br(join);
        self.pools_restore(snapshot);
        b.switch_to(else_b);
        self.emit_straight(b);
        let ev = self.pick(comm_s);
        b.store(ev, cell);
        b.br(join);
        self.pools_restore(snapshot);
        b.switch_to(join);
        let merged = b.load(cell);
        self.pool_mut(comm_s).push(merged);
        self.emitted += 9;
    }

    fn emit_loop(&mut self, b: &mut FuncBuilder<'_>) {
        let i32t = self.fixed_i32;
        let counter = b.alloca(i32t);
        let acc_s = self.random_slot();
        let acc_ty = self.slot_ty(acc_s);
        let acc = b.alloca(acc_ty);
        let zero = Value::ConstInt { ty: i32t, bits: 0 };
        b.store(zero, counter);
        let init = self.pick(acc_s);
        b.store(init, acc);
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        let trip = 2 + self.draw(7) as u64;
        b.br(header);
        b.switch_to(header);
        let iv = b.load(counter);
        let bound = Value::ConstInt { ty: i32t, bits: trip };
        let c = b.icmp(IntPredicate::Slt, iv, bound);
        b.condbr(c, body, exit);
        let snapshot = self.pools_snapshot();
        b.switch_to(body);
        let av = b.load(acc);
        self.pool_mut(acc_s).push(av);
        let op = self.next_binop(acc_s);
        let rhs = self.next_const(acc_s);
        let av2 = b.binary(op, av, rhs);
        b.store(av2, acc);
        let one = Value::ConstInt { ty: i32t, bits: 1 };
        let inc = b.add(iv, one);
        b.store(inc, counter);
        b.br(header);
        self.pools_restore(snapshot);
        b.switch_to(exit);
        let out = b.load(acc);
        self.pool_mut(acc_s).push(out);
        self.emitted += 12;
    }

    fn emit_early_return(&mut self, b: &mut FuncBuilder<'_>, ret: Option<Slot>) {
        let leave = b.block("leave");
        let cont = b.block("cont");
        let x = self.pick(Slot::I32);
        let c0 = self.next_const(Slot::I32);
        let c = b.icmp(IntPredicate::Eq, x, c0);
        b.condbr(c, leave, cont);
        b.switch_to(leave);
        self.emit_ret(b, ret);
        b.switch_to(cont);
        self.emitted += 3;
    }

    fn emit_ret(&mut self, b: &mut FuncBuilder<'_>, ret: Option<Slot>) {
        match ret {
            None => b.ret(None),
            Some(s) => {
                let v = self.pick(s);
                b.ret(Some(v));
            }
        }
        self.emitted += 1;
    }

    /// RNG-free return for variant-only paths (the guard block).
    fn emit_ret_fixed(&mut self, b: &mut FuncBuilder<'_>, ret: Option<Slot>) {
        match ret {
            None => b.ret(None),
            Some(s) => {
                let pool = match s {
                    Slot::I32 => &self.int_pool,
                    Slot::Flex => &self.long_pool,
                    Slot::FlexFloat => &self.float_pool,
                };
                let v = pool[0];
                b.ret(Some(v));
            }
        }
        self.emitted += 1;
    }

    fn pools_snapshot(&self) -> (usize, usize, usize) {
        (self.int_pool.len(), self.long_pool.len(), self.float_pool.len())
    }

    fn pools_restore(&mut self, snap: (usize, usize, usize)) {
        self.int_pool.truncate(snap.0);
        self.long_pool.truncate(snap.1);
        self.float_pool.truncate(snap.2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::verify_module;

    #[test]
    fn generated_functions_verify() {
        let mut m = Module::new("m");
        for seed in 0..40u64 {
            generate_function(
                &mut m,
                &format!("g{seed}"),
                seed,
                &GenConfig::default(),
                &Variant::exact(),
            );
        }
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut m1 = Module::new("a");
        let f1 = generate_function(&mut m1, "g", 7, &GenConfig::default(), &Variant::exact());
        let mut m2 = Module::new("b");
        let f2 = generate_function(&mut m2, "g", 7, &GenConfig::default(), &Variant::exact());
        assert_eq!(
            fmsa_ir::printer::print_function(&m1, m1.func(f1)),
            fmsa_ir::printer::print_function(&m2, m2.func(f2))
        );
    }

    #[test]
    fn exact_variant_produces_identical_clone() {
        let mut m = Module::new("m");
        let a = generate_function(&mut m, "a", 11, &GenConfig::default(), &Variant::exact());
        let b = generate_function(&mut m, "b", 11, &GenConfig::default(), &Variant::exact());
        let pa = fmsa_ir::printer::print_function(&m, m.func(a)).replace("@a", "@f");
        let pb = fmsa_ir::printer::print_function(&m, m.func(b)).replace("@b", "@f");
        assert_eq!(pa, pb);
    }

    #[test]
    fn body_variant_same_cfg_different_body() {
        let mut m = Module::new("m");
        let a = generate_function(&mut m, "a", 13, &GenConfig::default(), &Variant::exact());
        let b = generate_function(&mut m, "b", 13, &GenConfig::default(), &Variant::body(5));
        assert_eq!(m.func(a).block_count(), m.func(b).block_count());
        assert_eq!(m.func(a).inst_count(), m.func(b).inst_count());
        assert_eq!(m.func(a).fn_ty(), m.func(b).fn_ty());
        let pa = fmsa_ir::printer::print_function(&m, m.func(a)).replace("@a", "@f");
        let pb = fmsa_ir::printer::print_function(&m, m.func(b)).replace("@b", "@f");
        assert_ne!(pa, pb, "body variant must differ");
    }

    #[test]
    fn typed_variant_differs_in_types_only_structurally() {
        let mut m = Module::new("m");
        let a = generate_function(&mut m, "a", 17, &GenConfig::default(), &Variant::exact());
        let b =
            generate_function(&mut m, "b", 17, &GenConfig::default(), &Variant::typed(true, true));
        assert_eq!(m.func(a).block_count(), m.func(b).block_count());
        assert_eq!(m.func(a).inst_count(), m.func(b).inst_count());
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn cfg_variant_adds_blocks() {
        let mut m = Module::new("m");
        let a = generate_function(&mut m, "a", 19, &GenConfig::default(), &Variant::exact());
        let b = generate_function(&mut m, "b", 19, &GenConfig::default(), &Variant::cfg(3));
        assert_eq!(m.func(a).block_count() + 2, m.func(b).block_count());
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn sig_variant_changes_signature() {
        let mut m = Module::new("m");
        let a = generate_function(&mut m, "a", 23, &GenConfig::default(), &Variant::exact());
        let b = generate_function(&mut m, "b", 23, &GenConfig::default(), &Variant::sig(4));
        // Same number of body instructions, but possibly different type.
        assert_eq!(m.func(a).inst_count(), m.func(b).inst_count());
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn generated_functions_execute() {
        use fmsa_interp::{Interpreter, Val};
        let mut m = Module::new("m");
        let cfg = GenConfig::default();
        for seed in 0..20u64 {
            generate_function(&mut m, &format!("g{seed}"), seed, &cfg, &Variant::exact());
        }
        for seed in 0..20u64 {
            let name = format!("g{seed}");
            let f = m.func_by_name(&name).expect("exists");
            let args: Vec<Val> = m
                .func(f)
                .params()
                .iter()
                .map(|p| {
                    if m.types.is_float(p.ty) {
                        if m.types.display(p.ty) == "float" {
                            Val::F32(1.5)
                        } else {
                            Val::F64(1.5)
                        }
                    } else if m.types.int_width(p.ty) == Some(64) {
                        Val::i64(7)
                    } else {
                        Val::i32(7)
                    }
                })
                .collect();
            let mut interp = Interpreter::new(&m);
            interp.set_fuel(1_000_000);
            interp.run(&name, args).unwrap_or_else(|e| panic!("{name} trapped: {e}"));
        }
    }
}
