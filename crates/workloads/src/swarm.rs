//! Large-module "clone swarm" generator for search-scalability work.
//!
//! The suite descriptors ([`crate::suite`]) are calibrated to the paper's
//! benchmarks and therefore top out at a few thousand functions. The
//! candidate-search subsystem targets modules one to two orders of
//! magnitude larger, so this generator builds modules with a controlled
//! shape at arbitrary scale: many small *clone families* (members of one
//! family share a seed and differ by body-mutation variants, so FMSA can
//! merge them) buried in *noise* functions with unique seeds (mergeable
//! only by accident). That makes the quadratic→near-linear crossover of
//! `ExactSearch` vs `LshSearch` measurable while keeping a realistic mix
//! of productive and unproductive candidates.

use crate::gen::{generate_function, GenConfig, Variant};
use fmsa_ir::Module;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated clone-swarm module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmConfig {
    /// Total number of functions to generate.
    pub functions: usize,
    /// Members per clone family.
    pub family_size: usize,
    /// Fraction of `functions` that belong to clone families (the rest is
    /// noise), in `[0, 1]`.
    pub clone_fraction: f64,
    /// Approximate instructions per function.
    pub target_size: usize,
    /// Master seed; everything else derives from it deterministically.
    pub seed: u64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            functions: 1000,
            family_size: 2,
            clone_fraction: 0.5,
            target_size: 40,
            seed: 0x5aa5_0001,
        }
    }
}

impl SwarmConfig {
    /// Convenience: a swarm of `functions` functions with the default mix.
    pub fn with_functions(functions: usize) -> SwarmConfig {
        SwarmConfig { functions, ..SwarmConfig::default() }
    }

    /// Number of complete clone families this configuration yields.
    pub fn families(&self) -> usize {
        let clones = (self.functions as f64 * self.clone_fraction) as usize;
        clones / self.family_size.max(2)
    }
}

/// Builds the module described by `cfg`.
pub fn clone_swarm_module(cfg: &SwarmConfig) -> Module {
    let mut module = Module::new(format!("swarm-{}", cfg.functions));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let family_size = cfg.family_size.max(2);
    let families = cfg.families();
    let family_fns = families * family_size;
    let noise = cfg.functions.saturating_sub(family_fns);

    let gen_cfg = |size: usize| GenConfig { target_size: size, ..GenConfig::default() };
    // Family members share one seed; non-exact members get body variants so
    // the family is FMSA-mergeable but not byte-identical.
    for fam in 0..families {
        let fam_seed: u64 = rng.gen();
        let size = cfg.target_size / 2 + (fam_seed as usize % cfg.target_size.max(1));
        for member in 0..family_size {
            let variant = if member == 0 { Variant::exact() } else { Variant::body(member as u64) };
            generate_function(
                &mut module,
                &format!("fam{fam}_m{member}"),
                fam_seed,
                &gen_cfg(size),
                &variant,
            );
        }
    }
    for k in 0..noise {
        let seed: u64 = rng.gen();
        let size = cfg.target_size / 2 + (seed as usize % cfg.target_size.max(1));
        generate_function(
            &mut module,
            &format!("noise{k}"),
            seed,
            &gen_cfg(size),
            &Variant::exact(),
        );
    }
    module
}

/// One chunk of a streamed corpus: a generation *recipe*, not a module.
///
/// Million-function experiments cannot hold the whole corpus in memory;
/// [`stream_chunks`] yields descriptors and the caller materializes one
/// chunk at a time ([`ChunkSpec::materialize`]), processes it, and drops
/// it — peak memory is bounded by one chunk regardless of corpus size.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkSpec {
    /// A clone-swarm chunk generated directly as IR.
    Swarm(SwarmConfig),
    /// A wasm-fixture chunk: serialized to real wasm bytes, then decoded
    /// and lowered through the frontend — the corpus mixes in binaries
    /// the full parse→lower path has to chew through.
    Wasm(crate::wasm_fixtures::WasmFixtureConfig),
}

impl ChunkSpec {
    /// Number of functions this chunk will contain.
    pub fn functions(&self) -> usize {
        match self {
            ChunkSpec::Swarm(c) => c.functions,
            ChunkSpec::Wasm(c) => c.functions,
        }
    }

    /// Builds the chunk's module. Wasm chunks round-trip through real
    /// bytes: encode → parse → lower.
    pub fn materialize(&self) -> Module {
        match self {
            ChunkSpec::Swarm(c) => clone_swarm_module(c),
            ChunkSpec::Wasm(c) => {
                let bytes = crate::wasm_fixtures::wasm_fixture_bytes(c);
                fmsa_wasm::load_wasm(&bytes, &format!("wasm-chunk-{:x}", c.seed))
                    .expect("generated fixtures stay within the supported subset")
            }
        }
    }
}

/// Splitmix64-style seed derivation so chunks are decorrelated but the
/// whole stream is a pure function of the master seed.
fn derive_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streams a `total`-function corpus as chunk descriptors of at most
/// `chunk` functions each. Every eighth chunk is a wasm-fixture binary
/// (repeated with per-chunk seed variation); the rest are clone swarms.
/// The stream is deterministic in `(total, chunk, seed)` and covers
/// exactly `total` functions.
pub fn stream_chunks(total: usize, chunk: usize, seed: u64) -> impl Iterator<Item = ChunkSpec> {
    let chunk = chunk.max(2);
    let chunks = total.div_ceil(chunk);
    (0..chunks).map(move |k| {
        let n = chunk.min(total - k * chunk);
        let chunk_seed = derive_seed(seed, k as u64);
        if k % 8 == 7 {
            ChunkSpec::Wasm(crate::wasm_fixtures::WasmFixtureConfig {
                functions: n,
                seed: chunk_seed,
                ..Default::default()
            })
        } else {
            ChunkSpec::Swarm(SwarmConfig {
                functions: n,
                seed: chunk_seed,
                ..SwarmConfig::default()
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_has_requested_count_and_verifies() {
        let cfg = SwarmConfig { functions: 60, ..SwarmConfig::default() };
        let m = clone_swarm_module(&cfg);
        assert_eq!(m.func_count(), 60);
        let errs = fmsa_ir::verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn swarm_is_deterministic() {
        let cfg = SwarmConfig { functions: 40, ..SwarmConfig::default() };
        let a = fmsa_ir::printer::print_module(&clone_swarm_module(&cfg));
        let b = fmsa_ir::printer::print_module(&clone_swarm_module(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn family_count_matches_config() {
        let cfg = SwarmConfig {
            functions: 100,
            family_size: 2,
            clone_fraction: 0.5,
            ..SwarmConfig::default()
        };
        assert_eq!(cfg.families(), 25);
        let m = clone_swarm_module(&cfg);
        let fam_members =
            m.func_ids().iter().filter(|&&f| m.func(f).name.starts_with("fam")).count();
        assert_eq!(fam_members, 50);
    }

    #[test]
    fn stream_covers_total_exactly_and_mixes_kinds() {
        let specs: Vec<ChunkSpec> = stream_chunks(2_500, 200, 42).collect();
        assert_eq!(specs.len(), 13, "ceil(2500/200)");
        assert_eq!(specs.iter().map(ChunkSpec::functions).sum::<usize>(), 2_500);
        assert_eq!(specs.last().map(ChunkSpec::functions), Some(100), "remainder chunk");
        assert!(specs.iter().any(|s| matches!(s, ChunkSpec::Swarm(_))));
        assert!(specs.iter().any(|s| matches!(s, ChunkSpec::Wasm(_))));
        // Chunks are decorrelated: no two share a seed.
        let mut seeds: Vec<u64> = specs
            .iter()
            .map(|s| match s {
                ChunkSpec::Swarm(c) => c.seed,
                ChunkSpec::Wasm(c) => c.seed,
            })
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 13);
        // Determinism: the stream is a pure function of its inputs.
        let again: Vec<ChunkSpec> = stream_chunks(2_500, 200, 42).collect();
        assert_eq!(specs, again);
    }

    #[test]
    fn stream_chunks_materialize_and_verify() {
        for spec in stream_chunks(130, 16, 7) {
            let m = spec.materialize();
            assert_eq!(m.func_count(), spec.functions());
            let errs = fmsa_ir::verify_module(&m);
            assert!(errs.is_empty(), "{spec:?}: {errs:?}");
        }
    }

    #[test]
    fn larger_family_sizes_supported() {
        let cfg = SwarmConfig {
            functions: 30,
            family_size: 3,
            clone_fraction: 0.6,
            ..SwarmConfig::default()
        };
        let m = clone_swarm_module(&cfg);
        assert_eq!(m.func_count(), 30);
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }
}
