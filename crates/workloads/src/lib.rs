//! # fmsa-workloads — synthetic benchmarks calibrated to the paper
//!
//! The paper evaluates on C/C++ SPEC CPU2006 and MiBench, which require
//! proprietary sources and a C compiler. This crate substitutes seeded
//! synthetic IR modules whose *statistics are calibrated to Tables I and
//! II*: per-benchmark function counts, size distributions, and — crucially
//! — controlled *clone families* whose mergeability class matches what
//! each technique can exploit:
//!
//! | family kind | mergeable by |
//! |---|---|
//! | exact clones | Identical, SOA, FMSA |
//! | same-CFG body mutations | SOA, FMSA |
//! | type-theme clones (Fig. 1) | FMSA only |
//! | extra-block clones (Fig. 2) | FMSA only |
//! | signature mutations | FMSA only |
//!
//! so the qualitative results (who wins, by what factor, and where) carry
//! over to the reproduction. See DESIGN.md §1 for the substitution
//! rationale.

#![warn(missing_docs)]

pub mod driver;
pub mod gen;
pub mod motivating;
pub mod suite;
pub mod swarm;
pub mod wasm_fixtures;

pub use driver::{add_driver, DriverConfig};
pub use gen::{generate_function, GenConfig, TypeTheme, Variant};
pub use suite::{build_module, mibench_suite, spec_suite, BenchDesc, FamilyMix, Suite, SCALE};
pub use swarm::{clone_swarm_module, stream_chunks, ChunkSpec, SwarmConfig};
pub use wasm_fixtures::{wasm_fixture_bytes, WasmFixtureConfig};
