//! Seeded WebAssembly fixture corpus.
//!
//! Serializes generated clone-family modules to **valid wasm bytes** via
//! [`fmsa_wasm::encode`], giving the repo an offline corpus of real
//! binaries: the `experiments wasm` harness and the `frontend-smoke` CI
//! job decode these with `fmsa-wasm`, lower them, and run the full
//! search→pipeline→merge stack; property tests round-trip
//! emit → decode → lower → verify.
//!
//! The shape mirrors [`crate::swarm`]: *clone families* whose members
//! share one structural seed and differ by deterministic variants
//! (constant deltas, opcode swaps, and type-theme widening — the paper's
//! Fig. 1 situation, `i32` vs `i64` / `f32` vs `f64` specializations of
//! one template), buried in noise functions with unique seeds. All
//! family members are exported (their names survive merging as external
//! thunks, which is what lets differential tests compare pre/post-merge
//! behaviour by name); noise functions are exported with probability ½,
//! so internal-linkage deletion is exercised too.
//!
//! Generated bodies stay within the frontend's supported subset and are
//! safe to interpret on arbitrary inputs: no integer division (trap on
//! zero), shift counts masked by construction, loops bounded by constant
//! trip counts, and calls restricted to *leaf* functions so dynamic call
//! depth is at most two.

use fmsa_wasm::encode::{CodeWriter, WasmBuilder};
use fmsa_wasm::ValType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated wasm fixture module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WasmFixtureConfig {
    /// Total number of functions.
    pub functions: usize,
    /// Members per clone family.
    pub family_size: usize,
    /// Fraction of `functions` in clone families, in `[0, 1]`.
    pub clone_fraction: f64,
    /// Approximate arithmetic steps per function body.
    pub target_steps: usize,
    /// Declare a linear memory and emit load/store scratch traffic.
    pub with_memory: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for WasmFixtureConfig {
    fn default() -> Self {
        WasmFixtureConfig {
            functions: 60,
            family_size: 2,
            clone_fraction: 0.6,
            target_steps: 16,
            with_memory: true,
            seed: 0x3a5e_0007,
        }
    }
}

impl WasmFixtureConfig {
    /// Convenience: a corpus of `functions` functions with the default mix.
    pub fn with_functions(functions: usize) -> WasmFixtureConfig {
        WasmFixtureConfig { functions, ..WasmFixtureConfig::default() }
    }

    /// Number of complete clone families this configuration yields.
    pub fn families(&self) -> usize {
        let clones = (self.functions as f64 * self.clone_fraction) as usize;
        clones / self.family_size.max(2)
    }
}

/// Signature bookkeeping for call-site generation.
struct FnInfo {
    index: u32,
    params: Vec<ValType>,
    result: ValType,
    /// Leaf functions make no calls themselves; only leaves are callable,
    /// bounding dynamic call depth.
    leaf: bool,
}

/// Serializes the module described by `cfg` to wasm bytes.
pub fn wasm_fixture_bytes(cfg: &WasmFixtureConfig) -> Vec<u8> {
    let mut b = WasmBuilder::new();
    if cfg.with_memory {
        b.add_memory(1);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let family_size = cfg.family_size.max(2);
    let families = cfg.families();
    let noise = cfg.functions.saturating_sub(families * family_size);
    let mut emitted: Vec<FnInfo> = Vec::new();
    for fam in 0..families {
        let fam_seed: u64 = rng.gen();
        for member in 0..family_size {
            emit_function(
                &mut b,
                &mut emitted,
                cfg,
                fam_seed,
                member as u64,
                Some(format!("fam{fam}_m{member}")),
            );
        }
    }
    for k in 0..noise {
        let seed: u64 = rng.gen();
        let export = rng.gen_bool(0.5).then(|| format!("noise{k}"));
        emit_function(&mut b, &mut emitted, cfg, seed, 0, export);
    }
    b.finish()
}

/// The type theme of one function: which concrete type its "flexible"
/// slots use. Odd family members widen the theme, producing the paper's
/// Fig. 1 cross-type clones.
#[derive(Clone, Copy, PartialEq)]
enum Theme {
    Int(ValType),   // I32 or I64
    Float(ValType), // F32 or F64
}

impl Theme {
    fn vt(self) -> ValType {
        match self {
            Theme::Int(v) | Theme::Float(v) => v,
        }
    }
}

/// Emits one function. All structural decisions come from a fresh RNG
/// seeded with `seed` (identical across family members); `member` only
/// perturbs emitted constants/opcodes/types, so members stay alignable.
fn emit_function(
    b: &mut WasmBuilder,
    emitted: &mut Vec<FnInfo>,
    cfg: &WasmFixtureConfig,
    seed: u64,
    member: u64,
    export: Option<String>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Member 1 varies only by constants/opcode swaps (the paper's plain
    // body mutations); members ≥ 2 alternate the type theme as well, so
    // families of 3+ contain Fig. 1 cross-type clones.
    let widen = member >= 2 && member.is_multiple_of(2);
    let theme = match rng.gen_range(0..7u32) {
        0..=2 => Theme::Int(if widen { ValType::I64 } else { ValType::I32 }),
        3 | 4 => Theme::Int(if widen { ValType::I32 } else { ValType::I64 }),
        5 => Theme::Float(if widen { ValType::F64 } else { ValType::F32 }),
        _ => Theme::Float(if widen { ValType::F32 } else { ValType::F64 }),
    };
    let n_params = rng.gen_range(1..4usize);
    let params: Vec<ValType> =
        (0..n_params).map(|_| if rng.gen_bool(0.7) { theme.vt() } else { ValType::I32 }).collect();
    let result = theme.vt();

    let mut g = BodyGen {
        code: CodeWriter::new(),
        theme,
        member,
        site: 0,
        acc: n_params as u32,         // local index of the accumulator
        counter: n_params as u32 + 1, // loop counter local
        made_calls: false,
    };
    // Seed the accumulator from the parameters.
    for (k, &p) in params.iter().enumerate() {
        g.code.local_get(k as u32);
        g.convert(p, theme.vt());
        if k == 0 {
            g.code.local_set(g.acc);
        } else {
            g.fold_into_acc(&mut rng);
        }
    }
    let steps = cfg.target_steps / 2 + rng.gen_range(0..cfg.target_steps.max(1));
    for _ in 0..steps {
        match rng.gen_range(0..10u32) {
            0..=4 => g.const_step(&mut rng),
            5 => g.if_else_step(&mut rng),
            6 => g.loop_step(&mut rng),
            7 => {
                if matches!(theme, Theme::Int(_)) {
                    g.br_table_step(&mut rng);
                } else {
                    g.const_step(&mut rng);
                }
            }
            8 => {
                if cfg.with_memory {
                    g.memory_step(&mut rng);
                } else {
                    g.const_step(&mut rng);
                }
            }
            _ => {
                if !g.call_step(&mut rng, emitted) {
                    g.const_step(&mut rng);
                }
            }
        }
    }
    g.code.local_get(g.acc);

    let made_calls = g.made_calls;
    let ty = b.add_type(&params, &[result]);
    // Declared locals: accumulator + loop counter.
    let idx = b.add_function(ty, &[theme.vt(), ValType::I32], g.code);
    if let Some(name) = export {
        b.export_func(&name, idx);
    }
    emitted.push(FnInfo { index: idx, params, result, leaf: !made_calls });
}

struct BodyGen {
    code: CodeWriter,
    theme: Theme,
    member: u64,
    /// Emission-site counter driving the member variant masks.
    site: u64,
    acc: u32,
    counter: u32,
    made_calls: bool,
}

impl BodyGen {
    /// Whether the member variant perturbs this site.
    fn variant_hit(&mut self) -> bool {
        self.site += 1;
        self.member != 0 && (self.site + self.member).is_multiple_of(5)
    }

    fn push_const(&mut self, rng: &mut StdRng) {
        let base = rng.gen_range(1..1_000_000i64);
        let delta = if self.variant_hit() { self.member as i64 } else { 0 };
        match self.theme.vt() {
            ValType::I32 => self.code.i32_const((base + delta) as i32),
            ValType::I64 => self.code.i64_const(base + delta),
            ValType::F32 => self.code.f32_const((base + delta) as f32 / 8.0),
            ValType::F64 => self.code.f64_const((base + delta) as f64 / 8.0),
        }
    }

    /// Emits a binary op folding the stack top into the accumulator
    /// (stack: [v] → acc = acc ⊕ v, leaving nothing).
    fn fold_into_acc(&mut self, rng: &mut StdRng) {
        self.code.local_get(self.acc);
        // Operands are [v, acc]; all chosen ops are symmetric enough for
        // fixture purposes (sub included deliberately: order matters, so
        // merged code must preserve it).
        self.binop(rng);
        self.code.local_set(self.acc);
    }

    /// Emits one theme binary operator consuming two stack values.
    fn binop(&mut self, rng: &mut StdRng) {
        match self.theme {
            Theme::Int(vt) => {
                // add sub mul and or xor (wasm `ibinary` indices).
                let mut k = *[0u8, 1, 2, 7, 8, 9].get(rng.gen_range(0..6usize)).expect("in range");
                if self.variant_hit() {
                    // Swap add<->sub / and<->or: same shape, different op.
                    k = match k {
                        0 => 1,
                        1 => 0,
                        7 => 8,
                        8 => 7,
                        other => other,
                    };
                }
                self.code.ibinary(vt, k);
            }
            Theme::Float(vt) => {
                let k = rng.gen_range(0..4u8); // add sub mul div
                self.code.fbinary(vt, k);
            }
        }
    }

    /// acc = acc ⊕ const.
    fn const_step(&mut self, rng: &mut StdRng) {
        self.push_const(rng);
        self.fold_into_acc(rng);
    }

    /// `if (result T) { acc ⊕ c1 } else { acc ⊕ c2 }` stored back to acc.
    fn if_else_step(&mut self, rng: &mut StdRng) {
        self.code.local_get(self.acc);
        self.push_const(rng);
        match self.theme {
            Theme::Int(vt) => {
                self.code.icmp(vt, *[0u8, 2, 4, 6].get(rng.gen_range(0..4usize)).expect("in range"))
            }
            Theme::Float(vt) => self.code.fcmp(vt, rng.gen_range(0..6u8)),
        }
        self.code.if_(Some(self.theme.vt()));
        self.code.local_get(self.acc);
        self.push_const(rng);
        self.binop(rng);
        self.code.else_();
        self.code.local_get(self.acc);
        self.push_const(rng);
        self.binop(rng);
        self.code.end();
        self.code.local_set(self.acc);
    }

    /// A constant-trip-count loop mutating the accumulator.
    fn loop_step(&mut self, rng: &mut StdRng) {
        let trips = rng.gen_range(1..7i32);
        self.code.i32_const(trips);
        self.code.local_set(self.counter);
        self.code.loop_(None);
        self.const_step(rng);
        self.code.local_get(self.counter);
        self.code.i32_const(1);
        self.code.ibinary(ValType::I32, 1); // sub
        self.code.local_tee(self.counter);
        self.code.eqz(ValType::I32);
        self.code.eqz(ValType::I32); // counter != 0
        self.code.br_if(0);
        self.code.end();
    }

    /// A three-way `br_table` on the low accumulator bits; two arms
    /// mutate the accumulator, the default skips both.
    fn br_table_step(&mut self, rng: &mut StdRng) {
        self.code.block(None);
        self.code.block(None);
        self.code.block(None);
        self.code.local_get(self.acc);
        if self.theme.vt() == ValType::I64 {
            self.code.i32_wrap_i64();
        }
        self.code.i32_const(3);
        self.code.ibinary(ValType::I32, 7); // and
        self.code.br_table(&[0, 1], 2);
        self.code.end();
        self.const_step(rng); // arm 0
        self.code.br(1);
        self.code.end();
        self.const_step(rng); // arm 1
        self.code.br(0);
        self.code.end();
    }

    /// Scratch-memory traffic: store the accumulator, reload it (plus a
    /// sub-width byte round-trip for the i32 theme).
    fn memory_step(&mut self, rng: &mut StdRng) {
        let addr = rng.gen_range(0..1024u32) * 8;
        let vt = self.theme.vt();
        self.code.i32_const(addr as i32);
        self.code.local_get(self.acc);
        self.code.store(vt, 0);
        self.code.i32_const(addr as i32);
        self.code.load(vt, 0);
        self.code.local_set(self.acc);
        if vt == ValType::I32 && rng.gen_bool(0.5) {
            self.code.i32_const(addr as i32 + 4);
            self.code.local_get(self.acc);
            self.code.i32_store8(0);
            self.code.i32_const(addr as i32 + 4);
            self.code.i32_load8_u(0);
            self.fold_into_acc(rng);
        }
    }

    /// Calls a previously emitted leaf function, folding its result into
    /// the accumulator when a safe conversion exists. Returns `false`
    /// when no leaf candidate exists (caller emits a plain step so the
    /// RNG stream stays aligned across members).
    fn call_step(&mut self, rng: &mut StdRng, emitted: &[FnInfo]) -> bool {
        let leaves: Vec<&FnInfo> = emitted.iter().filter(|f| f.leaf).collect();
        if leaves.is_empty() {
            return false;
        }
        let callee = leaves[rng.gen_range(0..leaves.len())];
        for &p in &callee.params {
            if rng.gen_bool(0.5) && convertible(self.theme.vt(), p) {
                self.code.local_get(self.acc);
                self.convert(self.theme.vt(), p);
            } else {
                let v = rng.gen_range(1..10_000i64);
                match p {
                    ValType::I32 => self.code.i32_const(v as i32),
                    ValType::I64 => self.code.i64_const(v),
                    ValType::F32 => self.code.f32_const(v as f32),
                    ValType::F64 => self.code.f64_const(v as f64),
                }
            }
        }
        self.code.call(callee.index);
        if convertible(callee.result, self.theme.vt()) {
            self.convert(callee.result, self.theme.vt());
            self.fold_into_acc(rng);
        } else {
            self.code.drop_();
        }
        self.made_calls = true;
        true
    }

    /// Emits the conversion `from → to` on the stack top. Only total,
    /// never-trapping conversions are used (see [`convertible`]).
    fn convert(&mut self, from: ValType, to: ValType) {
        use ValType::{F32, F64, I32, I64};
        match (from, to) {
            (a, b) if a == b => {}
            (I32, I64) => self.code.i64_extend_i32(true),
            (I64, I32) => self.code.i32_wrap_i64(),
            (F32, F64) => self.code.f64_promote_f32(),
            (F64, F32) => self.code.f32_demote_f64(),
            (I32, F32) => self.code.f32_convert_i32_s(),
            (I32, F64) => self.code.f64_convert_i32_s(),
            (I64, F32) => {
                self.code.i32_wrap_i64();
                self.code.f32_convert_i32_s();
            }
            (I64, F64) => {
                self.code.i32_wrap_i64();
                self.code.f64_convert_i32_s();
            }
            // float → int via reinterpret (total, unlike trunc).
            (F32, I32) => self.code.i32_reinterpret_f32(),
            (F32, I64) => {
                self.code.i32_reinterpret_f32();
                self.code.i64_extend_i32(false);
            }
            (F64, _) => unreachable!("guarded by convertible()"),
            _ => unreachable!("all cases covered"),
        }
    }
}

/// Whether [`BodyGen::convert`] can produce `to` from `from` without a
/// trapping conversion.
fn convertible(from: ValType, to: ValType) -> bool {
    !(from == ValType::F64 && matches!(to, ValType::I32 | ValType::I64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        let cfg = WasmFixtureConfig::with_functions(20);
        assert_eq!(wasm_fixture_bytes(&cfg), wasm_fixture_bytes(&cfg));
    }

    #[test]
    fn fixture_decodes_lowers_and_verifies() {
        let cfg = WasmFixtureConfig::with_functions(30);
        let bytes = wasm_fixture_bytes(&cfg);
        assert!(fmsa_wasm::is_wasm(&bytes));
        let m = fmsa_wasm::load_wasm(&bytes, "fixture").expect("decodes + lowers");
        assert_eq!(m.func_count(), 30);
        let errs = fmsa_ir::verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn memoryless_fixture_supported() {
        let cfg = WasmFixtureConfig { with_memory: false, ..WasmFixtureConfig::with_functions(12) };
        let m = fmsa_wasm::load_wasm(&wasm_fixture_bytes(&cfg), "nomem").expect("decodes");
        assert!(fmsa_ir::verify_module(&m).is_empty());
        // Without a memory no function takes the threaded base pointer.
        for f in m.func_ids() {
            for p in m.func(f).params() {
                assert!(!m.types.is_ptr(p.ty));
            }
        }
    }

    #[test]
    fn family_members_are_exported() {
        let cfg = WasmFixtureConfig::with_functions(24);
        let m = fmsa_wasm::load_wasm(&wasm_fixture_bytes(&cfg), "f").expect("decodes");
        for fam in 0..cfg.families() {
            for member in 0..cfg.family_size {
                let name = format!("fam{fam}_m{member}");
                let f = m.func_by_name(&name).unwrap_or_else(|| panic!("{name} exported"));
                assert_eq!(m.func(f).linkage, fmsa_ir::Linkage::External);
            }
        }
    }
}
