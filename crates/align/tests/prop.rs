//! Property-based tests for the alignment algorithms.

use fmsa_align::{
    banded_needleman_wunsch, hirschberg, needleman_wunsch, smith_waterman, AlignPlan, Alignment,
    AlignmentBudget, BudgetFallback, ScoringScheme,
};
use proptest::prelude::*;

/// Brute-force optimal global alignment score by exhaustive recursion.
/// Only feasible for tiny sequences; used as the ground-truth oracle.
fn brute_force_score(a: &[u8], b: &[u8], scheme: &ScoringScheme) -> i64 {
    fn go(a: &[u8], b: &[u8], s: &ScoringScheme) -> i64 {
        match (a.split_first(), b.split_first()) {
            (None, None) => 0,
            (Some((_, ra)), None) => s.gap_score + go(ra, b, s),
            (None, Some((_, rb))) => s.gap_score + go(a, rb, s),
            (Some((x, ra)), Some((y, rb))) => {
                let sub = if x == y { s.match_score } else { s.mismatch_score };
                let diag = sub + go(ra, rb, s);
                let up = s.gap_score + go(ra, b, s);
                let left = s.gap_score + go(a, rb, s);
                diag.max(up).max(left)
            }
        }
    }
    go(a, b, scheme)
}

fn small_seq() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..8)
}

fn medium_seq() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 0..64)
}

proptest! {
    #[test]
    fn nw_alignment_is_structurally_valid(a in medium_seq(), b in medium_seq()) {
        let al = needleman_wunsch(&a, &b, |x, y| x == y, &ScoringScheme::default());
        prop_assert!(al.is_valid_for(a.len(), b.len()));
        prop_assert!(al.len() >= a.len().max(b.len()));
        prop_assert!(al.len() <= a.len() + b.len());
    }

    #[test]
    fn nw_reported_score_matches_rescore(a in medium_seq(), b in medium_seq()) {
        let scheme = ScoringScheme::default();
        let al = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
        prop_assert_eq!(al.score, al.rescore(&scheme));
    }

    #[test]
    fn nw_score_is_optimal(a in small_seq(), b in small_seq()) {
        let scheme = ScoringScheme::default();
        let al = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
        let oracle = brute_force_score(&a, &b, &scheme);
        prop_assert_eq!(al.score, oracle);
    }

    #[test]
    fn hirschberg_matches_nw_score(a in medium_seq(), b in medium_seq()) {
        let scheme = ScoringScheme::default();
        let h = hirschberg(&a, &b, |x, y| x == y, &scheme);
        let n = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
        prop_assert_eq!(h.score, n.score);
        prop_assert!(h.is_valid_for(a.len(), b.len()));
    }

    #[test]
    fn identical_inputs_align_all_matches(a in medium_seq()) {
        let al = needleman_wunsch(&a, &a, |x, y| x == y, &ScoringScheme::default());
        prop_assert_eq!(al.match_count(), a.len());
    }

    #[test]
    fn alignment_is_symmetric_in_score(a in medium_seq(), b in medium_seq()) {
        let scheme = ScoringScheme::default();
        let ab = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
        let ba = needleman_wunsch(&b, &a, |x, y| x == y, &scheme);
        prop_assert_eq!(ab.score, ba.score);
    }

    #[test]
    fn local_never_scores_below_zero(a in medium_seq(), b in medium_seq()) {
        let l = smith_waterman(&a, &b, |x, y| x == y, &ScoringScheme::default());
        prop_assert!(l.alignment.score >= 0);
        prop_assert!(l.a_start <= l.a_end && l.a_end <= a.len());
        prop_assert!(l.b_start <= l.b_end && l.b_end <= b.len());
    }

    #[test]
    fn local_score_at_most_global_matches(a in medium_seq(), b in medium_seq()) {
        // The local score can't exceed match_score * min(len).
        let scheme = ScoringScheme::default();
        let l = smith_waterman(&a, &b, |x, y| x == y, &scheme);
        let bound = scheme.match_score * a.len().min(b.len()) as i64;
        prop_assert!(l.alignment.score <= bound);
    }

    #[test]
    fn banded_is_valid_and_bounded_by_nw(
        a in medium_seq(),
        b in medium_seq(),
        band in 0usize..16,
    ) {
        let scheme = ScoringScheme::default();
        let banded = banded_needleman_wunsch(&a, &b, |x, y| x == y, &scheme, band);
        prop_assert!(banded.is_valid_for(a.len(), b.len()));
        prop_assert_eq!(banded.score, banded.rescore(&scheme));
        let full = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
        prop_assert!(banded.score <= full.score, "band restricts the path set");
    }

    #[test]
    fn banded_with_covering_band_equals_nw(a in medium_seq(), b in medium_seq()) {
        // A band covering the whole matrix must reproduce NW exactly,
        // including tie-breaking.
        let scheme = ScoringScheme::default();
        let banded =
            banded_needleman_wunsch(&a, &b, |x, y| x == y, &scheme, a.len() + b.len());
        let full = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
        prop_assert_eq!(banded.steps, full.steps);
        prop_assert_eq!(banded.score, full.score);
    }

    #[test]
    fn budget_plan_is_total_and_consistent(n in 0usize..10_000, m in 0usize..10_000) {
        // Every length pair gets exactly one plan, and shrinking a budget
        // never upgrades a pair from fallback to full.
        let tight = AlignmentBudget {
            full_matrix_cells: 100_000,
            fallback: BudgetFallback::Banded(8),
            max_len: 5_000,
        };
        let loose = AlignmentBudget { full_matrix_cells: 10_000_000, ..tight };
        let pt = tight.plan(n, m);
        let pl = loose.plan(n, m);
        if pt == AlignPlan::Full {
            prop_assert_eq!(pl, AlignPlan::Full);
        }
        if n > tight.max_len || m > tight.max_len {
            prop_assert_eq!(pt, AlignPlan::Skip);
            prop_assert_eq!(pl, AlignPlan::Skip);
        }
    }
}

#[test]
fn nw_handles_degenerate_equivalence() {
    // Everything equivalent to everything: all columns should be matches.
    let a = [1u8, 2, 3];
    let b = [9u8, 9, 9];
    let al = needleman_wunsch(&a, &b, |_, _| true, &ScoringScheme::default());
    assert_eq!(al.match_count(), 3);
    // Nothing equivalent: score should be max(gap-only, mismatch mix).
    let al: Alignment = needleman_wunsch(&a, &b, |_, _| false, &ScoringScheme::default());
    assert_eq!(al.match_count(), 0);
}
