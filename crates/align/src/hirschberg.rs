//! Hirschberg's linear-space global alignment.
//!
//! The paper notes that "other algorithms could also be used with different
//! performance and memory usage trade-offs" (§III-C). Hirschberg's
//! divide-and-conquer formulation computes an optimal global alignment in
//! `O(nm)` time but only `O(n + m)` space, which matters when aligning the
//! multi-thousand-instruction functions in Table I.

use crate::{needleman_wunsch, Alignment, ScoringScheme, Step};

/// Computes an optimal global alignment using Hirschberg's linear-space
/// divide-and-conquer algorithm. The resulting score always equals the
/// Needleman-Wunsch score (the alignment itself may differ among co-optimal
/// alignments).
pub fn hirschberg<T>(
    a: &[T],
    b: &[T],
    eq: impl Fn(&T, &T) -> bool + Copy,
    scheme: &ScoringScheme,
) -> Alignment {
    let mut steps = Vec::with_capacity(a.len().max(b.len()));
    rec(a, b, 0, 0, eq, scheme, &mut steps);
    let score = Alignment { steps: steps.clone(), score: 0 }.rescore(scheme);
    Alignment { steps, score }
}

/// Last row of the NW score matrix for `a` vs `b` (forward direction).
fn nw_last_row<T>(
    a: &[T],
    b: &[T],
    eq: impl Fn(&T, &T) -> bool,
    scheme: &ScoringScheme,
) -> Vec<i64> {
    let m = b.len();
    let mut prev: Vec<i64> = (0..=m).map(|j| j as i64 * scheme.gap_score).collect();
    let mut cur = vec![0i64; m + 1];
    for (i, ai) in a.iter().enumerate() {
        cur[0] = (i as i64 + 1) * scheme.gap_score;
        for j in 1..=m {
            let sub = if eq(ai, &b[j - 1]) { scheme.match_score } else { scheme.mismatch_score };
            cur[j] = (prev[j - 1] + sub)
                .max(prev[j] + scheme.gap_score)
                .max(cur[j - 1] + scheme.gap_score);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

fn rec<T>(
    a: &[T],
    b: &[T],
    a_off: usize,
    b_off: usize,
    eq: impl Fn(&T, &T) -> bool + Copy,
    scheme: &ScoringScheme,
    out: &mut Vec<Step>,
) {
    if a.is_empty() {
        out.extend((0..b.len()).map(|j| Step::Right(b_off + j)));
        return;
    }
    if b.is_empty() {
        out.extend((0..a.len()).map(|i| Step::Left(a_off + i)));
        return;
    }
    if a.len() == 1 || b.len() == 1 {
        // Base case: full NW is cheap and exact.
        let al = needleman_wunsch(a, b, eq, scheme);
        out.extend(al.steps.into_iter().map(|s| shift(s, a_off, b_off)));
        return;
    }
    let mid = a.len() / 2;
    let (a_top, a_bot) = a.split_at(mid);
    // Forward scores of the top half vs every prefix of b.
    let fwd = nw_last_row(a_top, b, eq, scheme);
    // Backward scores of the bottom half vs every suffix of b (align the
    // reversed sequences).
    let a_rev: Vec<&T> = a_bot.iter().rev().collect();
    let b_rev: Vec<&T> = b.iter().rev().collect();
    let bwd = nw_last_row(&a_rev, &b_rev, |x, y| eq(x, y), scheme);
    // Pick the split point of b maximizing total score.
    let m = b.len();
    let mut best_j = 0;
    let mut best = i64::MIN;
    for j in 0..=m {
        let total = fwd[j] + bwd[m - j];
        if total > best {
            best = total;
            best_j = j;
        }
    }
    let (b_top, b_bot) = b.split_at(best_j);
    rec(a_top, b_top, a_off, b_off, eq, scheme, out);
    rec(a_bot, b_bot, a_off + mid, b_off + best_j, eq, scheme, out);
}

fn shift(s: Step, a_off: usize, b_off: usize) -> Step {
    match s {
        Step::Both { i, j, matched } => Step::Both { i: i + a_off, j: j + b_off, matched },
        Step::Left(i) => Step::Left(i + a_off),
        Step::Right(j) => Step::Right(j + b_off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn matches_nw_score_on_examples() {
        let scheme = ScoringScheme::default();
        let cases = [
            ("gattaca", "gcatgcg"),
            ("abcdef", "abcxdef"),
            ("", "abc"),
            ("abc", ""),
            ("same", "same"),
            ("abacabadabacaba", "abadacabacabaab"),
            ("x", "yyyyy"),
        ];
        for (a, b) in cases {
            let (av, bv) = (chars(a), chars(b));
            let h = hirschberg(&av, &bv, |x, y| x == y, &scheme);
            let n = needleman_wunsch(&av, &bv, |x, y| x == y, &scheme);
            assert_eq!(h.score, n.score, "scores differ for {a:?} vs {b:?}");
            assert!(h.is_valid_for(av.len(), bv.len()), "invalid alignment for {a:?} vs {b:?}");
        }
    }

    #[test]
    fn handles_long_sequences_without_quadratic_memory() {
        // 2000 x 2000 full NW matrix would be ~32 MB of i64 scores; this
        // test mostly guards against stack overflow / index bugs at size.
        let a: Vec<u32> = (0..2000).map(|i| i % 17).collect();
        let b: Vec<u32> = (0..2000).map(|i| (i + 3) % 17).collect();
        let scheme = ScoringScheme::default();
        let h = hirschberg(&a, &b, |x, y| x == y, &scheme);
        assert!(h.is_valid_for(a.len(), b.len()));
        assert_eq!(h.score, h.rescore(&scheme));
    }
}
