//! Banded Needleman-Wunsch: global alignment restricted to a diagonal
//! band.
//!
//! The full dynamic program fills `(n+1) × (m+1)` cells; for the highly
//! similar function pairs FMSA merges profitably, the optimal path hugs
//! the main diagonal, so restricting the program to cells with
//! `j - i ∈ [-(w + max(0, n-m)), w + max(0, m-n)]` (half-width `w`,
//! widened by the length difference so the corner cells stay reachable)
//! costs `O((n+m)·w)` time and space instead of `O(nm)`. The result is a
//! valid global alignment that is optimal *within the band*: for pairs
//! whose true path leaves the band the score is a lower bound on the
//! full-matrix score, which makes the fallback conservative for
//! profitability — a banded merge can only look worse, never better,
//! than the exact alignment would.

use crate::{Alignment, ScoringScheme, Step};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Diag,
    Up,
    Left,
    None,
}

const NEG: i64 = i64::MIN / 4;

/// Computes a banded global alignment of `a` and `b` with half-width
/// `band` (a `band` of 0 still covers the length-difference diagonals).
/// Tie-breaking matches [`crate::needleman_wunsch`]: Diag ≥ Up ≥ Left.
pub fn banded_needleman_wunsch<T>(
    a: &[T],
    b: &[T],
    eq: impl Fn(&T, &T) -> bool,
    scheme: &ScoringScheme,
    band: usize,
) -> Alignment {
    let n = a.len();
    let m = b.len();
    // Offsets d = j - i covered by the band.
    let lo = -((band + n.saturating_sub(m)) as i64);
    let hi = (band + m.saturating_sub(n)) as i64;
    let width = (hi - lo + 1) as usize;
    // score[i * width + k] is cell (i, j) with k = j - i - lo.
    let mut score = vec![NEG; (n + 1) * width];
    let mut dir = vec![Dir::None; (n + 1) * width];
    let cell = |i: usize, j: usize| -> Option<usize> {
        let d = j as i64 - i as i64;
        (d >= lo && d <= hi).then(|| i * width + (d - lo) as usize)
    };
    for j in 0..=m {
        let Some(c) = cell(0, j) else { break };
        score[c] = j as i64 * scheme.gap_score;
        dir[c] = if j == 0 { Dir::None } else { Dir::Left };
    }
    for i in 1..=n {
        if let Some(c) = cell(i, 0) {
            score[c] = i as i64 * scheme.gap_score;
            dir[c] = Dir::Up;
        }
        let j_min = 1.max(i as i64 + lo) as usize;
        let j_max = (m as i64).min(i as i64 + hi) as usize;
        for j in j_min..=j_max {
            let c = cell(i, j).expect("in band");
            let matched = eq(&a[i - 1], &b[j - 1]);
            let sub = if matched { scheme.match_score } else { scheme.mismatch_score };
            let diag = cell(i - 1, j - 1).map_or(NEG, |p| score[p]).saturating_add(sub);
            let up = cell(i - 1, j).map_or(NEG, |p| score[p]).saturating_add(scheme.gap_score);
            let left = cell(i, j - 1).map_or(NEG, |p| score[p]).saturating_add(scheme.gap_score);
            let (best, d) = if diag >= up && diag >= left {
                (diag, Dir::Diag)
            } else if up >= left {
                (up, Dir::Up)
            } else {
                (left, Dir::Left)
            };
            score[c] = best;
            dir[c] = d;
        }
    }
    // Traceback from (n, m); the corner is always in the band because the
    // band is widened by the length difference.
    let end = cell(n, m).expect("corner in band");
    let mut steps = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let c = cell(i, j).expect("traceback stays in band");
        match dir[c] {
            Dir::Diag if i > 0 && j > 0 => {
                let matched = eq(&a[i - 1], &b[j - 1]);
                steps.push(Step::Both { i: i - 1, j: j - 1, matched });
                i -= 1;
                j -= 1;
            }
            Dir::Up | Dir::Diag if i > 0 => {
                steps.push(Step::Left(i - 1));
                i -= 1;
            }
            _ => {
                steps.push(Step::Right(j - 1));
                j -= 1;
            }
        }
    }
    steps.reverse();
    Alignment { steps, score: score[end] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::needleman_wunsch;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn wide_band_matches_full_nw() {
        let scheme = ScoringScheme::default();
        let cases =
            [("gattaca", "gcatgcg"), ("abcdef", "abcxdef"), ("", "abc"), ("abc", ""), ("x", "yyy")];
        for (a, b) in cases {
            let (av, bv) = (chars(a), chars(b));
            let full = needleman_wunsch(&av, &bv, |x, y| x == y, &scheme);
            let banded =
                banded_needleman_wunsch(&av, &bv, |x, y| x == y, &scheme, av.len() + bv.len());
            assert_eq!(banded.score, full.score, "{a:?} vs {b:?}");
            assert_eq!(banded.steps, full.steps, "tie-breaking must match NW for {a:?} vs {b:?}");
        }
    }

    #[test]
    fn narrow_band_still_produces_valid_alignment() {
        let a: Vec<u32> = (0..500).collect();
        let b: Vec<u32> = (0..500).map(|x| if x % 97 == 0 { 1_000_000 } else { x }).collect();
        let scheme = ScoringScheme::default();
        let al = banded_needleman_wunsch(&a, &b, |x, y| x == y, &scheme, 8);
        assert!(al.is_valid_for(a.len(), b.len()));
        assert_eq!(al.score, al.rescore(&scheme));
    }

    #[test]
    fn band_score_is_lower_bound_of_full_score() {
        let scheme = ScoringScheme::default();
        // Shifted copies: the optimal path sits `shift` off the diagonal.
        for shift in [0usize, 3, 10, 40] {
            let a: Vec<u32> = (0..200).collect();
            let b: Vec<u32> = (shift as u32..200 + shift as u32).collect();
            let full = needleman_wunsch(&a, &b, |x, y| x == y, &scheme);
            for band in [0usize, 2, 8, 64] {
                let banded = banded_needleman_wunsch(&a, &b, |x, y| x == y, &scheme, band);
                assert!(banded.is_valid_for(a.len(), b.len()));
                assert!(
                    banded.score <= full.score,
                    "banded beats optimal? shift={shift} band={band}"
                );
                if band >= 2 * shift {
                    assert_eq!(banded.score, full.score, "shift={shift} band={band}");
                }
            }
        }
    }

    #[test]
    fn unequal_lengths_are_covered_by_widened_band() {
        let scheme = ScoringScheme::default();
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..17).collect();
        let al = banded_needleman_wunsch(&a, &b, |x, y| x == y, &scheme, 0);
        assert!(al.is_valid_for(a.len(), b.len()));
        let al = banded_needleman_wunsch(&b, &a, |x, y| x == y, &scheme, 0);
        assert!(al.is_valid_for(b.len(), a.len()));
    }

    #[test]
    fn identical_sequences_band_zero() {
        let a: Vec<u32> = (0..1000).collect();
        let scheme = ScoringScheme::default();
        let al = banded_needleman_wunsch(&a, &a, |x, y| x == y, &scheme, 0);
        assert_eq!(al.match_count(), 1000);
        assert_eq!(al.score, 1000 * scheme.match_score);
    }
}
