//! Smith-Waterman local alignment.
//!
//! Included as one of the alternative alignment algorithms the paper cites
//! (Smith & Waterman 1981, reference [15]); useful for finding the single
//! best-matching *region* between two functions, e.g. when deciding whether
//! partial outlining would beat whole-function merging.

use crate::{Alignment, ScoringScheme, Step};

/// A local alignment: the best-scoring pair of subsequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Columns of the locally aligned region.
    pub alignment: Alignment,
    /// Start index of the region in the first sequence (inclusive).
    pub a_start: usize,
    /// End index in the first sequence (exclusive).
    pub a_end: usize,
    /// Start index of the region in the second sequence (inclusive).
    pub b_start: usize,
    /// End index in the second sequence (exclusive).
    pub b_end: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Stop,
    Diag,
    Up,
    Left,
}

/// Computes the best local alignment of `a` and `b` under `scheme`.
///
/// Gap and mismatch scores should be negative for the "local" behaviour to
/// be meaningful; with all-positive scores this degenerates to global
/// alignment.
pub fn smith_waterman<T>(
    a: &[T],
    b: &[T],
    eq: impl Fn(&T, &T) -> bool,
    scheme: &ScoringScheme,
) -> LocalAlignment {
    let n = a.len();
    let m = b.len();
    let w = m + 1;
    let mut score = vec![0i64; (n + 1) * w];
    let mut dir = vec![Dir::Stop; (n + 1) * w];
    let mut best = 0i64;
    let mut best_cell = (0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let matched = eq(&a[i - 1], &b[j - 1]);
            let sub = if matched { scheme.match_score } else { scheme.mismatch_score };
            let diag = score[(i - 1) * w + (j - 1)] + sub;
            let up = score[(i - 1) * w + j] + scheme.gap_score;
            let left = score[i * w + (j - 1)] + scheme.gap_score;
            let (s, d) = if diag >= up && diag >= left && diag > 0 {
                (diag, Dir::Diag)
            } else if up >= left && up > 0 {
                (up, Dir::Up)
            } else if left > 0 {
                (left, Dir::Left)
            } else {
                (0, Dir::Stop)
            };
            score[i * w + j] = s;
            dir[i * w + j] = d;
            if s > best {
                best = s;
                best_cell = (i, j);
            }
        }
    }
    let (mut i, mut j) = best_cell;
    let (a_end, b_end) = (i, j);
    let mut steps = Vec::new();
    while dir[i * w + j] != Dir::Stop {
        match dir[i * w + j] {
            Dir::Diag => {
                let matched = eq(&a[i - 1], &b[j - 1]);
                steps.push(Step::Both { i: i - 1, j: j - 1, matched });
                i -= 1;
                j -= 1;
            }
            Dir::Up => {
                steps.push(Step::Left(i - 1));
                i -= 1;
            }
            Dir::Left => {
                steps.push(Step::Right(j - 1));
                j -= 1;
            }
            Dir::Stop => unreachable!(),
        }
    }
    steps.reverse();
    LocalAlignment {
        alignment: Alignment { steps, score: best },
        a_start: i,
        a_end,
        b_start: j,
        b_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn finds_embedded_common_region() {
        let a = chars("xxxxcommonyyyy");
        let b = chars("zzcommonww");
        let l = smith_waterman(&a, &b, |x, y| x == y, &ScoringScheme::default());
        assert_eq!(&a[l.a_start..l.a_end].iter().collect::<String>(), "common");
        assert_eq!(&b[l.b_start..l.b_end].iter().collect::<String>(), "common");
        assert_eq!(l.alignment.match_count(), 6);
    }

    #[test]
    fn disjoint_sequences_give_short_alignment() {
        let a = chars("aaaa");
        let b = chars("bbbb");
        let l = smith_waterman(&a, &b, |x, y| x == y, &ScoringScheme::default());
        assert_eq!(l.alignment.score, 0);
        assert!(l.alignment.is_empty());
    }

    #[test]
    fn local_score_at_least_zero() {
        let a = chars("abcd");
        let b = chars("abxd");
        let l = smith_waterman(&a, &b, |x, y| x == y, &ScoringScheme::default());
        assert!(l.alignment.score >= 0);
        assert!(l.alignment.match_count() >= 2);
    }

    #[test]
    fn empty_inputs() {
        let a: Vec<char> = vec![];
        let b = chars("abc");
        let l = smith_waterman(&a, &b, |x, y| x == y, &ScoringScheme::default());
        assert!(l.alignment.is_empty());
        assert_eq!((l.a_start, l.a_end), (0, 0));
    }
}
