//! Needleman-Wunsch global alignment (full dynamic program).
//!
//! "Our work uses the Needleman-Wunsch algorithm to perform sequence
//! alignment. This algorithm gives an alignment that is guaranteed to be
//! optimal for a given scoring scheme." (§III-C). The algorithm is
//! quadratic in both time and space in the lengths of the sequences —
//! which is exactly why the paper's Fig. 13 shows alignment dominating the
//! compile-time breakdown.

use crate::{Alignment, ScoringScheme, Step};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Diag,
    Up,   // consume a[i] against a gap
    Left, // consume b[j] against a gap
}

/// Computes the optimal global alignment of `a` and `b` under `scheme`,
/// using `eq` as the element-equivalence relation.
///
/// Tie-breaking is deterministic: diagonal moves are preferred over gaps in
/// the first sequence, which are preferred over gaps in the second. This
/// keeps merged-function code generation reproducible run to run.
pub fn needleman_wunsch<T>(
    a: &[T],
    b: &[T],
    eq: impl Fn(&T, &T) -> bool,
    scheme: &ScoringScheme,
) -> Alignment {
    let n = a.len();
    let m = b.len();
    let w = m + 1;
    // Score matrix, row-major, (n+1) x (m+1).
    let mut score = vec![0i64; (n + 1) * w];
    let mut dir = vec![Dir::Diag; (n + 1) * w];
    for j in 1..=m {
        score[j] = j as i64 * scheme.gap_score;
        dir[j] = Dir::Left;
    }
    for i in 1..=n {
        score[i * w] = i as i64 * scheme.gap_score;
        dir[i * w] = Dir::Up;
    }
    for i in 1..=n {
        for j in 1..=m {
            let matched = eq(&a[i - 1], &b[j - 1]);
            let sub = if matched { scheme.match_score } else { scheme.mismatch_score };
            let diag = score[(i - 1) * w + (j - 1)] + sub;
            let up = score[(i - 1) * w + j] + scheme.gap_score;
            let left = score[i * w + (j - 1)] + scheme.gap_score;
            // Deterministic preference: Diag >= Up >= Left.
            let (best, d) = if diag >= up && diag >= left {
                (diag, Dir::Diag)
            } else if up >= left {
                (up, Dir::Up)
            } else {
                (left, Dir::Left)
            };
            score[i * w + j] = best;
            dir[i * w + j] = d;
        }
    }
    // Traceback.
    let mut steps = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match dir[i * w + j] {
            Dir::Diag if i > 0 && j > 0 => {
                let matched = eq(&a[i - 1], &b[j - 1]);
                steps.push(Step::Both { i: i - 1, j: j - 1, matched });
                i -= 1;
                j -= 1;
            }
            Dir::Up | Dir::Diag if i > 0 => {
                steps.push(Step::Left(i - 1));
                i -= 1;
            }
            _ => {
                steps.push(Step::Right(j - 1));
                j -= 1;
            }
        }
    }
    steps.reverse();
    Alignment { steps, score: score[n * w + m] }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_char(a: &char, b: &char) -> bool {
        a == b
    }

    fn align_str(a: &str, b: &str) -> Alignment {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        needleman_wunsch(&av, &bv, eq_char, &ScoringScheme::default())
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let al = align_str("gattaca", "gattaca");
        assert_eq!(al.match_count(), 7);
        assert_eq!(al.cigar(), "7M");
        assert!(al.is_valid_for(7, 7));
    }

    #[test]
    fn empty_sequences() {
        let al = align_str("", "");
        assert!(al.is_empty());
        assert_eq!(al.score, 0);
        let al = align_str("abc", "");
        assert_eq!(al.cigar(), "3D");
        assert_eq!(al.score, -3);
        let al = align_str("", "ab");
        assert_eq!(al.cigar(), "2I");
    }

    #[test]
    fn classic_gattaca_example() {
        // A standard NW textbook pair.
        let al = align_str("gcatgcg", "gattaca");
        assert!(al.is_valid_for(7, 7));
        assert_eq!(al.score, al.rescore(&ScoringScheme::default()));
    }

    #[test]
    fn insertion_detected() {
        let al = align_str("abcdef", "abcxdef");
        assert_eq!(al.match_count(), 6);
        assert_eq!(al.cigar(), "3M1I3M");
    }

    #[test]
    fn deletion_detected() {
        let al = align_str("abcxdef", "abcdef");
        assert_eq!(al.match_count(), 6);
        assert_eq!(al.cigar(), "3M1D3M");
    }

    #[test]
    fn substitution_prefers_mismatch_column() {
        let al = align_str("abc", "axc");
        assert_eq!(al.cigar(), "1M1X1M");
    }

    #[test]
    fn score_is_optimal_for_simple_cases() {
        let scheme = ScoringScheme::default();
        let al = align_str("aaaa", "aaa");
        // 3 matches + 1 gap.
        assert_eq!(al.score, 3 * scheme.match_score + scheme.gap_score);
    }

    #[test]
    fn deterministic_output() {
        let a = align_str("abacabadabacaba", "abadacabacabaab");
        let b = align_str("abacabadabacaba", "abadacabacabaab");
        assert_eq!(a, b);
    }

    #[test]
    fn custom_equivalence_relation() {
        // Case-insensitive equivalence: a non-trivial relation, like the
        // paper's instruction equivalence.
        let a: Vec<char> = "AbC".chars().collect();
        let b: Vec<char> = "abc".chars().collect();
        let al =
            needleman_wunsch(&a, &b, |x, y| x.eq_ignore_ascii_case(y), &ScoringScheme::default());
        assert_eq!(al.match_count(), 3);
    }
}
