//! Alignment budgets: keeping one pathological pair from stalling the
//! merge pipeline.
//!
//! The full Needleman-Wunsch program is quadratic in time *and* space, so
//! one pair of multi-thousand-entry functions can dominate a whole pass
//! (and, in the parallel pipeline, pin a worker while its whole
//! generation waits on the commit barrier). An [`AlignmentBudget`] bounds
//! the per-pair cost up front, from the sequence lengths alone:
//!
//! * pairs whose DP matrix fits in [`AlignmentBudget::full_matrix_cells`]
//!   are aligned exactly with the caller's preferred algorithm;
//! * larger pairs use the [`BudgetFallback`]: Hirschberg (same optimal
//!   score, linear space, ~2× time) or banded NW (linear-ish time and
//!   space, possibly suboptimal — see [`crate::banded_needleman_wunsch`]
//!   for why suboptimality is conservative for merge profitability);
//! * pairs where either side exceeds [`AlignmentBudget::max_len`] are
//!   skipped outright ([`AlignPlan::Skip`]) and the candidate is treated
//!   as unprofitable.

use crate::{banded_needleman_wunsch, hirschberg, needleman_wunsch, Alignment, ScoringScheme};

/// What to do with a pair whose full DP matrix exceeds the cell budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetFallback {
    /// Banded NW with the given half-width: bounded time and space, score
    /// may be below the full-matrix optimum.
    Banded(usize),
    /// Hirschberg: optimal score in linear space, but still `O(nm)` time.
    /// Protects memory, not wall-clock.
    Hirschberg,
    /// Give up on the pair.
    Skip,
}

/// Per-pair cost bounds for one alignment, decided from lengths alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentBudget {
    /// Maximum `(n+1)·(m+1)` DP cells for a full-matrix alignment.
    pub full_matrix_cells: usize,
    /// Strategy for pairs over the cell budget.
    pub fallback: BudgetFallback,
    /// Hard cap: if either sequence is longer than this, the pair is
    /// skipped regardless of the fallback.
    pub max_len: usize,
}

impl Default for AlignmentBudget {
    /// The default budget never triggers on paper-scale functions (the
    /// suite tops out well below 5 000 linearized entries), so pipeline
    /// output stays bit-identical to the unbudgeted sequential pass;
    /// adversarial inputs beyond that fall back to a 64-wide band.
    fn default() -> Self {
        AlignmentBudget {
            full_matrix_cells: 25_000_000,
            fallback: BudgetFallback::Banded(64),
            max_len: 200_000,
        }
    }
}

/// The algorithm an [`AlignmentBudget`] selected for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignPlan {
    /// Full-matrix alignment with the caller's preferred algorithm.
    Full,
    /// Hirschberg divide-and-conquer.
    Hirschberg,
    /// Banded NW with the given half-width.
    Banded(usize),
    /// Do not align this pair.
    Skip,
}

impl AlignmentBudget {
    /// A budget that always selects [`AlignPlan::Full`] — the exact
    /// behaviour of the pass before budgets existed.
    pub fn unlimited() -> AlignmentBudget {
        AlignmentBudget {
            full_matrix_cells: usize::MAX,
            fallback: BudgetFallback::Hirschberg,
            max_len: usize::MAX,
        }
    }

    /// Decides how to align a pair of sequences of lengths `n` and `m`.
    pub fn plan(&self, n: usize, m: usize) -> AlignPlan {
        if n > self.max_len || m > self.max_len {
            return AlignPlan::Skip;
        }
        let cells = (n + 1).saturating_mul(m + 1);
        if cells <= self.full_matrix_cells {
            return AlignPlan::Full;
        }
        match self.fallback {
            BudgetFallback::Banded(w) => AlignPlan::Banded(w),
            BudgetFallback::Hirschberg => AlignPlan::Hirschberg,
            BudgetFallback::Skip => AlignPlan::Skip,
        }
    }
}

/// Aligns `a` and `b` according to `plan`. `Full` uses plain NW when
/// `prefer_hirschberg` is false and Hirschberg otherwise (the caller's
/// base algorithm choice). Returns `None` for [`AlignPlan::Skip`].
pub fn align_with_plan<T>(
    a: &[T],
    b: &[T],
    eq: impl Fn(&T, &T) -> bool + Copy,
    scheme: &ScoringScheme,
    plan: AlignPlan,
    prefer_hirschberg: bool,
) -> Option<Alignment> {
    match plan {
        AlignPlan::Full if prefer_hirschberg => Some(hirschberg(a, b, eq, scheme)),
        AlignPlan::Full => Some(needleman_wunsch(a, b, eq, scheme)),
        AlignPlan::Hirschberg => Some(hirschberg(a, b, eq, scheme)),
        AlignPlan::Banded(w) => Some(banded_needleman_wunsch(a, b, eq, scheme, w)),
        AlignPlan::Skip => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_never_triggers_at_paper_scale() {
        let budget = AlignmentBudget::default();
        for (n, m) in [(0, 0), (10, 2000), (4000, 4000), (4999, 4999)] {
            assert_eq!(budget.plan(n, m), AlignPlan::Full, "({n}, {m})");
        }
    }

    #[test]
    fn cell_cap_selects_fallback() {
        let budget = AlignmentBudget {
            full_matrix_cells: 10_000,
            fallback: BudgetFallback::Banded(16),
            max_len: 1_000_000,
        };
        assert_eq!(budget.plan(99, 99), AlignPlan::Full);
        assert_eq!(budget.plan(200, 200), AlignPlan::Banded(16));
        let budget = AlignmentBudget { fallback: BudgetFallback::Hirschberg, ..budget };
        assert_eq!(budget.plan(200, 200), AlignPlan::Hirschberg);
        let budget = AlignmentBudget { fallback: BudgetFallback::Skip, ..budget };
        assert_eq!(budget.plan(200, 200), AlignPlan::Skip);
    }

    #[test]
    fn length_cap_wins_over_fallback() {
        let budget = AlignmentBudget {
            full_matrix_cells: usize::MAX,
            fallback: BudgetFallback::Banded(64),
            max_len: 500,
        };
        assert_eq!(budget.plan(501, 10), AlignPlan::Skip);
        assert_eq!(budget.plan(10, 501), AlignPlan::Skip);
        assert_eq!(budget.plan(500, 500), AlignPlan::Full);
    }

    #[test]
    fn unlimited_budget_is_always_full() {
        let budget = AlignmentBudget::unlimited();
        assert_eq!(budget.plan(1_000_000, 1_000_000), AlignPlan::Full);
    }

    #[test]
    fn cell_product_does_not_overflow() {
        let budget = AlignmentBudget {
            full_matrix_cells: usize::MAX - 1,
            fallback: BudgetFallback::Skip,
            max_len: usize::MAX,
        };
        assert_eq!(budget.plan(usize::MAX - 1, usize::MAX - 1), AlignPlan::Skip);
    }

    #[test]
    fn align_with_plan_dispatches() {
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (1..41).collect();
        let scheme = ScoringScheme::default();
        let full = align_with_plan(&a, &b, |x, y| x == y, &scheme, AlignPlan::Full, false)
            .expect("full plan aligns");
        let hir = align_with_plan(&a, &b, |x, y| x == y, &scheme, AlignPlan::Hirschberg, false)
            .expect("hirschberg plan aligns");
        let banded = align_with_plan(&a, &b, |x, y| x == y, &scheme, AlignPlan::Banded(8), false)
            .expect("banded plan aligns");
        assert_eq!(full.score, hir.score);
        assert_eq!(full.score, banded.score, "shift of 1 is inside an 8-wide band");
        assert!(align_with_plan(&a, &b, |x, y| x == y, &scheme, AlignPlan::Skip, false).is_none());
    }
}
