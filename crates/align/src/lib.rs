//! # fmsa-align — sequence alignment for function merging
//!
//! Generic pairwise sequence alignment as used by the FMSA reproduction
//! (Rocha et al., CGO 2019, §III-C). The paper aligns two *linearized
//! functions* with the Needleman-Wunsch algorithm under "a standard scoring
//! scheme that rewards matches and equally penalizes mismatches and gaps";
//! this crate provides that algorithm plus two alternatives the paper
//! mentions as trade-offs: Hirschberg's linear-space variant and
//! Smith-Waterman local alignment.
//!
//! The crate is IR-agnostic: alignment works over any element type with a
//! caller-supplied equivalence relation.
//!
//! # Examples
//!
//! ```
//! use fmsa_align::{needleman_wunsch, ScoringScheme, Step};
//!
//! let a = [1, 2, 3, 4];
//! let b = [1, 3, 4, 5];
//! let al = needleman_wunsch(&a, &b, |x, y| x == y, &ScoringScheme::default());
//! assert_eq!(al.match_count(), 3);
//! // Projections reconstruct the inputs in order.
//! let lhs: Vec<usize> = al.steps.iter().filter_map(Step::left_index).collect();
//! assert_eq!(lhs, vec![0, 1, 2, 3]);
//! ```

#![warn(missing_docs)]

mod banded;
mod budget;
mod hirschberg;
mod local;
mod nw;

pub use banded::banded_needleman_wunsch;
pub use budget::{align_with_plan, AlignPlan, AlignmentBudget, BudgetFallback};
pub use hirschberg::hirschberg;
pub use local::{smith_waterman, LocalAlignment};
pub use nw::needleman_wunsch;

/// Weights for the alignment dynamic program.
///
/// The paper uses "a standard scoring scheme ... that rewards matches and
/// equally penalizes mismatches and gaps", which is the default here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringScheme {
    /// Score added when two equivalent elements are aligned.
    pub match_score: i64,
    /// Score added when two non-equivalent elements are aligned.
    pub mismatch_score: i64,
    /// Score added when an element is aligned against a blank.
    pub gap_score: i64,
}

impl Default for ScoringScheme {
    fn default() -> Self {
        ScoringScheme { match_score: 2, mismatch_score: -1, gap_score: -1 }
    }
}

impl ScoringScheme {
    /// A scheme with unit match reward and equal mismatch/gap penalties.
    pub fn unit() -> Self {
        ScoringScheme { match_score: 1, mismatch_score: -1, gap_score: -1 }
    }
}

/// One column of an alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Elements `a[i]` and `b[j]` are aligned; `matched` records whether
    /// they were equivalent under the relation (otherwise it is a
    /// mismatch column).
    Both {
        /// Index into the first sequence.
        i: usize,
        /// Index into the second sequence.
        j: usize,
        /// Whether the pair was equivalent.
        matched: bool,
    },
    /// `a[i]` aligned against a blank in the second sequence.
    Left(usize),
    /// `b[j]` aligned against a blank in the first sequence.
    Right(usize),
}

impl Step {
    /// The first-sequence index consumed by this column, if any.
    pub fn left_index(&self) -> Option<usize> {
        match *self {
            Step::Both { i, .. } | Step::Left(i) => Some(i),
            Step::Right(_) => None,
        }
    }

    /// The second-sequence index consumed by this column, if any.
    pub fn right_index(&self) -> Option<usize> {
        match *self {
            Step::Both { j, .. } | Step::Right(j) => Some(j),
            Step::Left(_) => None,
        }
    }

    /// Whether this is a match column.
    pub fn is_match(&self) -> bool {
        matches!(self, Step::Both { matched: true, .. })
    }
}

/// A global alignment of two sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment columns, in order.
    pub steps: Vec<Step>,
    /// Total score under the scheme that produced it.
    pub score: i64,
}

impl Alignment {
    /// Number of match columns.
    pub fn match_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_match()).count()
    }

    /// Number of columns (the common aligned length `l` of the paper's
    /// formal definition, `max(k1,k2) <= l <= k1+k2`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the alignment is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Fraction of columns that are matches, in `[0, 1]`.
    pub fn identity(&self) -> f64 {
        if self.steps.is_empty() {
            return 1.0;
        }
        self.match_count() as f64 / self.steps.len() as f64
    }

    /// Compact CIGAR-like rendering: `M`=match, `X`=mismatch, `D`=gap in
    /// second sequence, `I`=gap in first sequence, run-length encoded.
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run_char = ' ';
        let mut run_len = 0usize;
        let flush = |c: char, n: usize, out: &mut String| {
            if n > 0 {
                out.push_str(&n.to_string());
                out.push(c);
            }
        };
        for s in &self.steps {
            let c = match s {
                Step::Both { matched: true, .. } => 'M',
                Step::Both { matched: false, .. } => 'X',
                Step::Left(_) => 'D',
                Step::Right(_) => 'I',
            };
            if c == run_char {
                run_len += 1;
            } else {
                flush(run_char, run_len, &mut out);
                run_char = c;
                run_len = 1;
            }
        }
        flush(run_char, run_len, &mut out);
        out
    }

    /// Checks the structural invariants of a global alignment of sequences
    /// of lengths `n` and `m`: each side's indices appear exactly once, in
    /// increasing order. Used by property tests.
    pub fn is_valid_for(&self, n: usize, m: usize) -> bool {
        let lhs: Vec<usize> = self.steps.iter().filter_map(Step::left_index).collect();
        let rhs: Vec<usize> = self.steps.iter().filter_map(Step::right_index).collect();
        lhs == (0..n).collect::<Vec<_>>() && rhs == (0..m).collect::<Vec<_>>()
    }

    /// Recomputes the score of this alignment under `scheme`.
    pub fn rescore(&self, scheme: &ScoringScheme) -> i64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Both { matched: true, .. } => scheme.match_score,
                Step::Both { matched: false, .. } => scheme.mismatch_score,
                Step::Left(_) | Step::Right(_) => scheme.gap_score,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cigar_rendering() {
        let al = Alignment {
            steps: vec![
                Step::Both { i: 0, j: 0, matched: true },
                Step::Both { i: 1, j: 1, matched: true },
                Step::Left(2),
                Step::Right(2),
                Step::Both { i: 3, j: 3, matched: false },
            ],
            score: 0,
        };
        assert_eq!(al.cigar(), "2M1D1I1X");
        assert_eq!(al.match_count(), 2);
        assert!((al.identity() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn validity_checks_order_and_coverage() {
        let good = Alignment {
            steps: vec![Step::Both { i: 0, j: 0, matched: true }, Step::Left(1)],
            score: 0,
        };
        assert!(good.is_valid_for(2, 1));
        assert!(!good.is_valid_for(1, 1));
        let bad = Alignment { steps: vec![Step::Left(1), Step::Left(0)], score: 0 };
        assert!(!bad.is_valid_for(2, 0));
    }
}
