//! # fmsa-target — TTI-style code-size cost models
//!
//! The paper evaluates FMSA's profitability model against the target's
//! TargetTransformInfo code-size costs on two architectures (Intel x86-64
//! and ARM Thumb, §V). This crate is the reproduction's stand-in for TTI:
//! a per-instruction byte-cost table per [`TargetArch`], aggregated by
//! [`CostModel`] into function-body and whole-module sizes.
//!
//! The tables are calibrated to typical encodings (x86-64 variable-length,
//! Thumb-2 mostly 16/32-bit) rather than to an exact assembler: what the
//! evaluation needs is that *relative* sizes behave like a real backend —
//! calls pay per argument, switches pay per case, casts like `bitcast` are
//! free, and Thumb code is roughly half the size of x86-64 code.

#![warn(missing_docs)]

use fmsa_ir::{FuncId, Function, Inst, Module, Opcode};

/// Target architectures evaluated in the paper (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetArch {
    /// Intel x86-64 (variable-length encoding).
    X86_64,
    /// ARM Thumb-2 (16/32-bit encodings, the paper's size-focused target).
    ArmThumb,
}

impl TargetArch {
    /// Both targets, in the paper's presentation order.
    pub const ALL: [TargetArch; 2] = [TargetArch::X86_64, TargetArch::ArmThumb];

    /// Human-readable target name.
    pub fn name(&self) -> &'static str {
        match self {
            TargetArch::X86_64 => "x86-64",
            TargetArch::ArmThumb => "arm-thumb",
        }
    }
}

/// Code-size reduction `before → after`, in percent of `before`.
/// Negative when the module grew.
pub fn reduction_percent(before: u64, after: u64) -> f64 {
    if before == 0 {
        return 0.0;
    }
    (before as f64 - after as f64) / before as f64 * 100.0
}

/// Per-target code-size cost model (the TTI stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    arch: TargetArch,
}

impl CostModel {
    /// Cost model for `arch`.
    pub fn new(arch: TargetArch) -> CostModel {
        CostModel { arch }
    }

    /// The modelled architecture.
    pub fn arch(&self) -> TargetArch {
        self.arch
    }

    /// Fixed cost of emitting a call, excluding argument setup.
    pub fn call_cost(&self) -> u64 {
        match self.arch {
            TargetArch::X86_64 => 5,   // call rel32
            TargetArch::ArmThumb => 4, // bl
        }
    }

    /// Per-argument setup cost at a call site.
    pub fn per_arg_call_cost(&self) -> u64 {
        2 // mov into an argument register, both targets
    }

    /// Per-symbol overhead of keeping a function (alignment padding and
    /// prologue/epilogue skeleton). Counted by [`CostModel::module_size`]
    /// but *not* by [`CostModel::body_size`] — see
    /// `fmsa_core::profitability` for why Δ excludes it.
    pub fn symbol_overhead(&self) -> u64 {
        match self.arch {
            TargetArch::X86_64 => 8,
            TargetArch::ArmThumb => 4,
        }
    }

    /// Code-size cost of one instruction in bytes.
    pub fn inst_cost(&self, inst: &Inst) -> u64 {
        let x86 = matches!(self.arch, TargetArch::X86_64);
        let operands = inst.operands.len() as u64;
        match inst.opcode {
            // Terminators.
            Opcode::Ret => {
                if x86 {
                    1
                } else {
                    2
                }
            }
            Opcode::Br | Opcode::CondBr => 2,
            // [cond, default, (case, block)*]: a compare-and-branch chain
            // or jump table entry per case.
            Opcode::Switch => {
                let cases = operands.saturating_sub(2) / 2;
                (if x86 { 3 } else { 4 }) + cases * 4
            }
            // [callee, args..., normal, unwind]
            Opcode::Invoke => {
                let args = operands.saturating_sub(3);
                self.call_cost() + args * self.per_arg_call_cost()
            }
            Opcode::Resume => 4,
            Opcode::Unreachable => 2,
            // Integer arithmetic.
            Opcode::Add | Opcode::Sub => {
                if x86 {
                    3
                } else {
                    2
                }
            }
            Opcode::Mul => 4,
            Opcode::UDiv | Opcode::SDiv | Opcode::URem | Opcode::SRem => {
                if x86 {
                    6
                } else {
                    4
                }
            }
            // Float arithmetic (SSE / VFP); frem is a libcall on both.
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => 4,
            Opcode::FRem => 8,
            // Bitwise.
            Opcode::Shl | Opcode::LShr | Opcode::AShr | Opcode::And | Opcode::Or | Opcode::Xor => {
                if x86 {
                    3
                } else {
                    2
                }
            }
            // Memory.
            Opcode::Alloca => 4,
            Opcode::Load | Opcode::Store => {
                if x86 {
                    3
                } else {
                    2
                }
            }
            // [ptr, idx...]: lea / add chain, one step per extra index.
            Opcode::Gep => {
                let extra = operands.saturating_sub(2);
                4 + extra * (if x86 { 4 } else { 2 })
            }
            // Casts. Pointer reinterpretations are encoding-free.
            Opcode::BitCast | Opcode::PtrToInt | Opcode::IntToPtr => 0,
            Opcode::Trunc => 2,
            Opcode::ZExt | Opcode::SExt => {
                if x86 {
                    3
                } else {
                    2
                }
            }
            Opcode::FPTrunc
            | Opcode::FPExt
            | Opcode::FPToUI
            | Opcode::FPToSI
            | Opcode::UIToFP
            | Opcode::SIToFP => 4,
            // Other.
            Opcode::ICmp => {
                if x86 {
                    3
                } else {
                    2
                }
            }
            Opcode::FCmp => 4,
            // Phis are resolved by copies already accounted to predecessors.
            Opcode::Phi => 0,
            // [callee, args...]
            Opcode::Call => {
                let args = operands.saturating_sub(1);
                self.call_cost() + args * self.per_arg_call_cost()
            }
            Opcode::Select => {
                if x86 {
                    6
                } else {
                    4
                }
            }
            // Landing pads are EH-table metadata, not instructions.
            Opcode::LandingPad => 0,
            Opcode::ExtractValue | Opcode::InsertValue => {
                if x86 {
                    3
                } else {
                    2
                }
            }
        }
    }

    /// Code-size of one function body (sum of instruction costs; no
    /// per-symbol overhead — see [`CostModel::symbol_overhead`]).
    pub fn body_size(&self, module: &Module, f: FuncId) -> u64 {
        self.func_body_size(module.func(f))
    }

    fn func_body_size(&self, func: &Function) -> u64 {
        func.inst_ids().iter().map(|&i| self.inst_cost(func.inst(i))).sum()
    }

    /// Code-size of the whole module: body sizes plus per-symbol overhead
    /// of every defined function.
    pub fn module_size(&self, module: &Module) -> u64 {
        module
            .func_ids()
            .into_iter()
            .map(|f| {
                let func = module.func(f);
                if func.is_declaration() {
                    0
                } else {
                    self.func_body_size(func) + self.symbol_overhead()
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};

    fn sample_module() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = b.add(Value::Param(0), Value::Param(1));
        let w = b.mul(v, Value::Param(0));
        let x = b.xor(w, b.const_i32(3));
        let y = b.sub(x, Value::Param(1));
        b.ret(Some(y));
        (m, f)
    }

    #[test]
    fn thumb_code_is_smaller_than_x86() {
        let (m, f) = sample_module();
        let x86 = CostModel::new(TargetArch::X86_64);
        let thumb = CostModel::new(TargetArch::ArmThumb);
        assert!(thumb.body_size(&m, f) < x86.body_size(&m, f));
        assert!(thumb.module_size(&m) < x86.module_size(&m));
    }

    #[test]
    fn module_size_includes_symbol_overhead() {
        let (m, f) = sample_module();
        let cm = CostModel::new(TargetArch::X86_64);
        assert_eq!(cm.module_size(&m), cm.body_size(&m, f) + cm.symbol_overhead());
    }

    #[test]
    fn declarations_are_free() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![]);
        m.create_function("decl", fn_ty);
        assert_eq!(CostModel::new(TargetArch::X86_64).module_size(&m), 0);
    }

    #[test]
    fn call_pays_per_argument() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let callee_ty = m.types.func(i32t, vec![i32t, i32t, i32t]);
        let callee = m.create_function("callee", callee_ty);
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let p = Value::Param(0);
        let r = b.call(callee, vec![p, p, p]);
        b.ret(Some(r));
        let cm = CostModel::new(TargetArch::X86_64);
        let call_inst_cost = cm.call_cost() + 3 * cm.per_arg_call_cost();
        let ret_cost = 1;
        assert_eq!(cm.body_size(&m, f), call_inst_cost + ret_cost);
    }

    #[test]
    fn reduction_percent_signs() {
        assert!((reduction_percent(200, 150) - 25.0).abs() < 1e-12);
        assert!(reduction_percent(100, 120) < 0.0);
        assert_eq!(reduction_percent(0, 10), 0.0);
    }
}
