//! `fmsa-opt` — run function-merging techniques on a textual IR module or
//! a WebAssembly binary.
//!
//! ```text
//! fmsa_opt <input.fir|input.wasm> [--technique identical|soa|fmsa]
//!          [--threshold N] [--oracle] [--arch x86-64|arm-thumb]
//!          [--canonicalize] [--search exact|lsh|auto] [--threads N]
//!          [--spec-depth N] [--spec-batch N] [--exclude name,name]
//!          [--stats] [--trace-out trace.json]
//!          [--explain-merges decisions.jsonl] [-o <output.fir>]
//! ```
//!
//! The input format is auto-detected (via [`fmsa::load_module_bytes`]):
//! files starting with the wasm magic (`\0asm`) are decoded and lowered by
//! `fmsa-wasm` (unsupported wasm features abort with an error naming the
//! section/opcode and byte offset); anything else parses as the textual
//! IR. Output is always textual IR.
//!
//! `--threads N` selects the parallel merge pipeline with `N` workers
//! (`0` = available parallelism); without it the paper's sequential
//! driver runs. Both produce bit-identical output (see
//! `fmsa_core::pipeline`). `--spec-depth N` bounds how many of each
//! subject's promising candidates get speculative merge codegen per
//! generation (`0` disables speculation, default: all) and
//! `--spec-batch N` fixes the subjects scheduled per generation
//! (default: auto); both only apply together with `--threads`.
//!
//! The `fmsa` technique is one [`fmsa::Config`] fed to [`fmsa::optimize`]
//! — the same call the `fmsa-serve` daemon makes per upload, which is why
//! daemon responses are byte-identical to this tool's output.
//!
//! The input format is the printer/parser syntax of `fmsa-ir` (see
//! `fmsa_ir::printer`); `cargo run --example quickstart` prints modules in
//! this form. Without `-o` the optimized module goes to stdout; `--stats`
//! sends a summary to stderr.
//!
//! Flight recorder (see `docs/observability.md`): `--trace-out PATH`
//! records hierarchical spans and writes Chrome trace-event JSON
//! viewable in Perfetto; `--explain-merges PATH` dumps one JSON line
//! per merge attempt (pair, similarity, alignment score, Δ, outcome).
//! Both observe without deciding — output bytes are identical with or
//! without them.

use fmsa::{Config, Error};
use fmsa_core::baselines::{run_identical, run_soa};
use fmsa_core::quarantine::panic_message;
use fmsa_core::{FaultPlan, SearchStrategy};
use fmsa_ir::printer;
use fmsa_target::{reduction_percent, CostModel, TargetArch};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

/// Prints the one-line structured failure contract — `stage=` plus, where
/// known, `function=` — and returns the nonzero exit code. Scripts can
/// parse this line without guessing at free-form prose.
fn fail(stage: &str, function: Option<&str>, detail: &str) -> ExitCode {
    match function {
        Some(f) => eprintln!("fmsa_opt: error stage={stage} function={f}: {detail}"),
        None => eprintln!("fmsa_opt: error stage={stage}: {detail}"),
    }
    ExitCode::FAILURE
}

/// [`fail`] from a library [`Error`]: the enum carries the stage and
/// function, so the contract line falls straight out.
fn fail_error(e: &Error, context: &str) -> ExitCode {
    fail(e.stage(), e.function(), &format!("{context}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: fmsa_opt <input.fir|input.wasm> [--technique identical|soa|fmsa] \
             [--threshold N] [--oracle] [--arch x86-64|arm-thumb] \
             [--canonicalize] [--search exact|lsh|auto] [--threads N] \
             [--spec-depth N] [--spec-batch N] [--exclude a,b] [--stats] \
             [--trace-out trace.json] [--explain-merges out.jsonl] [-o out.fir]"
        );
        return ExitCode::from(2);
    }
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut technique = "fmsa".to_owned();
    let mut threshold = 1usize;
    let mut oracle = false;
    let mut arch = TargetArch::X86_64;
    let mut canonicalize = false;
    let mut search = SearchStrategy::Auto;
    let mut threads: Option<usize> = None;
    let mut spec_depth: Option<usize> = None;
    let mut spec_batch: Option<usize> = None;
    let mut exclude: HashSet<String> = HashSet::new();
    let mut stats = false;
    let mut trace_out: Option<String> = None;
    let mut explain_merges: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--technique" => technique = it.next().unwrap_or_default(),
            "--threshold" => threshold = it.next().and_then(|s| s.parse().ok()).unwrap_or(1),
            "--oracle" => oracle = true,
            "--arch" => {
                arch = match it.next().as_deref() {
                    Some("arm-thumb") => TargetArch::ArmThumb,
                    _ => TargetArch::X86_64,
                }
            }
            "--canonicalize" => canonicalize = true,
            "--search" => {
                search = match it.next().as_deref() {
                    Some("lsh") => SearchStrategy::lsh(),
                    Some("exact") => SearchStrategy::Exact,
                    _ => SearchStrategy::Auto,
                }
            }
            "--threads" => match it.next().as_deref().map(str::parse) {
                Some(Ok(n)) => threads = Some(n),
                _ => {
                    eprintln!("fmsa_opt: --threads needs a number (0 = available parallelism)");
                    return ExitCode::from(2);
                }
            },
            "--spec-depth" => match it.next().as_deref().map(str::parse) {
                Some(Ok(n)) => spec_depth = Some(n),
                _ => {
                    eprintln!("fmsa_opt: --spec-depth needs a number (0 disables speculation)");
                    return ExitCode::from(2);
                }
            },
            "--spec-batch" => match it.next().as_deref().map(str::parse) {
                Some(Ok(n)) => spec_batch = Some(n),
                _ => {
                    eprintln!("fmsa_opt: --spec-batch needs a number (0 = auto)");
                    return ExitCode::from(2);
                }
            },
            "--exclude" => {
                for n in it.next().unwrap_or_default().split(',') {
                    if !n.is_empty() {
                        exclude.insert(n.to_owned());
                    }
                }
            }
            "--stats" => stats = true,
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => {
                    eprintln!("fmsa_opt: --trace-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--explain-merges" => match it.next() {
                Some(p) => explain_merges = Some(p),
                None => {
                    eprintln!("fmsa_opt: --explain-merges needs a path");
                    return ExitCode::from(2);
                }
            },
            "-o" => output = it.next(),
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_owned()),
            other => {
                eprintln!("fmsa_opt: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("fmsa_opt: no input file");
        return ExitCode::from(2);
    };
    if !matches!(technique.as_str(), "identical" | "soa" | "fmsa") {
        eprintln!("fmsa_opt: unknown technique {technique:?}");
        return ExitCode::from(2);
    }
    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => return fail("read", None, &format!("cannot read {input}: {e}")),
    };
    // Format auto-detection: wasm magic vs textual IR.
    let stem = std::path::Path::new(&input)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "wasm".to_owned());
    let mut module = match fmsa::load_module_bytes(&bytes, &stem) {
        Ok(m) => m,
        Err(e) => return fail_error(&e, &input),
    };
    let cm = CostModel::new(arch);
    let before = cm.module_size(&module);

    let mut cfg = Config::new()
        .threshold(threshold)
        .oracle(oracle)
        .arch(arch)
        .canonicalize(canonicalize)
        .search(search)
        .threads(threads)
        .exclude(exclude)
        .faults(FaultPlan::from_env().unwrap_or_default());
    if let Some(d) = spec_depth {
        cfg = cfg.spec_depth(d);
    }
    if let Some(b) = spec_batch {
        cfg = cfg.batch(b);
    }
    if trace_out.is_some() {
        fmsa::telemetry::trace::enable();
    }

    let mut fmsa_stats: Option<fmsa_core::pass::FmsaStats> = None;
    let merges = if technique == "fmsa" {
        // One Config into fmsa::optimize — verification at both ends, the
        // identical-merging prepass, the panic boundary, and the
        // structured error all live in the library now.
        match fmsa::optimize(&mut module, &cfg) {
            Ok(st) => {
                let merges = st.merges;
                fmsa_stats = Some(st);
                merges
            }
            Err(e) => return fail_error(&e, &input),
        }
    } else {
        // The baselines keep their direct driver calls, with the same
        // verify/panic posture the library applies to fmsa runs.
        if let Err(e) = fmsa_ir::verify_module(&module)
            .into_iter()
            .next()
            .map_or(Ok(()), |v| Err(Error::verify(false, v.func.clone(), v.to_string())))
        {
            return fail_error(&e, &input);
        }
        let ran = catch_unwind(AssertUnwindSafe(|| match technique.as_str() {
            "identical" => run_identical(&mut module, arch).merges,
            _ => {
                run_identical(&mut module, arch);
                run_soa(&mut module, arch).merges
            }
        }));
        match ran {
            Ok(m) => m,
            Err(payload) => return fail("merge", None, &panic_message(payload.as_ref())),
        }
    };
    let errs = fmsa_ir::verify_module(&module);
    if !errs.is_empty() {
        return fail(
            "verify-output",
            Some(&errs[0].func),
            &format!("internal error — output module invalid: {}", errs[0]),
        );
    }
    let after = cm.module_size(&module);
    if let Some(path) = &trace_out {
        use fmsa::telemetry::trace;
        trace::disable();
        let (events, dropped) = trace::drain();
        if dropped > 0 {
            eprintln!("fmsa_opt: trace: {dropped} events dropped at the per-thread cap");
        }
        if let Err(e) = std::fs::write(path, trace::export_chrome(&events)) {
            eprintln!("fmsa_opt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &explain_merges {
        // Baselines record no decisions; an empty file is still a valid dump.
        let body = fmsa_stats.as_ref().map(|st| st.decisions.to_jsonl()).unwrap_or_default();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("fmsa_opt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if stats {
        // Self-describing result header: driver, thread count, and the
        // selected search/alignment strategies. Only the fmsa technique
        // uses the pipeline or a search strategy; the baselines always
        // run sequentially.
        let (driver, nthreads, search_name) = if technique == "fmsa" {
            let resolved = threads.map(|_| cfg.pipeline_options().resolved_threads());
            (
                if resolved.is_some() { "pipeline" } else { "sequential" },
                resolved.unwrap_or(1),
                match search {
                    SearchStrategy::Exact => "exact",
                    SearchStrategy::Lsh(_) => "lsh",
                    SearchStrategy::Auto => "auto (by module size)",
                },
            )
        } else {
            ("sequential", 1, "n/a")
        };
        eprintln!(
            "fmsa_opt: {technique}: driver={driver} threads={nthreads} search={search_name} \
             alignment=needleman-wunsch"
        );
        eprintln!(
            "fmsa_opt: {technique}: {merges} merges, {before} -> {after} bytes \
             ({:.2}% reduction, {})",
            reduction_percent(before, after),
            arch.name()
        );
        if let Some(st) = &fmsa_stats {
            // The canonical PipelineStats vocabulary — the same field
            // names `experiments --json` emits and /metrics exports.
            if let Some(p) = st.pipeline.as_ref() {
                for line in fmsa_bench::harness::pipeline_stats_text(p, 6) {
                    eprintln!("fmsa_opt: {technique}: pipeline: {line}");
                }
            }
            let d = &st.decisions;
            use fmsa::telemetry::DecisionOutcome as O;
            eprintln!(
                "fmsa_opt: {technique}: decisions: attempted={} merged={} \
                 conflict_fallback={} unprofitable={} gate_skipped={} budget_skipped={} \
                 quarantined={} failed={}",
                d.total(),
                d.count(O::Merged),
                d.count(O::ConflictFallback),
                d.count(O::Unprofitable),
                d.count(O::GateSkipped),
                d.count(O::BudgetSkipped),
                d.count(O::Quarantined),
                d.count(O::Failed),
            );
            for e in st.quarantine.entries() {
                eprintln!(
                    "fmsa_opt: quarantined stage={} pair={},{} seed={:#x}: {}",
                    e.stage, e.f1, e.f2, e.seed, e.reason
                );
            }
        }
    }
    let rendered = printer::print_module(&module);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("fmsa_opt: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}
