//! Regenerates every table and figure of the paper's evaluation (§V).
//!
//! ```text
//! experiments table1            Table I  (SPEC stats + merge ops)
//! experiments table2            Table II (MiBench stats + merge ops)
//! experiments fig8              CDF of profitable candidate rank
//! experiments fig10             Code-size reduction, x86-64 + ARM Thumb
//! experiments fig11             Code-size reduction, MiBench
//! experiments fig12             Compile-time overhead
//! experiments fig13             Compile-time breakdown (t=1)
//! experiments fig14             Runtime overhead + §V-D case study
//! experiments ablation-params   §III-E parameter-reuse ablation
//! experiments search            Exact vs LSH candidate search at scale
//! experiments merge-parallel    Pipeline vs sequential driver at scale
//! experiments wasm              Decode/lower/merge a wasm binary corpus
//! experiments fuzz              Differential fuzz farm over merged wasm
//! experiments faults            Fault-injection matrix (quarantine gates)
//! experiments serve-bench       Merge-daemon load generator (fmsa-serve)
//! experiments scale             Streamed million-function corpus + scaling curve
//! experiments chaos             Kill/restart cycles under injected store faults
//! experiments obs               Flight-recorder smoke: overhead gate, trace
//!                               validity, decision-log reconciliation, /metrics
//! experiments all               everything above except `scale`, `chaos`, `obs`
//! ```
//!
//! Add `--oracle` to include the quadratic oracle where feasible, and
//! `--fast` to restrict to the smaller half of each suite (used by CI).
//! `--json <path>` appends one self-describing JSON line per measured
//! configuration (the `BENCH_ci.json` artifact), and `--check` turns
//! parity-budget violations (LSH vs exact, pipeline vs sequential,
//! daemon vs batch) into a non-zero exit for the CI gate.
//! `merge-parallel` additionally honours `--spec-depth N` (speculative
//! codegen depth per subject; default: every promising pair) and
//! `--spec-batch N` (subjects scheduled per generation; default: auto) —
//! the corresponding knobs of `fmsa::Config`. `scale` honours
//! `--functions N` (corpus size; default 1 000 000, or 20 000 with
//! `--fast`) and `--chunk N` (streamed chunk size): it processes the
//! corpus one materialized chunk at a time so peak memory stays bounded
//! by the chunk, then measures a threads-vs-wall scaling curve on a
//! sampled prefix. `chaos` boots the daemon over a persistent store,
//! runs concurrent uploads under injected store I/O faults, kills it
//! without drain, truncates/bit-flips the log to simulate dying
//! mid-write, and gates the recovery invariant (zero checksum-valid
//! durable entries lost, zero panics, byte-identical re-serve after
//! recovery, atomic compaction). Any subcommand honours `--trace-out
//! PATH`: the run records flight-recorder spans and writes Chrome
//! trace-event JSON (Perfetto-viewable) on exit. `obs` measures the
//! telemetry-disabled vs tracing-enabled overhead (gated ≤ 3% under
//! `--check`), revalidates output bit-identity with tracing on, checks
//! span nesting, reconciles the merge decision log against
//! `PipelineStats`, and scrapes a booted daemon's `/metrics`. `scale`,
//! `chaos`, and `obs` are deliberately not part of `all`.

use fmsa::Config;
use fmsa_bench::harness::{
    mean, pipeline_json_fields, rank_cdf, run_benchmark, run_runtime_experiment, BenchResult, Json,
    Report, RunPlan,
};
use fmsa_core::baselines::run_identical;
use fmsa_core::merge::MergeConfig;
use fmsa_core::pass::run_fmsa;
use fmsa_core::pipeline::run_fmsa_pipeline;
use fmsa_target::{reduction_percent, CostModel, TargetArch};
use fmsa_workloads::{mibench_suite, spec_suite, BenchDesc};

/// Relative drift allowed between an optimized configuration and its
/// exact/sequential baseline before the CI gate trips.
const PARITY_BUDGET: f64 = 0.10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let oracle = args.iter().any(|a| a == "--oracle");
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args.iter().position(|a| a == "--json").and_then(|k| args.get(k + 1)).cloned();
    let flag_value = |name: &str| -> Option<usize> {
        let k = args.iter().position(|a| a == name)?;
        match args.get(k + 1).map(|v| (v, v.parse())) {
            Some((_, Ok(n))) => Some(n),
            other => {
                let got = other.map(|(v, _)| format!("got {v:?}")).unwrap_or("missing".to_owned());
                eprintln!("experiments: {name} needs a number, {got}");
                std::process::exit(2);
            }
        }
    };
    let mut overrides = Config::new();
    if let Some(depth) = flag_value("--spec-depth") {
        overrides = overrides.spec_depth(depth);
    }
    if let Some(batch) = flag_value("--spec-batch") {
        overrides = overrides.batch(batch);
    }
    let budget_secs = flag_value("--budget").unwrap_or(30);
    let scale_functions = flag_value("--functions");
    let scale_chunk = flag_value("--chunk");
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|k| args.get(k + 1)).cloned();
    let value_flags = [
        "--json",
        "--spec-depth",
        "--spec-batch",
        "--budget",
        "--functions",
        "--chunk",
        "--trace-out",
    ];
    let cmd = args
        .iter()
        .enumerate()
        .find(|(k, a)| {
            !a.starts_with("--")
                && !args
                    .get(k.wrapping_sub(1))
                    .is_some_and(|prev| value_flags.contains(&prev.as_str()))
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_owned());
    // Result header: make every run self-describing. The search strategy
    // varies per experiment, so it is stated in each section title and
    // repeated per record in the bench JSON lines.
    println!(
        "experiments {cmd}: threads={} available, alignment=needleman-wunsch, \
         search per section header / JSON record{}{}",
        Config::new().pipeline_options().resolved_threads(),
        if fast { ", --fast" } else { "" },
        if oracle { ", --oracle" } else { "" },
    );
    let mut report = Report::new(json_path);
    let spec = filtered(spec_suite(), fast);
    let mibench = filtered(mibench_suite(), fast);
    if trace_out.is_some() {
        fmsa::telemetry::trace::enable();
    }
    match cmd.as_str() {
        "table1" => table(&spec, "Table I (SPEC CPU2006)"),
        "table2" => table(&mibench, "Table II (MiBench)"),
        "fig8" => fig8(&spec),
        "fig10" => fig10(&spec, oracle),
        "fig11" => fig11(&mibench, oracle),
        "fig12" => fig12(&spec),
        "fig13" => fig13(&spec),
        "fig14" => fig14(&spec),
        "ablation-params" => ablation_params(&spec),
        "search" => search_scalability(fast, &mut report),
        "merge-parallel" => merge_parallel(fast, &overrides, &mut report),
        "wasm" => wasm_frontend(fast, &overrides, &mut report),
        "fuzz" => fuzz_farm(fast, budget_secs, &mut report),
        "faults" => fault_matrix(fast, &mut report),
        "serve-bench" => serve_bench(fast, &mut report),
        "scale" => scale(fast, scale_functions, scale_chunk, &mut report),
        "chaos" => chaos(fast, &mut report),
        "obs" => obs(fast, &mut report),
        "all" => {
            table(&spec, "Table I (SPEC CPU2006)");
            table(&mibench, "Table II (MiBench)");
            fig8(&spec);
            fig10(&spec, oracle);
            fig11(&mibench, oracle);
            fig12(&spec);
            fig13(&spec);
            fig14(&spec);
            ablation_params(&spec);
            search_scalability(fast, &mut report);
            merge_parallel(fast, &overrides, &mut report);
            wasm_frontend(fast, &overrides, &mut report);
            fuzz_farm(fast, budget_secs, &mut report);
            fault_matrix(fast, &mut report);
            serve_bench(fast, &mut report);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &trace_out {
        use fmsa::telemetry::trace;
        trace::disable();
        let (events, dropped) = trace::drain();
        if dropped > 0 {
            eprintln!("experiments: trace: {dropped} events dropped at the per-thread cap");
        }
        if let Err(e) = std::fs::write(path, trace::export_chrome(&events)) {
            eprintln!("experiments: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("experiments: wrote {} trace events to {path}", events.len());
    }
    if let Err(e) = report.flush() {
        eprintln!("experiments: cannot write bench JSON: {e}");
        std::process::exit(1);
    }
    if check && !report.failures().is_empty() {
        eprintln!("experiments: {} parity budget violation(s)", report.failures().len());
        std::process::exit(1);
    }
}

fn filtered(suite: Vec<BenchDesc>, fast: bool) -> Vec<BenchDesc> {
    if !fast {
        return suite;
    }
    suite.into_iter().filter(|d| d.paper_fns <= 600).collect()
}

fn run_suite(suite: &[BenchDesc], plan: &RunPlan) -> Vec<BenchResult> {
    suite
        .iter()
        .map(|d| {
            eprintln!("  running {} ({:?})...", d.name, plan.arch);
            run_benchmark(d, plan)
        })
        .collect()
}

// ---------------------------------------------------------------- tables

fn table(suite: &[BenchDesc], title: &str) {
    println!("\n== {title}: functions, sizes, and merge operations ==");
    println!(
        "{:<16} {:>6} {:>18} {:>9} {:>6} {:>9} {:>10}",
        "benchmark", "#fns", "min/avg/max", "identical", "soa", "fmsa[t=1]", "fmsa[t=10]"
    );
    let plan = RunPlan { thresholds: vec![1, 10], oracle: false, ..RunPlan::default() };
    for desc in suite {
        let r = run_benchmark(desc, &plan);
        let (mn, avg, mx) = r.sizes;
        let t1 = r.fmsa.iter().find(|(t, _)| *t == 1).map(|(_, x)| x.merges).unwrap_or(0);
        let t10 = r.fmsa.iter().find(|(t, _)| *t == 10).map(|(_, x)| x.merges).unwrap_or(0);
        println!(
            "{:<16} {:>6} {:>18} {:>9} {:>6} {:>9} {:>10}",
            r.name,
            r.fns,
            format!("{mn}/{avg:.0}/{mx}"),
            r.identical.merges,
            r.soa.merges,
            t1,
            t10
        );
    }
    println!("(function counts are paper counts / {}; see EXPERIMENTS.md)", fmsa_workloads::SCALE);
}

// ---------------------------------------------------------------- fig 8

fn fig8(suite: &[BenchDesc]) {
    println!("\n== Fig. 8: CDF of the rank position of profitable candidates (t=10) ==");
    let plan = RunPlan { thresholds: vec![10], oracle: false, ..RunPlan::default() };
    let mut positions = Vec::new();
    for desc in suite {
        let r = run_benchmark(desc, &plan);
        for (_, tech) in &r.fmsa {
            positions.extend(tech.rank_positions.iter().copied());
        }
    }
    let cdf = rank_cdf(&positions, 10);
    println!("{:>9} {:>12}", "position", "coverage(%)");
    for (k, c) in cdf.iter().enumerate() {
        println!("{:>9} {:>12.1}", k + 1, c * 100.0);
    }
    println!(
        "(paper: ~89% at position 1, >98% within the top 5; measured: {:.0}% / {:.0}%)",
        cdf[0] * 100.0,
        cdf[4] * 100.0
    );
}

// ---------------------------------------------------------------- fig 10/11

fn reduction_table(results: &[BenchResult], oracle: bool) {
    println!(
        "{:<16} {:>9} {:>7} {:>9} {:>9} {:>10}{}",
        "benchmark",
        "identical",
        "soa",
        "fmsa[t=1]",
        "fmsa[t=5]",
        "fmsa[t=10]",
        if oracle { "   oracle" } else { "" }
    );
    let pick = |r: &BenchResult, t: usize| {
        r.fmsa.iter().find(|(x, _)| *x == t).map(|(_, v)| v.reduction).unwrap_or(0.0)
    };
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for r in results {
        let row = [
            r.identical.reduction,
            r.soa.reduction,
            pick(r, 1),
            pick(r, 5),
            pick(r, 10),
            r.oracle.as_ref().map(|o| o.reduction).unwrap_or(f64::NAN),
        ];
        for (c, v) in cols.iter_mut().zip(row) {
            if !v.is_nan() {
                c.push(v);
            }
        }
        print!(
            "{:<16} {:>9.2} {:>7.2} {:>9.2} {:>9.2} {:>10.2}",
            r.name, row[0], row[1], row[2], row[3], row[4]
        );
        if oracle {
            if row[5].is_nan() {
                print!("  (skipped)");
            } else {
                print!(" {:>8.2}", row[5]);
            }
        }
        println!();
    }
    print!(
        "{:<16} {:>9.2} {:>7.2} {:>9.2} {:>9.2} {:>10.2}",
        "MEAN",
        mean(&cols[0]),
        mean(&cols[1]),
        mean(&cols[2]),
        mean(&cols[3]),
        mean(&cols[4])
    );
    if oracle {
        print!(" {:>8.2}", mean(&cols[5]));
    }
    println!();
}

fn fig10(suite: &[BenchDesc], oracle: bool) {
    for arch in TargetArch::ALL {
        println!("\n== Fig. 10: object size reduction (%) on {} ==", arch.name());
        let plan = RunPlan { arch, thresholds: vec![1, 5, 10], oracle, ..RunPlan::default() };
        let results = run_suite(suite, &plan);
        reduction_table(&results, oracle);
    }
    println!("(paper means: Intel 1.4/2.5/6.0/6.2/6.2/6.3; ARM 1.8/3.0/5.7/5.9/6.0/6.1)");
}

fn fig11(suite: &[BenchDesc], oracle: bool) {
    println!("\n== Fig. 11: object size reduction (%) on MiBench (x86-64) ==");
    let plan = RunPlan { thresholds: vec![1, 5, 10], oracle, ..RunPlan::default() };
    let results = run_suite(suite, &plan);
    reduction_table(&results, oracle);
    println!("(paper means: 0 / 0.1 / 1.7 / 1.7 / 1.7; rijndael ≈ 20.6% for FMSA)");
}

// ---------------------------------------------------------------- fig 12

fn fig12(suite: &[BenchDesc]) {
    println!("\n== Fig. 12: compilation-time overhead, normalized to no-merging baseline ==");
    println!(
        "{:<16} {:>10} {:>8} {:>10} {:>10} {:>11}",
        "benchmark", "identical", "soa", "fmsa[t=1]", "fmsa[t=5]", "fmsa[t=10]"
    );
    let plan = RunPlan { thresholds: vec![1, 5, 10], oracle: false, ..RunPlan::default() };
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for desc in suite {
        let r = run_benchmark(desc, &plan);
        let base = r.baseline_compile.as_secs_f64().max(1e-9);
        let norm = |d: std::time::Duration| 1.0 + d.as_secs_f64() / base;
        let pick = |t: usize| {
            r.fmsa.iter().find(|(x, _)| *x == t).map(|(_, v)| norm(v.time)).unwrap_or(f64::NAN)
        };
        let row = [norm(r.identical.time), norm(r.soa.time), pick(1), pick(5), pick(10)];
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
        println!(
            "{:<16} {:>10.2} {:>8.2} {:>10.2} {:>10.2} {:>11.2}",
            r.name, row[0], row[1], row[2], row[3], row[4]
        );
    }
    println!(
        "{:<16} {:>10.2} {:>8.2} {:>10.2} {:>10.2} {:>11.2}",
        "MEAN",
        mean(&cols[0]),
        mean(&cols[1]),
        mean(&cols[2]),
        mean(&cols[3]),
        mean(&cols[4])
    );
    println!("(paper means: 1.0 / 1.0 / 1.15 / 1.47 / 1.74; oracle ≈ 25x, not shown)");
}

// ---------------------------------------------------------------- fig 13

fn fig13(suite: &[BenchDesc]) {
    println!("\n== Fig. 13: compile-time breakdown of FMSA (t=1), % of pass time ==");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "fingerp", "ranking", "linear", "align", "codegen", "updates"
    );
    let plan = RunPlan { thresholds: vec![1], oracle: false, ..RunPlan::default() };
    let mut sums = [0.0f64; 6];
    for desc in suite {
        let r = run_benchmark(desc, &plan);
        let Some(timers) = r.fmsa.first().and_then(|(_, v)| v.timers) else { continue };
        let total = timers.total().as_secs_f64().max(1e-12);
        let rows = timers.rows();
        let pct: Vec<f64> = rows.iter().map(|(_, s)| s / total * 100.0).collect();
        for (s, p) in sums.iter_mut().zip(&pct) {
            *s += p;
        }
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            r.name, pct[0], pct[1], pct[2], pct[3], pct[4], pct[5]
        );
    }
    let n = suite.len().max(1) as f64;
    println!(
        "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
        "MEAN",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n
    );
    println!("(paper: alignment dominates, then ranking, then code generation)");
}

// ---------------------------------------------------------------- fig 14

fn fig14(suite: &[BenchDesc]) {
    println!("\n== Fig. 14: runtime overhead (normalized dynamic instructions, t=1) ==");
    println!(
        "{:<16} {:>9} {:>14} {:>12} {:>14}",
        "benchmark", "fmsa", "hot-excluded", "reduction%", "red% (excl)"
    );
    let mut norms = Vec::new();
    let mut norms_excl = Vec::new();
    for desc in suite {
        // Interpreting the biggest modules is slow; Fig. 14's point is made
        // by the bulk of the suite.
        if desc.paper_fns > 3000 {
            println!("{:<16} {:>9}", desc.name, "(skipped: module too large to interpret)");
            continue;
        }
        let r = run_runtime_experiment(desc, 1);
        norms.push(r.normalized());
        norms_excl.push(r.normalized_hot_excluded());
        println!(
            "{:<16} {:>9.3} {:>14.3} {:>12.2} {:>14.2}",
            r.name,
            r.normalized(),
            r.normalized_hot_excluded(),
            r.reduction,
            r.reduction_hot_excluded
        );
    }
    println!("{:<16} {:>9.3} {:>14.3}", "MEAN", mean(&norms), mean(&norms_excl));
    println!("(paper: ≈1.03 mean; hot-function exclusion removes the overhead, §V-D)");
}

// ---------------------------------------------------------------- search

fn search_scalability(fast: bool, report: &mut Report) {
    use fmsa_core::SearchStrategy;
    use fmsa_workloads::{clone_swarm_module, SwarmConfig};
    println!("\n== Candidate search at scale: exact pairwise vs MinHash/LSH (t=5) ==");
    println!(
        "{:>6} {:<7} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "#fns", "search", "merges", "reduction%", "rank+search", "total", "speedup"
    );
    let sizes: &[usize] = if fast { &[100, 1000] } else { &[100, 1000, 5000] };
    for &n in sizes {
        let base = clone_swarm_module(&SwarmConfig::with_functions(n));
        let mut rank_times = Vec::new();
        let mut reductions = Vec::new();
        for (label, strategy) in [("exact", SearchStrategy::Exact), ("lsh", SearchStrategy::lsh())]
        {
            let mut m = base.clone();
            let cfg = Config::new().threshold(5).search(strategy);
            let t0 = std::time::Instant::now();
            let stats = run_fmsa(&mut m, &cfg.fmsa_options());
            let total = t0.elapsed();
            rank_times.push(stats.timers.ranking.as_secs_f64());
            reductions.push(stats.reduction_percent());
            let speedup = if rank_times.len() == 2 {
                format!("{:8.1}x", rank_times[0] / rank_times[1].max(1e-12))
            } else {
                String::new()
            };
            println!(
                "{:>6} {:<7} {:>8} {:>12.2} {:>12.2?} {:>12.2?} {:>9}",
                n,
                label,
                stats.merges,
                stats.reduction_percent(),
                stats.timers.ranking,
                total,
                speedup
            );
            report.record(&[
                ("experiment", Json::S("search".into())),
                ("functions", Json::I(n as i64)),
                ("search", Json::S(label.into())),
                ("threads", Json::I(1)),
                ("alignment", Json::S("needleman-wunsch".into())),
                ("merges", Json::I(stats.merges as i64)),
                ("reduction_percent", Json::F(stats.reduction_percent())),
                ("rank_search_s", Json::F(stats.timers.ranking.as_secs_f64())),
                ("wall_s", Json::F(total.as_secs_f64())),
            ]);
        }
        // CI gate: LSH shortlisting must stay within the reduction-parity
        // budget of the exact scan.
        let (exact, lsh) = (reductions[0], reductions[1]);
        if (exact - lsh).abs() > PARITY_BUDGET * exact.abs().max(1e-9) {
            report.fail(format!(
                "search n={n}: LSH reduction {lsh:.3}% drifts >{:.0}% from exact {exact:.3}%",
                PARITY_BUDGET * 100.0
            ));
        }
    }
    println!("(rank+search = index seeding + per-iteration candidate queries)");
}

// ---------------------------------------------------------------- pipeline

fn merge_parallel(fast: bool, overrides: &Config, report: &mut Report) {
    use fmsa_core::SearchStrategy;
    use fmsa_ir::printer::print_module;
    use fmsa_workloads::{clone_swarm_module, SwarmConfig};
    let auto = Config::new().pipeline_options().resolved_threads();
    let spec_depth_label = if overrides.spec_depth == usize::MAX {
        "all".to_owned()
    } else {
        overrides.spec_depth.to_string()
    };
    println!(
        "\n== Parallel merge pipeline vs sequential driver (t=5, lsh search, \
         spec-depth={spec_depth_label}, spec-batch={}) ==",
        if overrides.batch == 0 { "auto".to_owned() } else { overrides.batch.to_string() }
    );
    println!(
        "{:>6} {:<11} {:>7} {:>10} {:>8} {:>11} {:>10} {:>8}",
        "#fns", "driver", "threads", "wall", "merges", "reduction%", "identical", "speedup"
    );
    let sizes: &[usize] = if fast { &[100, 1000] } else { &[100, 1000, 5000] };
    for &n in sizes {
        let base = clone_swarm_module(&SwarmConfig::with_functions(n));
        let cfg = overrides.clone().threshold(5).search(SearchStrategy::lsh());
        let mut m_seq = base.clone();
        let t0 = std::time::Instant::now();
        let seq = run_fmsa(&mut m_seq, &cfg.fmsa_options());
        let t_seq = t0.elapsed();
        let seq_text = print_module(&m_seq);
        println!(
            "{:>6} {:<11} {:>7} {:>9.2?} {:>8} {:>11.2} {:>10} {:>8}",
            n,
            "sequential",
            1,
            t_seq,
            seq.merges,
            seq.reduction_percent(),
            "-",
            "-"
        );
        report.record(&[
            ("experiment", Json::S("merge-parallel".into())),
            ("functions", Json::I(n as i64)),
            ("driver", Json::S("sequential".into())),
            ("search", Json::S("lsh".into())),
            ("alignment", Json::S("needleman-wunsch".into())),
            ("threads", Json::I(1)),
            ("merges", Json::I(seq.merges as i64)),
            ("reduction_percent", Json::F(seq.reduction_percent())),
            ("wall_s", Json::F(t_seq.as_secs_f64())),
        ]);
        // threads=1 is the PR 2-style no-speculation baseline; threads=2
        // exercises speculative codegen + transplant even on a single
        // core; threads=4 adds multi-partition parallel call-site
        // rewriting (CI runs `--check` over all three); `auto` adds the
        // machine's real parallelism when it offers more.
        let mut thread_counts = vec![1usize, 2, 4];
        if auto > 4 {
            thread_counts.push(auto);
        }
        for threads in thread_counts {
            let mut m_par = base.clone();
            let pcfg = cfg.clone().parallel(threads);
            let t0 = std::time::Instant::now();
            let par = run_fmsa_pipeline(&mut m_par, &pcfg.fmsa_options(), &pcfg.pipeline_options());
            let t_par = t0.elapsed();
            let identical = print_module(&m_par) == seq_text;
            let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
            println!(
                "{:>6} {:<11} {:>7} {:>9.2?} {:>8} {:>11.2} {:>10} {:>7.1}x",
                n,
                "pipeline",
                threads,
                t_par,
                par.merges,
                par.reduction_percent(),
                if identical { "yes" } else { "NO" },
                speedup
            );
            let p = par.pipeline.unwrap_or_default();
            println!(
                "       stages: schedule {:.2?} (query {:.2?} + prefill {:.2?}; cpu {:.2?}), \
                 prepare {:.2?} (cpu {:.2?}, spec codegen {:.2?}), \
                 commit {:.2?} (codegen {:.2?}, transplant {:.2?}, rewrite {:.2?}); \
                 spec bodies built {} / used {} (committed {}) / fallback {}; \
                 commit barriers {} (batched {} merges, {} fallback)",
                p.schedule,
                p.schedule_query,
                p.schedule_prefill,
                p.schedule_cpu,
                p.prepare,
                p.prepare_cpu,
                p.spec_codegen,
                p.commit,
                p.commit_codegen,
                p.transplant,
                p.rewrite,
                p.spec_built,
                p.spec_used,
                p.spec_committed,
                p.spec_fallback,
                p.commit_barriers,
                p.batched_merges,
                p.batch_fallback,
            );
            if p.spec_built > 0 {
                println!(
                    "       scratch setup: {} COW-shared / {} cloned stores, \
                     {} suffix types interned, ~{:.1} MiB of store copies avoided",
                    p.scratch_cow_shared,
                    p.scratch_cloned,
                    p.scratch_suffix_types,
                    p.scratch_bytes_avoided as f64 / (1024.0 * 1024.0),
                );
            }
            // Header pairs first, then the canonical PipelineStats field
            // list (shared with `scale --json` and `fmsa_opt --stats`).
            // `threads` is already in the header, so drop the duplicate.
            let mut rec: Vec<(&str, Json)> = vec![
                ("experiment", Json::S("merge-parallel".into())),
                ("functions", Json::I(n as i64)),
                ("driver", Json::S("pipeline".into())),
                ("search", Json::S("lsh".into())),
                ("alignment", Json::S("needleman-wunsch".into())),
                ("threads", Json::I(threads as i64)),
                ("spec_depth", Json::S(spec_depth_label.clone())),
                ("spec_batch", Json::I(pcfg.batch as i64)),
                ("merges", Json::I(par.merges as i64)),
                ("reduction_percent", Json::F(par.reduction_percent())),
                ("wall_s", Json::F(t_par.as_secs_f64())),
                ("speedup_vs_sequential", Json::F(speedup)),
                ("identical_to_sequential", Json::B(identical)),
            ];
            rec.extend(pipeline_json_fields(&p).into_iter().filter(|(k, _)| *k != "threads"));
            report.record(&rec);
            if !identical {
                report.fail(format!(
                    "merge-parallel n={n} threads={threads}: pipeline output diverges \
                     from the sequential pass"
                ));
            }
            let (rs, rp) = (seq.reduction_percent(), par.reduction_percent());
            if (rs - rp).abs() > PARITY_BUDGET * rs.abs().max(1e-9) {
                report.fail(format!(
                    "merge-parallel n={n} threads={threads}: reduction {rp:.3}% drifts \
                     >{:.0}% from sequential {rs:.3}%",
                    PARITY_BUDGET * 100.0
                ));
            }
        }
    }
    println!(
        "(pipeline threads=1 disables speculation; its win over the sequential driver is \
         the linearization cache, the call-site index, and the pre-codegen Δ gate)"
    );
}

// ---------------------------------------------------------------- scale

/// Peak resident-set size of this process so far, from `VmHWM` in
/// `/proc/self/status`. `None` off Linux — the measurement is a
/// diagnostic, not an input to any gate.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Million-function scale: streams a corpus of chunk descriptors
/// ([`fmsa_workloads::stream_chunks`] — clone swarms mixed with decoded
/// wasm binaries), materializing, optimizing, and dropping one chunk at a
/// time so peak memory is bounded by the chunk size, then measures a
/// threads-vs-wall scaling curve on a sampled prefix. Gates (`--check`):
/// pipeline output on the sample must be bit-identical to the sequential
/// driver at every measured thread count, and — when the runner has ≥ 2
/// (resp. ≥ 4) cores — threads=2 (resp. threads=4) must beat threads=1
/// wall-clock.
fn scale(fast: bool, functions: Option<usize>, chunk: Option<usize>, report: &mut Report) {
    use fmsa_core::pipeline::PipelineStats;
    use fmsa_core::SearchStrategy;
    use fmsa_ir::printer::print_module;
    use fmsa_workloads::stream_chunks;
    let total = functions.unwrap_or(if fast { 20_000 } else { 1_000_000 });
    let chunk = chunk.unwrap_or(if fast { 2_000 } else { 10_000 });
    let seed = 0x5ca1_e001u64;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let auto = Config::new().pipeline_options().resolved_threads();
    let cfg = Config::new().threshold(5).search(SearchStrategy::lsh());
    println!(
        "\n== Million-function scale: streamed corpus of {total} functions in \
         chunks of {chunk} (t=5, lsh search, {cores} cores) =="
    );

    // Phase 1: stream the whole corpus at the machine's parallelism.
    // One chunk lives at a time; the rolling counters are the corpus
    // totals.
    let mut agg = PipelineStats::default();
    let mut merges = 0usize;
    let mut funcs_in = 0usize;
    let mut funcs_out = 0usize;
    let mut chunks_done = 0usize;
    let pcfg = cfg.clone().parallel(auto);
    let t_stream = std::time::Instant::now();
    for spec in stream_chunks(total, chunk, seed) {
        let mut m = spec.materialize();
        funcs_in += m.func_count();
        let stats = run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
        funcs_out += m.func_count();
        merges += stats.merges;
        if let Some(p) = stats.pipeline {
            agg.accumulate(&p);
        }
        chunks_done += 1;
        if chunks_done.is_multiple_of(10) {
            eprintln!(
                "  {chunks_done} chunks / {funcs_in} functions in {:.1?}, peak rss {:.0} MiB",
                t_stream.elapsed(),
                peak_rss_mib().unwrap_or(f64::NAN)
            );
        }
        drop(m); // chunk lifetime ends here — memory stays bounded
    }
    let stream_wall = t_stream.elapsed();
    let rss = peak_rss_mib();
    println!(
        "  streamed {funcs_in} functions ({chunks_done} chunks) in {stream_wall:.1?} at \
         threads={auto}: {merges} merges, {funcs_out} functions out, peak rss {:.0} MiB",
        rss.unwrap_or(f64::NAN)
    );
    println!(
        "  stages: schedule {:.2?} (query {:.2?} + prefill {:.2?}; cpu {:.2?}), \
         prepare {:.2?} (cpu {:.2?}), commit {:.2?}; \
         commit barriers {} (batched {} merges, {} fallback)",
        agg.schedule,
        agg.schedule_query,
        agg.schedule_prefill,
        agg.schedule_cpu,
        agg.prepare,
        agg.prepare_cpu,
        agg.commit,
        agg.commit_barriers,
        agg.batched_merges,
        agg.batch_fallback,
    );
    // Header pairs, then the canonical PipelineStats field list (same
    // formatter as merge-parallel and fmsa_opt --stats); `threads` is
    // already in the header.
    let mut rec: Vec<(&str, Json)> = vec![
        ("experiment", Json::S("scale".into())),
        ("phase", Json::S("stream".into())),
        ("functions", Json::I(funcs_in as i64)),
        ("chunk", Json::I(chunk as i64)),
        ("chunks", Json::I(chunks_done as i64)),
        ("search", Json::S("lsh".into())),
        ("alignment", Json::S("needleman-wunsch".into())),
        ("threads", Json::I(auto as i64)),
        ("cores", Json::I(cores as i64)),
        ("merges", Json::I(merges as i64)),
        ("functions_out", Json::I(funcs_out as i64)),
        ("wall_s", Json::F(stream_wall.as_secs_f64())),
        ("peak_rss_mib", Json::F(rss.unwrap_or(f64::NAN))),
    ];
    rec.extend(pipeline_json_fields(&agg).into_iter().filter(|(k, _)| *k != "threads"));
    report.record(&rec);
    if funcs_in != total {
        report.fail(format!("scale: stream produced {funcs_in} functions, expected {total}"));
    }

    // Phase 2: scaling curve on a sampled prefix — small enough to rerun
    // at every thread count, big enough to keep all workers busy.
    let sample_total = total.min(if fast { 4_000 } else { 20_000 });
    let sample: Vec<_> = stream_chunks(sample_total, chunk.min(sample_total), seed)
        .map(|s| s.materialize())
        .collect();
    println!("  scaling curve over a {sample_total}-function sample ({} chunks):", sample.len());
    println!("    {:>7} {:>10} {:>9} {:>8}", "threads", "wall", "speedup", "identical");
    // Sequential reference for the bit-identity gate.
    let seq_texts: Vec<String> = sample
        .iter()
        .map(|base| {
            let mut m = base.clone();
            run_fmsa(&mut m, &cfg.fmsa_options());
            print_module(&m)
        })
        .collect();
    let mut walls: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pcfg = cfg.clone().parallel(threads);
        let t0 = std::time::Instant::now();
        let mut identical = true;
        for (base, seq_text) in sample.iter().zip(&seq_texts) {
            let mut m = base.clone();
            run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
            identical &= print_module(&m) == *seq_text;
        }
        let wall = t0.elapsed().as_secs_f64();
        let speedup = walls.first().map(|&(_, w1)| w1 / wall.max(1e-9)).unwrap_or(1.0);
        walls.push((threads, wall));
        println!(
            "    {:>7} {:>9.2}s {:>8.2}x {:>9}",
            threads,
            wall,
            speedup,
            if identical { "yes" } else { "NO" }
        );
        report.record(&[
            ("experiment", Json::S("scale".into())),
            ("phase", Json::S("curve".into())),
            ("functions", Json::I(sample_total as i64)),
            ("search", Json::S("lsh".into())),
            ("alignment", Json::S("needleman-wunsch".into())),
            ("threads", Json::I(threads as i64)),
            ("cores", Json::I(cores as i64)),
            ("wall_s", Json::F(wall)),
            ("speedup_vs_threads1", Json::F(speedup)),
            ("identical_to_sequential", Json::B(identical)),
        ]);
        if !identical {
            report.fail(format!(
                "scale: pipeline output diverges from the sequential pass at \
                 threads={threads}"
            ));
        }
    }
    // Speedup gates only bind when the runner actually has the cores:
    // with one core, every thread count shares it and the curve is flat
    // (plus scheduling noise).
    let wall_at = |t: usize| walls.iter().find(|&&(w, _)| w == t).map(|&(_, w)| w);
    if cores >= 2 {
        if let (Some(w1), Some(w2)) = (wall_at(1), wall_at(2)) {
            if w2 >= w1 {
                report.fail(format!(
                    "scale: no speedup at threads=2 on a {cores}-core runner \
                     ({w2:.2}s vs {w1:.2}s at threads=1)"
                ));
            }
        }
    }
    if cores >= 4 {
        if let (Some(w1), Some(w4)) = (wall_at(1), wall_at(4)) {
            if w4 >= w1 {
                report.fail(format!(
                    "scale: no speedup at threads=4 on a {cores}-core runner \
                     ({w4:.2}s vs {w1:.2}s at threads=1)"
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- wasm

/// Decode a generated wasm corpus, lower it, and push it through the full
/// search→pipeline→merge stack — the "real binary" path. Reports frontend
/// timers (decode/lower/verify) and per-stage pipeline timers, and gates
/// both merge-output parity across 1/2/4 threads and a non-trivial size
/// reduction.
fn wasm_frontend(fast: bool, overrides: &Config, report: &mut Report) {
    use fmsa_core::SearchStrategy;
    use fmsa_ir::printer::print_module;
    use fmsa_workloads::{wasm_fixture_bytes, WasmFixtureConfig};
    println!("\n== WebAssembly frontend: decode -> lower -> merge (t=5, auto search) ==");
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>7} {:>10} {:>8} {:>11} {:>10}",
        "#fns",
        "wasm KiB",
        "decode",
        "lower",
        "threads",
        "wall",
        "merges",
        "reduction%",
        "identical"
    );
    let sizes: &[usize] = if fast { &[96] } else { &[96, 384] };
    for &n in sizes {
        let cfg = WasmFixtureConfig::with_functions(n);
        let bytes = wasm_fixture_bytes(&cfg);
        let t0 = std::time::Instant::now();
        let wasm = match fmsa_wasm::parse_wasm(&bytes) {
            Ok(w) => w,
            Err(e) => {
                report.fail(format!("wasm n={n}: corpus does not decode: {e}"));
                continue;
            }
        };
        let t_decode = t0.elapsed();
        let t0 = std::time::Instant::now();
        let base = match fmsa_wasm::lower_module(&wasm, "wasm-corpus") {
            Ok(m) => m,
            Err(e) => {
                report.fail(format!("wasm n={n}: corpus does not lower: {e}"));
                continue;
            }
        };
        let t_lower = t0.elapsed();
        let errs = fmsa_ir::verify_module(&base);
        if !errs.is_empty() {
            report.fail(format!("wasm n={n}: lowered module invalid: {}", errs[0]));
            continue;
        }
        let cfg = overrides.clone().threshold(5).search(SearchStrategy::Auto);
        let mut first: Option<(String, f64)> = None;
        for threads in [1usize, 2, 4] {
            let mut m = base.clone();
            let pcfg = cfg.clone().parallel(threads);
            let t0 = std::time::Instant::now();
            let stats = run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
            let wall = t0.elapsed();
            let text = print_module(&m);
            let identical = match &first {
                None => {
                    first = Some((text, stats.reduction_percent()));
                    true
                }
                Some((reference, _)) => *reference == text,
            };
            println!(
                "{:>6} {:>10.1} {:>9.2?} {:>9.2?} {:>7} {:>9.2?} {:>8} {:>11.2} {:>10}",
                n,
                bytes.len() as f64 / 1024.0,
                t_decode,
                t_lower,
                threads,
                wall,
                stats.merges,
                stats.reduction_percent(),
                if identical { "yes" } else { "NO" }
            );
            let p = stats.pipeline.unwrap_or_default();
            report.record(&[
                ("experiment", Json::S("wasm".into())),
                ("functions", Json::I(n as i64)),
                ("wasm_bytes", Json::I(bytes.len() as i64)),
                ("driver", Json::S("pipeline".into())),
                ("search", Json::S("auto".into())),
                ("alignment", Json::S("needleman-wunsch".into())),
                ("threads", Json::I(threads as i64)),
                ("decode_s", Json::F(t_decode.as_secs_f64())),
                ("lower_s", Json::F(t_lower.as_secs_f64())),
                ("merges", Json::I(stats.merges as i64)),
                ("reduction_percent", Json::F(stats.reduction_percent())),
                ("wall_s", Json::F(wall.as_secs_f64())),
                ("identical_to_threads1", Json::B(identical)),
                ("schedule_s", Json::F(p.schedule.as_secs_f64())),
                ("prepare_s", Json::F(p.prepare.as_secs_f64())),
                ("spec_codegen_s", Json::F(p.spec_codegen.as_secs_f64())),
                ("commit_s", Json::F(p.commit.as_secs_f64())),
                ("commit_codegen_s", Json::F(p.commit_codegen.as_secs_f64())),
                ("transplant_s", Json::F(p.transplant.as_secs_f64())),
                ("rewrite_s", Json::F(p.rewrite.as_secs_f64())),
            ]);
            if !identical {
                report.fail(format!(
                    "wasm n={n} threads={threads}: merge output diverges from threads=1"
                ));
            }
            if stats.merges == 0 || stats.reduction_percent() <= 0.0 {
                report.fail(format!(
                    "wasm n={n} threads={threads}: no measurable reduction ({} merges, {:.3}%)",
                    stats.merges,
                    stats.reduction_percent()
                ));
            }
        }
    }
    println!("(corpus: fmsa_workloads::wasm_fixtures — clone families serialized to wasm bytes)");
}

// ---------------------------------------------------------------- fuzz

/// The batched differential fuzz farm: lower a wasm corpus, merge it with
/// the pipeline, then hammer original-vs-merged with coverage-seeded
/// random inputs on a worker pool until both the pair target (≥1000) and
/// the time budget are spent. Any behavioural mismatch or interpreter
/// panic is a CI failure; throughput and coverage land in the bench JSON.
fn fuzz_farm(fast: bool, budget_secs: usize, report: &mut Report) {
    use fmsa_core::SearchStrategy;
    use fmsa_interp::batch::wire_targets;
    use fmsa_interp::{run_differential_batch, BatchConfig};
    use fmsa_workloads::{wasm_fixture_bytes, WasmFixtureConfig};
    let threads = Config::new().pipeline_options().resolved_threads();
    let n = if fast { 48 } else { 96 };
    println!("\n== Differential fuzz farm: original vs merged wasm corpus ==");
    println!(
        "{:>6} {:>7} {:>8} {:>8} {:>10} {:>7} {:>11} {:>8} {:>7}",
        "#fns", "memory", "targets", "pairs", "pairs/sec", "paths", "mismatches", "panics", "quar"
    );
    let budget = std::time::Duration::from_secs(budget_secs as u64);
    // Half the budget per corpus flavour: pure-compute and linear-memory
    // modules stress different interpreter and merge paths.
    let per_corpus = budget / 2;
    for with_memory in [false, true] {
        let cfg = WasmFixtureConfig {
            functions: n,
            with_memory,
            seed: 0xF22A + with_memory as u64,
            ..WasmFixtureConfig::default()
        };
        let bytes = wasm_fixture_bytes(&cfg);
        let mut pre = match fmsa_wasm::load_wasm(&bytes, "fuzz-corpus") {
            Ok(m) => m,
            Err(e) => {
                report.fail(format!("fuzz memory={with_memory}: corpus does not load: {e}"));
                continue;
            }
        };
        let mut post = pre.clone();
        let cfg = Config::new().threshold(5).search(SearchStrategy::Auto).parallel(threads);
        let stats = run_fmsa_pipeline(&mut post, &cfg.fmsa_options(), &cfg.pipeline_options());
        if stats.merges == 0 {
            report.fail(format!("fuzz memory={with_memory}: corpus did not merge"));
            continue;
        }
        let quarantined = stats.quarantine.len();
        if quarantined > 0 {
            report.fail(format!(
                "fuzz memory={with_memory}: clean merge quarantined {quarantined} pair(s)"
            ));
        }
        let targets = wire_targets(&mut pre, &mut post, with_memory);
        let (mut pairs, mut panics, mut paths, mut rounds) = (0usize, 0usize, 0usize, 0u64);
        let mut mismatches = Vec::new();
        let t0 = std::time::Instant::now();
        while pairs < 1000 || t0.elapsed() < per_corpus {
            let bcfg = BatchConfig {
                threads,
                seed: 0xF22A_0000 ^ rounds,
                per_target: 8,
                ..BatchConfig::default()
            };
            let out = run_differential_batch(&pre, &post, &targets, &bcfg);
            pairs += out.pairs_run;
            panics += out.panics_caught;
            // Coverage within one round is a unique (function, block) set
            // over the same module, so the union across rounds is tracked
            // as the best single round.
            paths = paths.max(out.paths_covered);
            mismatches.extend(out.mismatches);
            rounds += 1;
        }
        let wall = t0.elapsed().as_secs_f64();
        let pairs_per_sec = pairs as f64 / wall.max(1e-9);
        println!(
            "{:>6} {:>7} {:>8} {:>8} {:>10.0} {:>7} {:>11} {:>8} {:>7}",
            n,
            with_memory,
            targets.len(),
            pairs,
            pairs_per_sec,
            paths,
            mismatches.len(),
            panics,
            quarantined
        );
        for m in mismatches.iter().take(5) {
            println!(
                "       MISMATCH {} seed={:#x}: pre={} post={} (replay: seeded_args from this seed)",
                m.function, m.seed, m.pre, m.post
            );
        }
        report.record(&[
            ("experiment", Json::S("fuzz".into())),
            ("functions", Json::I(n as i64)),
            ("with_memory", Json::B(with_memory)),
            ("threads", Json::I(threads as i64)),
            ("budget_s", Json::F(per_corpus.as_secs_f64())),
            ("targets", Json::I(targets.len() as i64)),
            ("pairs_run", Json::I(pairs as i64)),
            ("pairs_per_sec", Json::F(pairs_per_sec)),
            ("paths_covered", Json::I(paths as i64)),
            ("mismatches", Json::I(mismatches.len() as i64)),
            ("panics_caught", Json::I(panics as i64)),
            ("quarantined", Json::I(quarantined as i64)),
            ("merges", Json::I(stats.merges as i64)),
        ]);
        if !mismatches.is_empty() {
            report.fail(format!(
                "fuzz memory={with_memory}: {} differential mismatch(es), first in {} seed={:#x}",
                mismatches.len(),
                mismatches[0].function,
                mismatches[0].seed
            ));
        }
        if panics > 0 {
            report.fail(format!("fuzz memory={with_memory}: {panics} interpreter panic(s)"));
        }
        if pairs < 1000 {
            report.fail(format!(
                "fuzz memory={with_memory}: only {pairs} input pairs inside the budget (<1000)"
            ));
        }
    }
    println!("(pairs = one input vector run on both original and merged module under equal fuel)");
}

// ---------------------------------------------------------------- faults

/// The fault-injection matrix: run the pipeline over a clone swarm with a
/// deterministic `FaultPlan` forcing panics and verifier failures, and
/// gate the graceful-degradation contract — the run completes, only
/// planned pairs are quarantined, and output plus quarantine summary are
/// bit-identical at 1, 2, and 4 threads. A scratch-poison-only plan must
/// degrade to the inline path with no quarantine and unchanged output.
fn fault_matrix(fast: bool, report: &mut Report) {
    use fmsa_core::quarantine::QuarantineStage;
    use fmsa_core::SearchStrategy;
    use fmsa_core::{silence_injected_panics, FaultPlan, FaultSite};
    use fmsa_ir::printer::print_module;
    use fmsa_workloads::{clone_swarm_module, SwarmConfig};
    silence_injected_panics();
    let n = if fast { 600 } else { 5000 };
    println!("\n== Fault-injection matrix: quarantine and graceful degradation (n={n}) ==");
    println!(
        "{:>9} {:>7} {:>10} {:>8} {:>6} {:>8} {:>7} {:>7} {:>10} {:>9}",
        "plan",
        "threads",
        "wall",
        "merges",
        "quar",
        "panics",
        "poison",
        "verify",
        "identical",
        "summary="
    );
    let base = clone_swarm_module(&SwarmConfig::with_functions(n));
    let cfg = Config::new().threshold(5).search(SearchStrategy::lsh());
    let plan = FaultPlan::new(0xFA17, 20_000, &FaultSite::ALL);
    let poison_only = FaultPlan::new(0xFA17, 1_000_000, &[FaultSite::ScratchPoison]);
    // The clean 4-thread output is the reference the poison-only run must
    // reproduce exactly (spec-wave faults degrade, they never quarantine).
    let mut clean = base.clone();
    {
        let clean_cfg = cfg.clone().parallel(4);
        run_fmsa_pipeline(&mut clean, &clean_cfg.fmsa_options(), &clean_cfg.pipeline_options());
    }
    let clean_text = print_module(&clean);
    for (label, faults) in [("injected", plan), ("poison", poison_only)] {
        let mut reference: Option<(String, String)> = None;
        for threads in [1usize, 2, 4] {
            let mut m = base.clone();
            let pcfg = cfg.clone().parallel(threads).faults(faults);
            let t0 = std::time::Instant::now();
            let stats = run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
            let wall = t0.elapsed();
            let errs = fmsa_ir::verify_module(&m);
            if !errs.is_empty() {
                report.fail(format!(
                    "faults {label} threads={threads}: output module invalid: {}",
                    errs[0]
                ));
            }
            let text = print_module(&m);
            let summary = stats.quarantine.summary();
            let (identical, summary_same) = match &reference {
                None => {
                    reference = Some((text.clone(), summary.clone()));
                    (true, true)
                }
                Some((rt, rs)) => (*rt == text, *rs == summary),
            };
            let p = stats.pipeline.unwrap_or_default();
            println!(
                "{:>9} {:>7} {:>9.2?} {:>8} {:>6} {:>8} {:>7} {:>7} {:>10} {:>9}",
                label,
                threads,
                wall,
                stats.merges,
                p.quarantined(),
                p.panics_caught,
                p.poisoned_scratch,
                p.quarantined_verify,
                if identical { "yes" } else { "NO" },
                if summary_same { "same" } else { "DIFFERS" }
            );
            report.record(&[
                ("experiment", Json::S("faults".into())),
                ("plan", Json::S(label.into())),
                ("functions", Json::I(n as i64)),
                ("threads", Json::I(threads as i64)),
                ("rate_ppm", Json::I(faults.rate_ppm as i64)),
                ("merges", Json::I(stats.merges as i64)),
                ("quarantined", Json::I(p.quarantined() as i64)),
                ("quarantined_align", Json::I(p.quarantined_align as i64)),
                ("quarantined_codegen", Json::I(p.quarantined_codegen as i64)),
                ("quarantined_verify", Json::I(p.quarantined_verify as i64)),
                ("panics_caught", Json::I(p.panics_caught as i64)),
                ("poisoned_scratch", Json::I(p.poisoned_scratch as i64)),
                ("wall_s", Json::F(wall.as_secs_f64())),
                ("identical_to_threads1", Json::B(identical)),
                ("quarantine_summary_identical", Json::B(summary_same)),
            ]);
            if !identical || !summary_same {
                report.fail(format!(
                    "faults {label} threads={threads}: output or quarantine set diverges \
                     from threads=1"
                ));
            }
            // Every quarantined pair must trace back to the plan: the
            // corpus itself is healthy, so an unplanned entry means the
            // fault boundary leaked.
            for e in stats.quarantine.entries() {
                let site = match e.stage {
                    QuarantineStage::Align => FaultSite::Align,
                    QuarantineStage::Codegen => FaultSite::Codegen,
                    QuarantineStage::Verify => FaultSite::Verify,
                    QuarantineStage::Mismatch => {
                        report.fail(format!(
                            "faults {label}: unexpected mismatch quarantine for {},{}",
                            e.f1, e.f2
                        ));
                        continue;
                    }
                };
                if !faults.fires(site, &e.f1, &e.f2) {
                    report.fail(format!(
                        "faults {label}: pair {},{} quarantined at {} without a planned fault",
                        e.f1, e.f2, e.stage
                    ));
                }
            }
            match label {
                "injected" => {
                    if p.quarantined() == 0 {
                        report.fail(format!(
                            "faults {label} threads={threads}: plan fired no quarantines — \
                             the matrix is not exercising the boundaries"
                        ));
                    }
                }
                _ => {
                    if p.quarantined() > 0 {
                        report.fail(format!(
                            "faults {label} threads={threads}: scratch poison must degrade, \
                             not quarantine ({} quarantined)",
                            p.quarantined()
                        ));
                    }
                    if threads > 1 && p.poisoned_scratch == 0 {
                        report.fail(format!(
                            "faults {label} threads={threads}: poison plan never poisoned \
                             a scratch body"
                        ));
                    }
                    if text != clean_text {
                        report.fail(format!(
                            "faults {label} threads={threads}: degraded output differs from \
                             the fault-free run"
                        ));
                    }
                }
            }
        }
    }
    println!(
        "(injected faults quarantine deterministically on the commit path; spec-wave \
         faults degrade to inline codegen with no quarantine)"
    );
}

// ---------------------------------------------------------------- ablation

fn ablation_params(suite: &[BenchDesc]) {
    println!("\n== Ablation: §III-E parameter reuse (\"improves ... by up to 7%\") ==");
    println!("{:<16} {:>10} {:>10} {:>8}", "benchmark", "reuse-on", "reuse-off", "delta");
    let cm = CostModel::new(TargetArch::X86_64);
    let mut best = 0.0f64;
    for desc in suite {
        let base = desc.build();
        let size_before = cm.module_size(&base);
        let run = |reuse: bool| -> f64 {
            let mut m = base.clone();
            run_identical(&mut m, TargetArch::X86_64);
            let cfg = Config::new()
                .threshold(1)
                .merge(MergeConfig { reuse_params: reuse, ..MergeConfig::default() });
            run_fmsa(&mut m, &cfg.fmsa_options());
            reduction_percent(size_before, cm.module_size(&m))
        };
        let on = run(true);
        let off = run(false);
        best = best.max(on - off);
        println!("{:<16} {:>10.2} {:>10.2} {:>8.2}", desc.name, on, off, on - off);
    }
    println!("(largest per-benchmark improvement from parameter reuse: {best:.2}%)");
}

// ---------------------------------------------------------------- serve

/// The merge-daemon load generator: boots an in-process `fmsa-serve` over
/// a persistent store, then measures (and under `--check` gates) the
/// service contract — daemon output byte-identical to batch
/// `fmsa::optimize`, a byte-identical re-upload served from the response
/// cache with a nonzero store hit rate and measurably faster than the
/// cold merge, sustained merges/sec over distinct corpora, and index
/// survival across a daemon restart.
fn serve_bench(fast: bool, report: &mut Report) {
    use fmsa_serve::{client, Server, ServerConfig};
    use fmsa_workloads::{wasm_fixture_bytes, WasmFixtureConfig};
    let n = if fast { 96 } else { 192 };
    println!("\n== fmsa-serve: merge daemon under load (n={n} functions per corpus) ==");

    let corpus = |seed: u64| -> Vec<u8> {
        let mut cfg = WasmFixtureConfig::with_functions(n);
        cfg.seed = seed;
        wasm_fixture_bytes(&cfg)
    };
    let store_dir = std::env::temp_dir().join(format!("fmsa-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server_cfg = ServerConfig { store_dir: Some(store_dir.clone()), ..ServerConfig::default() };
    let mut server = match Server::bind(server_cfg.clone()).and_then(Server::spawn) {
        Ok(s) => s,
        Err(e) => {
            report.fail(format!("serve-bench: cannot boot daemon: {e}"));
            return;
        }
    };

    // Parity reference: the exact bytes batch fmsa_opt would print.
    let primary = corpus(1);
    let reference = {
        let mut m = fmsa::load_module_bytes(&primary, "upload").expect("corpus loads");
        fmsa::optimize(&mut m, &Config::new()).expect("corpus merges");
        fmsa::ir::printer::print_module(&m)
    };

    // Uploads go through the retrying client: a shed (429/503) response
    // is backed off and retried per its Retry-After instead of failing
    // the run — the same path a well-behaved production client takes.
    let retry = client::RetryPolicy { seed: 11, ..client::RetryPolicy::default() };
    let upload = |server: &fmsa_serve::RunningServer, body: &[u8]| {
        let t0 = std::time::Instant::now();
        let resp =
            client::request_with_retry(server.addr(), "POST", "/v1/modules", &[], body, &retry);
        (resp, t0.elapsed())
    };
    let header_u64 = |resp: &client::Response, name: &str| -> u64 {
        resp.header(name).and_then(|v| v.parse().ok()).unwrap_or(0)
    };

    // Cold upload: the merge runs, every function is a store miss.
    let (cold, t_cold) = upload(&server, &primary);
    let Ok(cold) = cold else {
        report.fail("serve-bench: cold upload failed".to_owned());
        return;
    };
    if cold.status != 200 {
        report.fail(format!("serve-bench: cold upload returned {}", cold.status));
        return;
    }
    if cold.text() != reference {
        report
            .fail("serve-bench: daemon output is not byte-identical to batch fmsa_opt".to_owned());
    }
    let merges = header_u64(&cold, "x-fmsa-merges");

    // Warm re-upload: byte-identical output, nonzero hit rate, faster.
    let (warm, t_warm) = upload(&server, &primary);
    let Ok(warm) = warm else {
        report.fail("serve-bench: warm upload failed".to_owned());
        return;
    };
    let warm_hits = header_u64(&warm, "x-fmsa-store-hits");
    let warm_total = warm_hits + header_u64(&warm, "x-fmsa-store-misses");
    let hit_rate = warm_hits as f64 / (warm_total as f64).max(1.0);
    if warm.body != cold.body {
        report
            .fail("serve-bench: warm re-upload is not byte-identical to the cold merge".to_owned());
    }
    if warm_hits == 0 {
        report.fail("serve-bench: warm re-upload saw zero store hits".to_owned());
    }
    if t_warm >= t_cold {
        report.fail(format!(
            "serve-bench: warm re-upload ({t_warm:.2?}) not faster than cold merge ({t_cold:.2?})"
        ));
    }

    // Sustained load: distinct corpora, so every request is a real merge.
    let seeds: &[u64] = if fast { &[2, 3, 4, 5] } else { &[2, 3, 4, 5, 6, 7, 8, 9] };
    let mut sustained_merges = 0u64;
    let t0 = std::time::Instant::now();
    for &seed in seeds {
        let (resp, _) = upload(&server, &corpus(seed));
        match resp {
            Ok(r) if r.status == 200 => sustained_merges += header_u64(&r, "x-fmsa-merges"),
            Ok(r) => report.fail(format!("serve-bench: seed {seed} upload returned {}", r.status)),
            Err(e) => report.fail(format!("serve-bench: seed {seed} upload failed: {e}")),
        }
    }
    let sustained_wall = t0.elapsed();
    let merges_per_sec = sustained_merges as f64 / sustained_wall.as_secs_f64().max(1e-9);
    let requests_per_sec = seeds.len() as f64 / sustained_wall.as_secs_f64().max(1e-9);

    // Restart: a new daemon over the same directory reloads the index, so
    // the primary corpus is all store hits without the response cache.
    server.stop();
    let mut restart_hit_rate = 0.0;
    match Server::bind(server_cfg).and_then(Server::spawn) {
        Ok(mut restarted) => {
            let (resp, _) = upload(&restarted, &primary);
            match resp {
                Ok(r) if r.status == 200 => {
                    let hits = header_u64(&r, "x-fmsa-store-hits");
                    let total = hits + header_u64(&r, "x-fmsa-store-misses");
                    restart_hit_rate = hits as f64 / (total as f64).max(1.0);
                    if r.body != cold.body {
                        report.fail("serve-bench: output changed across a restart".to_owned());
                    }
                    if hits != total || total == 0 {
                        report.fail(format!(
                            "serve-bench: reloaded index recognized {hits}/{total} functions"
                        ));
                    }
                }
                Ok(r) => report.fail(format!("serve-bench: post-restart upload got {}", r.status)),
                Err(e) => report.fail(format!("serve-bench: post-restart upload failed: {e}")),
            }
            restarted.stop();
        }
        Err(e) => report.fail(format!("serve-bench: cannot restart daemon: {e}")),
    }
    let _ = std::fs::remove_dir_all(&store_dir);

    println!(
        "{:>10} {:>10} {:>9} {:>12} {:>12} {:>13} {:>13}",
        "cold", "warm", "speedup", "hit rate", "merges/sec", "requests/sec", "restart hits"
    );
    let speedup = t_cold.as_secs_f64() / t_warm.as_secs_f64().max(1e-9);
    println!(
        "{:>9.2?} {:>9.2?} {:>8.1}x {:>12.3} {:>12.1} {:>13.1} {:>13.3}",
        t_cold, t_warm, speedup, hit_rate, merges_per_sec, requests_per_sec, restart_hit_rate
    );
    report.record(&[
        ("experiment", Json::S("serve-bench".into())),
        ("functions", Json::I(n as i64)),
        ("corpora", Json::I(seeds.len() as i64 + 1)),
        ("cold_wall_s", Json::F(t_cold.as_secs_f64())),
        ("warm_wall_s", Json::F(t_warm.as_secs_f64())),
        ("warm_speedup", Json::F(speedup)),
        ("warm_hit_rate", Json::F(hit_rate)),
        ("merges", Json::I(merges as i64)),
        ("sustained_merges", Json::I(sustained_merges as i64)),
        ("merges_per_sec", Json::F(merges_per_sec)),
        ("requests_per_sec", Json::F(requests_per_sec)),
        ("restart_hit_rate", Json::F(restart_hit_rate)),
    ]);
    println!(
        "(cold = first upload, warm = byte-identical re-upload served from the response \
         cache; restart hits = store recognition after an index reload from disk)"
    );
}

// ---------------------------------------------------------------- chaos

/// Deterministic pseudo-random stream for the chaos harness (splitmix64
/// over `(cycle, salt)`): every cut point, bit flip, and upload seed is
/// a pure function of the cycle index, so a failing cycle replays
/// exactly by number.
fn chaos_mix(cycle: u64, salt: u64) -> u64 {
    let mut z = cycle
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The crash/recovery chaos harness: kill/restart cycles over one
/// persistent store, concurrent uploads under injected store I/O
/// faults, and a simulated kill-at-byte-N (log truncation, sometimes a
/// bit flip) after every kill. Gates, per the robustness contract:
/// zero panics anywhere, the reopened store always equals an
/// independent [`fmsa_core::scan_store`] of the mutated log (no
/// checksum-valid durable entry lost), the recovered daemon re-serves
/// the warm corpus byte-identically, and a compaction killed at the
/// rename leaves the old log authoritative (never a hybrid).
fn chaos(fast: bool, report: &mut Report) {
    use fmsa::ContentHash;
    use fmsa_core::store::{scan_store, FunctionStore, StoreOptions, STORE_FILE};
    use fmsa_core::{FaultPlan, FaultSite};
    use fmsa_serve::{client, Server, ServerConfig};
    use fmsa_workloads::{wasm_fixture_bytes, WasmFixtureConfig};
    use std::time::{Duration, Instant};

    let cycles: u64 = if fast { 20 } else { 50 };
    let n = if fast { 16 } else { 32 };
    println!("\n== chaos: {cycles} kill/restart cycles under store faults (n={n} fns/corpus) ==");

    let corpus = |seed: u64| -> Vec<u8> {
        let mut cfg = WasmFixtureConfig::with_functions(n);
        cfg.seed = seed;
        wasm_fixture_bytes(&cfg)
    };
    let store_dir = std::env::temp_dir().join(format!("fmsa-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mk_cfg = |faults: FaultPlan| ServerConfig {
        store_dir: Some(store_dir.clone()),
        store: StoreOptions { faults, ..StoreOptions::default() },
        // Deadline bounds every request's tail latency by construction.
        request_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    };
    // Low-rate write/fsync faults during the cycles; the store keys
    // faults by a monotonic op counter, so a retried request is a new
    // draw rather than a permanently poisoned input.
    let cycle_faults =
        |cycle: u64| FaultPlan::new(cycle, 5_000, &[FaultSite::StoreWrite, FaultSite::StoreFsync]);
    let entry_set = |entries: &[(ContentHash, u64)]| -> Vec<(ContentHash, u64)> {
        let mut v = entries.to_vec();
        v.sort();
        v
    };

    // Warm phase (no faults): reference bytes + a durable warm store.
    let primary = corpus(1);
    let reference = {
        let mut m = fmsa::load_module_bytes(&primary, "upload").expect("corpus loads");
        fmsa::optimize(&mut m, &Config::new()).expect("corpus merges");
        fmsa::ir::printer::print_module(&m).into_bytes()
    };
    match Server::bind(mk_cfg(FaultPlan::disabled())).and_then(Server::spawn) {
        Ok(mut server) => {
            match client::post(server.addr(), "/v1/modules", &primary) {
                Ok(r) if r.status == 200 && r.body == reference => {}
                Ok(r) => report.fail(format!("chaos: warm upload got {} or wrong bytes", r.status)),
                Err(e) => report.fail(format!("chaos: warm upload failed: {e}")),
            }
            server.stop(); // graceful: flush + compact
        }
        Err(e) => {
            report.fail(format!("chaos: cannot boot daemon: {e}"));
            return;
        }
    }

    let retry = client::RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        seed: 7,
    };
    let mut kills = 0u64;
    let mut panics = 0u64;
    let mut lost_cycles = 0u64;
    let mut reserve_mismatches = 0u64;
    let mut uploads_ok = 0u64;
    let mut uploads_faulted = 0u64;
    let mut skipped_total = 0u64;
    let mut latencies: Vec<Duration> = Vec::new();

    for cycle in 0..cycles {
        let mut server = match Server::bind(mk_cfg(cycle_faults(cycle))).and_then(Server::spawn) {
            Ok(s) => s,
            Err(e) => {
                report.fail(format!("chaos: cycle {cycle}: cannot restart daemon: {e}"));
                break;
            }
        };
        // Gate: byte-identical re-serve of the warm corpus after the
        // previous cycle's crash + recovery. (Merge decisions never read
        // the store, so recovery must not change responses.)
        let t0 = Instant::now();
        match client::request_with_retry(
            server.addr(),
            "POST",
            "/v1/modules",
            &[],
            &primary,
            &retry,
        ) {
            Ok(r) if r.status == 200 => {
                latencies.push(t0.elapsed());
                uploads_ok += 1;
                if r.body != reference {
                    reserve_mismatches += 1;
                    report.fail(format!("chaos: cycle {cycle}: re-serve not byte-identical"));
                }
            }
            // An injected ingest fault surfaces as a 5xx: acceptable
            // chaos, the gate is on what 200s contain.
            Ok(_) => uploads_faulted += 1,
            Err(e) => report.fail(format!("chaos: cycle {cycle}: re-serve transport error: {e}")),
        }
        // Concurrent uploads of distinct corpora under store faults.
        let workers: Vec<_> = (0..3u64)
            .map(|w| {
                let addr = server.addr();
                let body = corpus(100 + cycle * 3 + w);
                let retry = retry.clone();
                std::thread::spawn(move || {
                    let t0 = Instant::now();
                    let r =
                        client::request_with_retry(addr, "POST", "/v1/modules", &[], &body, &retry);
                    (r, t0.elapsed())
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok((Ok(r), lat)) if r.status == 200 => {
                    latencies.push(lat);
                    uploads_ok += 1;
                }
                Ok((Ok(_), _)) => uploads_faulted += 1,
                Ok((Err(_), _)) => uploads_faulted += 1,
                Err(_) => {
                    panics += 1;
                    report.fail(format!("chaos: cycle {cycle}: upload worker panicked"));
                }
            }
        }

        // The crash: no drain, no flush, no compaction...
        server.kill();
        kills += 1;
        // ...then kill-at-byte-N: truncate the log to a random cut and,
        // every third cycle, flip one bit inside what remains.
        let path = store_dir.join(STORE_FILE);
        let raw = std::fs::read(&path).unwrap_or_default();
        if raw.is_empty() {
            continue;
        }
        let cut = (chaos_mix(cycle, 1) as usize) % (raw.len() + 1);
        let mut mutated = raw[..cut].to_vec();
        if cycle % 3 == 0 && !mutated.is_empty() {
            let off = (chaos_mix(cycle, 2) as usize) % mutated.len();
            mutated[off] ^= 1 << (chaos_mix(cycle, 3) % 8);
        }
        if let Err(e) = std::fs::write(&path, &mutated) {
            report.fail(format!("chaos: cycle {cycle}: cannot mutate log: {e}"));
            break;
        }

        // Gate: recovery == independent scan; open never panics.
        let expected = scan_store(&mutated);
        skipped_total += expected.skipped_records as u64;
        match std::panic::catch_unwind(|| FunctionStore::open(&store_dir)) {
            Ok(Ok(store)) => {
                let got: Vec<(ContentHash, u64)> =
                    store.entries().map(|e| (e.hash, e.seen)).collect();
                if entry_set(&got) != entry_set(&expected.entries) {
                    lost_cycles += 1;
                    report.fail(format!(
                        "chaos: cycle {cycle}: recovered {} entries, independent scan \
                         of the mutated log says {} (cut {cut}/{})",
                        got.len(),
                        expected.entries.len(),
                        raw.len()
                    ));
                }
            }
            Ok(Err(e)) => report.fail(format!("chaos: cycle {cycle}: recovery errored: {e}")),
            Err(_) => {
                panics += 1;
                report.fail(format!("chaos: cycle {cycle}: recovery panicked"));
            }
        }
    }

    // Gate: a compaction killed at the rename is atomic — the old log
    // stays authoritative, no hybrid, and the scratch tmp is cleaned up.
    {
        let rename_fault = StoreOptions {
            faults: FaultPlan::new(999, 1_000_000, &[FaultSite::StoreRename]),
            ..StoreOptions::default()
        };
        match FunctionStore::open_with(&store_dir, rename_fault) {
            Ok(mut store) => {
                let before: Vec<(ContentHash, u64)> =
                    store.entries().map(|e| (e.hash, e.seen)).collect();
                if store.compact().is_ok() {
                    report.fail("chaos: rename fault did not fire on compact".to_owned());
                }
                drop(store);
                match FunctionStore::open(&store_dir) {
                    Ok(store) => {
                        let after: Vec<(ContentHash, u64)> =
                            store.entries().map(|e| (e.hash, e.seen)).collect();
                        if entry_set(&after) != entry_set(&before) {
                            report.fail(
                                "chaos: failed compaction changed the log (hybrid state)"
                                    .to_owned(),
                            );
                        }
                    }
                    Err(e) => report.fail(format!("chaos: reopen after failed compact: {e}")),
                }
            }
            Err(e) => report.fail(format!("chaos: cannot open store for compact gate: {e}")),
        }
        // And an unfaulted compaction folds cleanly and round-trips.
        match FunctionStore::open(&store_dir) {
            Ok(mut store) => {
                let before: Vec<(ContentHash, u64)> =
                    store.entries().map(|e| (e.hash, e.seen)).collect();
                match store.compact() {
                    Ok(_) => {
                        drop(store);
                        match FunctionStore::open(&store_dir) {
                            Ok(store) => {
                                let after: Vec<(ContentHash, u64)> =
                                    store.entries().map(|e| (e.hash, e.seen)).collect();
                                if entry_set(&after) != entry_set(&before) {
                                    report.fail(
                                        "chaos: compaction changed the live entry set".to_owned(),
                                    );
                                }
                                if store.dead_bytes() != 0 {
                                    report.fail(
                                        "chaos: compacted log still has dead bytes".to_owned(),
                                    );
                                }
                            }
                            Err(e) => report.fail(format!("chaos: reopen after compact: {e}")),
                        }
                    }
                    Err(e) => report.fail(format!("chaos: final compact failed: {e}")),
                }
            }
            Err(e) => report.fail(format!("chaos: cannot open store for final compact: {e}")),
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);

    if kills < cycles {
        report.fail(format!("chaos: only {kills}/{cycles} kill cycles ran"));
    }
    if panics > 0 {
        report.fail(format!("chaos: {panics} panic(s) observed"));
    }
    latencies.sort();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let i = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[i].as_secs_f64() * 1000.0
    };
    let (p50, p95, max) = (pct(0.50), pct(0.95), pct(1.0));
    // Tail bound: the request deadline caps every successful upload.
    if max > 60_000.0 {
        report.fail(format!("chaos: tail latency unbounded ({max:.0} ms)"));
    }

    println!(
        "{:>7} {:>8} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "cycles", "kills", "panics", "lost", "ok", "faulted", "p50 ms", "p95 ms"
    );
    println!(
        "{:>7} {:>8} {:>7} {:>10} {:>9} {:>9} {:>9.1} {:>9.1}",
        cycles, kills, panics, lost_cycles, uploads_ok, uploads_faulted, p50, p95
    );
    report.record(&[
        ("experiment", Json::S("chaos".into())),
        ("cycles", Json::I(cycles as i64)),
        ("kills", Json::I(kills as i64)),
        ("panics", Json::I(panics as i64)),
        ("entries_lost_cycles", Json::I(lost_cycles as i64)),
        ("reserve_mismatches", Json::I(reserve_mismatches as i64)),
        ("uploads_ok", Json::I(uploads_ok as i64)),
        ("uploads_faulted", Json::I(uploads_faulted as i64)),
        ("corrupt_records_skipped", Json::I(skipped_total as i64)),
        ("p50_ms", Json::F(p50)),
        ("p95_ms", Json::F(p95)),
        ("max_ms", Json::F(max)),
    ]);
    println!(
        "(every cut/flip/upload seed is a pure function of the cycle index; a failing \
         cycle replays exactly from its number — see docs/robustness.md)"
    );
}

// ---------------------------------------------------------------- obs

/// Flight-recorder smoke test: the CI `obs-smoke` job runs this with
/// `--fast --check`. Gates (a) tracing overhead ≤ 3% over the
/// telemetry-disabled run, (b) bit-identical output at 1/2/4/8 threads
/// with tracing on and off, (c) well-nested Chrome-trace spans with the
/// expected span names, (d) exact reconciliation of the per-attempt
/// decision log against `FmsaStats`/`PipelineStats`, and (e) a booted
/// daemon serving valid Prometheus exposition with the required metric
/// families plus a populated `/v1/merges/recent`.
fn obs(fast: bool, report: &mut Report) {
    use fmsa::telemetry::{trace, DecisionOutcome};
    use fmsa_core::SearchStrategy;
    use fmsa_ir::printer::print_module;
    use fmsa_serve::{client, Server, ServerConfig};
    use fmsa_workloads::{clone_swarm_module, wasm_fixture_bytes, SwarmConfig, WasmFixtureConfig};

    let n = if fast { 1_000 } else { 5_000 };
    println!("\n== Flight recorder: overhead, identity, trace, decisions, /metrics (n={n}) ==");
    let cfg = Config::new().threshold(5).search(SearchStrategy::lsh());
    let base = clone_swarm_module(&SwarmConfig::with_functions(n));

    // Tracing is process-global; remember the caller's state (a global
    // `--trace-out` enables it before dispatch) and restore it on exit.
    let was_tracing = trace::enabled();
    trace::disable();
    let _ = trace::drain();

    // (a) Overhead: telemetry-disabled vs tracing-enabled wall clock on
    // the sequential driver. Runs are interleaved off/on (so clock and
    // cache drift hit both sides equally) after an untimed warm-up, and
    // each side keeps its minimum — the least-noise estimate of the
    // true cost.
    let time_run = || {
        let mut m = base.clone();
        let t0 = std::time::Instant::now();
        let st = run_fmsa(&mut m, &cfg.fmsa_options());
        (t0.elapsed().as_secs_f64(), st)
    };
    let _ = time_run(); // warm-up: page cache, allocator, branch predictors
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut seq_stats = None;
    for _ in 0..4 {
        trace::disable();
        let (w, st) = time_run();
        wall_off = wall_off.min(w);
        seq_stats = Some(st);
        trace::enable();
        let (w, _) = time_run();
        wall_on = wall_on.min(w);
        let _ = trace::drain(); // keep per-thread buffers from filling up
    }
    trace::disable();
    let overhead_pct = (wall_on / wall_off.max(1e-9) - 1.0) * 100.0;
    println!(
        "  overhead: sequential n={n}, tracing off {wall_off:.3}s vs on {wall_on:.3}s \
         ({overhead_pct:+.2}%)"
    );
    report.record(&[
        ("experiment", Json::S("obs".into())),
        ("check", Json::S("overhead".into())),
        ("functions", Json::I(n as i64)),
        ("wall_off_s", Json::F(wall_off)),
        ("wall_on_s", Json::F(wall_on)),
        ("overhead_pct", Json::F(overhead_pct)),
    ]);
    if overhead_pct > 3.0 {
        report.fail(format!(
            "obs: tracing overhead {overhead_pct:.2}% exceeds the 3% budget \
             (off {wall_off:.3}s, on {wall_on:.3}s)"
        ));
    }

    // (b) Bit-identity: the pipeline must print the sequential bytes at
    // every thread count, with the flight recorder both off and on —
    // telemetry observes, it never decides.
    let seq_text = {
        let mut m = base.clone();
        run_fmsa(&mut m, &cfg.fmsa_options());
        print_module(&m)
    };
    let mut identical_all = true;
    for traced in [false, true] {
        if traced {
            trace::enable();
        } else {
            trace::disable();
        }
        for threads in [1usize, 2, 4, 8] {
            let pcfg = cfg.clone().parallel(threads);
            let mut m = base.clone();
            run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
            let identical = print_module(&m) == seq_text;
            identical_all &= identical;
            if !identical {
                report.fail(format!(
                    "obs: pipeline output diverges from sequential at threads={threads} \
                     tracing={}",
                    if traced { "on" } else { "off" }
                ));
            }
        }
    }
    println!(
        "  bit-identity at threads 1/2/4/8, tracing off+on: {}",
        if identical_all { "yes" } else { "NO" }
    );
    report.record(&[
        ("experiment", Json::S("obs".into())),
        ("check", Json::S("bit-identity".into())),
        ("functions", Json::I(n as i64)),
        ("identical_to_sequential", Json::B(identical_all)),
    ]);

    // (c) Trace validity: the traced half of the identity loop left its
    // spans in the per-thread buffers; they must be well nested and
    // cover the whole span hierarchy.
    trace::disable();
    let (events, dropped) = trace::drain();
    let nesting = trace::check_nesting(&events);
    if events.is_empty() {
        report.fail("obs: tracing-enabled runs recorded no span events".to_owned());
    }
    if let Err(e) = &nesting {
        report.fail(format!("obs: trace spans are not well nested: {e}"));
    }
    for required in ["pass", "generation", "schedule", "prepare", "commit", "merge_attempt"] {
        if !events.iter().any(|ev| ev.name == required) {
            report.fail(format!("obs: trace is missing the {required:?} span"));
        }
    }
    let export = trace::export_chrome(&events);
    if !export.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[") {
        report.fail("obs: Chrome-trace export has an unexpected envelope".to_owned());
    }
    println!(
        "  trace: {} events across {} threads, nesting {}",
        events.len(),
        events.iter().map(|ev| ev.tid).collect::<std::collections::HashSet<_>>().len(),
        if nesting.is_ok() { "ok" } else { "BROKEN" }
    );
    report.record(&[
        ("experiment", Json::S("obs".into())),
        ("check", Json::S("trace".into())),
        ("trace_events", Json::I(events.len() as i64)),
        ("trace_dropped", Json::I(dropped as i64)),
        ("nesting_ok", Json::B(nesting.is_ok())),
    ]);

    // (d) Decision-log reconciliation, pipeline and sequential: every
    // attempt produces exactly one record, and the outcome counts are
    // exact even past the retention bound.
    use DecisionOutcome as O;
    let reconcile = |label: &str, st: &fmsa_core::pass::FmsaStats, report: &mut Report| {
        let d = &st.decisions;
        let mut ok = true;
        let mut check = |what: &str, got: u64, want: u64| {
            if got != want {
                ok = false;
                report.fail(format!("obs: {label} decisions: {what} = {got}, expected {want}"));
            }
        };
        check("total()", d.total(), st.attempted as u64);
        check(
            "Merged+ConflictFallback",
            d.count(O::Merged) + d.count(O::ConflictFallback),
            st.merges as u64,
        );
        if let Some(p) = st.pipeline.as_ref() {
            check("GateSkipped", d.count(O::GateSkipped), p.gate_skipped as u64);
            check("BudgetSkipped", d.count(O::BudgetSkipped), p.budget_skipped as u64);
            check("Quarantined", d.count(O::Quarantined), p.quarantined() as u64);
        }
        ok
    };
    let par_stats = {
        let pcfg = cfg.clone().parallel(4);
        let mut m = base.clone();
        run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options())
    };
    let seq_stats = seq_stats.expect("overhead loop ran");
    let seq_ok = reconcile("sequential", &seq_stats, report);
    let par_ok = reconcile("pipeline", &par_stats, report);
    println!(
        "  decisions: sequential {} records / {} attempts, pipeline {} / {} — {}",
        seq_stats.decisions.total(),
        seq_stats.attempted,
        par_stats.decisions.total(),
        par_stats.attempted,
        if seq_ok && par_ok { "reconciled" } else { "MISMATCH" }
    );
    report.record(&[
        ("experiment", Json::S("obs".into())),
        ("check", Json::S("decisions".into())),
        ("functions", Json::I(n as i64)),
        ("attempted", Json::I(par_stats.attempted as i64)),
        ("decisions_total", Json::I(par_stats.decisions.total() as i64)),
        ("merged", Json::I(par_stats.decisions.count(O::Merged) as i64)),
        ("conflict_fallback", Json::I(par_stats.decisions.count(O::ConflictFallback) as i64)),
        ("unprofitable", Json::I(par_stats.decisions.count(O::Unprofitable) as i64)),
        ("reconciled", Json::B(seq_ok && par_ok)),
    ]);

    // (e) Daemon scrape: boot fmsa-serve, push one corpus through it,
    // then assert the Prometheus exposition carries every family the
    // dashboards depend on and the decision-log endpoint is populated.
    let store_dir = std::env::temp_dir().join(format!("fmsa-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server_cfg = ServerConfig { store_dir: Some(store_dir.clone()), ..ServerConfig::default() };
    match Server::bind(server_cfg).and_then(Server::spawn) {
        Err(e) => report.fail(format!("obs: cannot boot daemon: {e}")),
        Ok(mut server) => {
            let corpus = wasm_fixture_bytes(&WasmFixtureConfig::with_functions(96));
            match client::post(server.addr(), "/v1/modules", &corpus) {
                Ok(r) if r.status == 200 => {}
                Ok(r) => report.fail(format!("obs: daemon upload returned {}", r.status)),
                Err(e) => report.fail(format!("obs: daemon upload failed: {e}")),
            }
            let mut families_ok = true;
            match client::get(server.addr(), "/metrics") {
                Err(e) => report.fail(format!("obs: GET /metrics failed: {e}")),
                Ok(r) => {
                    if r.status != 200 {
                        report.fail(format!("obs: GET /metrics returned {}", r.status));
                    }
                    if !r.header("content-type").is_some_and(|ct| ct.contains("version=0.0.4")) {
                        report
                            .fail("obs: /metrics content-type is not exposition 0.0.4".to_owned());
                    }
                    let body = r.text();
                    for family in [
                        "fmsa_http_requests_total",
                        "fmsa_http_request_duration_seconds_bucket",
                        "fmsa_merge_duration_seconds_bucket",
                        "fmsa_merge_decisions",
                        "fmsa_build_info",
                        "fmsa_store_functions",
                        "fmsa_queue_active_connections",
                        "fmsa_uptime_seconds",
                    ] {
                        if !body.contains(family) {
                            families_ok = false;
                            report.fail(format!("obs: /metrics is missing family {family}"));
                        }
                    }
                    if !body.contains("# TYPE fmsa_http_requests_total counter") {
                        families_ok = false;
                        report.fail(
                            "obs: /metrics lacks the TYPE line for requests_total".to_owned(),
                        );
                    }
                }
            }
            let mut recent_ok = false;
            match client::get(server.addr(), "/v1/merges/recent?n=10") {
                Err(e) => report.fail(format!("obs: GET /v1/merges/recent failed: {e}")),
                Ok(r) => {
                    let body = r.text();
                    recent_ok = r.status == 200
                        && body.contains("\"records\":[")
                        && body.contains("\"total\":");
                    if !recent_ok {
                        report.fail(format!(
                            "obs: /v1/merges/recent malformed (status {})",
                            r.status
                        ));
                    }
                }
            }
            match client::get(server.addr(), "/v1/stats") {
                Err(e) => report.fail(format!("obs: GET /v1/stats failed: {e}")),
                Ok(r) => {
                    let body = r.text();
                    if !(body.contains("\"version\":") && body.contains("\"started_at\":")) {
                        report.fail("obs: /v1/stats lacks build metadata".to_owned());
                    }
                }
            }
            println!(
                "  daemon: /metrics families {}, /v1/merges/recent {}",
                if families_ok { "ok" } else { "MISSING" },
                if recent_ok { "ok" } else { "MALFORMED" }
            );
            report.record(&[
                ("experiment", Json::S("obs".into())),
                ("check", Json::S("daemon".into())),
                ("metrics_families_ok", Json::B(families_ok)),
                ("merges_recent_ok", Json::B(recent_ok)),
            ]);
            server.stop();
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);

    if was_tracing {
        trace::enable();
    }
    println!("(the CI obs-smoke job gates this via --check; see docs/observability.md)");
}
