//! # fmsa-bench — experiment harness (see the `experiments` binary)
//!
//! Library shell for the benchmark harness; the logic lives in
//! `src/bin/experiments.rs` and the Criterion benches under `benches/`.
pub mod harness;
