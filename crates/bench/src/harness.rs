//! Shared experiment harness: runs the three techniques over calibrated
//! benchmark modules and produces the rows of every table/figure in the
//! paper's evaluation (§V). The `experiments` binary is a thin CLI over
//! this module.

use fmsa_core::baselines::{run_identical, run_soa};
use fmsa_core::pass::{run_fmsa, StepTimers};
use fmsa_core::pipeline::{PipelineStats, StatValue};
use fmsa_core::Config;
use fmsa_ir::Module;
use fmsa_target::{reduction_percent, CostModel, TargetArch};
use fmsa_workloads::{add_driver, BenchDesc, DriverConfig};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Outcome of applying one technique to one benchmark on one target.
#[derive(Debug, Clone, Default)]
pub struct TechniqueResult {
    /// Merge operations committed.
    pub merges: usize,
    /// Code-size reduction (percent of the pre-pass module size).
    pub reduction: f64,
    /// Wall-clock time of the merging phase.
    pub time: Duration,
    /// FMSA per-step timers, when applicable.
    pub timers: Option<StepTimers>,
    /// Rank positions of committed merges (Fig. 8 data), when applicable.
    pub rank_positions: Vec<usize>,
}

/// All techniques over one benchmark on one target.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Target evaluated.
    pub arch: TargetArch,
    /// Functions in the module before merging.
    pub fns: usize,
    /// (min, avg, max) function sizes in instructions.
    pub sizes: (usize, f64, usize),
    /// Module size before merging (cost-model bytes).
    pub size_before: u64,
    /// Identical-only result.
    pub identical: TechniqueResult,
    /// Identical + SOA.
    pub soa: TechniqueResult,
    /// Identical + FMSA for each requested threshold, in order.
    pub fmsa: Vec<(usize, TechniqueResult)>,
    /// Identical + FMSA oracle, when requested.
    pub oracle: Option<TechniqueResult>,
    /// Proxy for the baseline (no-merging) compilation time.
    pub baseline_compile: Duration,
}

/// Which techniques to run.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Target architecture.
    pub arch: TargetArch,
    /// FMSA thresholds to evaluate (the paper uses 1, 5, 10).
    pub thresholds: Vec<usize>,
    /// Include the quadratic oracle (skipped for modules above
    /// `oracle_fn_cap`).
    pub oracle: bool,
    /// Function-count cap for oracle runs.
    pub oracle_fn_cap: usize,
    /// Function names excluded from FMSA merging (hot functions, drivers).
    pub exclude: HashSet<String>,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            arch: TargetArch::X86_64,
            thresholds: vec![1, 5, 10],
            oracle: false,
            oracle_fn_cap: 400,
            exclude: HashSet::new(),
        }
    }
}

/// A stand-in for the rest of a `-Os` compilation pipeline (frontend,
/// dozens of middle-end passes, backend): verification plus repeated
/// whole-module scans and linearizations. Deterministic and linear in
/// program size, so overhead ratios (Fig. 12) behave like the paper's.
/// The scan count is calibrated so the merging pass is a modest fraction
/// of a "full compilation", as it is in the paper's LTO pipeline.
pub fn baseline_compile_proxy(module: &Module) -> Duration {
    let t0 = Instant::now();
    let cm = CostModel::new(TargetArch::X86_64);
    let mut acc = 0u64;
    for _ in 0..8 {
        let _ = fmsa_ir::verify_module(module);
        for f in module.func_ids() {
            acc = acc.wrapping_add(fmsa_core::linearize(module.func(f)).len() as u64);
        }
        for _ in 0..40 {
            acc = acc.wrapping_add(cm.module_size(module));
        }
    }
    std::hint::black_box(acc);
    t0.elapsed()
}

/// Runs every technique of `plan` on the benchmark described by `desc`.
pub fn run_benchmark(desc: &BenchDesc, plan: &RunPlan) -> BenchResult {
    let base = desc.build();
    let cm = CostModel::new(plan.arch);
    let size_before = cm.module_size(&base);
    let sizes = base.size_stats();
    let fns = base.func_count();
    let baseline_compile = baseline_compile_proxy(&base);

    // Identical only.
    let identical = {
        let mut m = base.clone();
        let t0 = Instant::now();
        let stats = run_identical(&mut m, plan.arch);
        TechniqueResult {
            merges: stats.merges,
            reduction: reduction_percent(size_before, cm.module_size(&m)),
            time: t0.elapsed(),
            timers: None,
            rank_positions: Vec::new(),
        }
    };
    // Identical + SOA (the paper runs Identical before both, §V-A).
    let soa = {
        let mut m = base.clone();
        let t0 = Instant::now();
        run_identical(&mut m, plan.arch);
        let stats = run_soa(&mut m, plan.arch);
        TechniqueResult {
            merges: stats.merges,
            reduction: reduction_percent(size_before, cm.module_size(&m)),
            time: t0.elapsed(),
            timers: None,
            rank_positions: Vec::new(),
        }
    };
    // Identical + FMSA at each threshold.
    let mut fmsa = Vec::new();
    for &t in &plan.thresholds {
        let mut m = base.clone();
        let t0 = Instant::now();
        run_identical(&mut m, plan.arch);
        let cfg = Config::new().threshold(t).arch(plan.arch).exclude(plan.exclude.iter().cloned());
        let stats = run_fmsa(&mut m, &cfg.fmsa_options());
        fmsa.push((
            t,
            TechniqueResult {
                merges: stats.merges,
                reduction: reduction_percent(size_before, cm.module_size(&m)),
                time: t0.elapsed(),
                timers: Some(stats.timers),
                rank_positions: stats.rank_positions,
            },
        ));
    }
    // Oracle.
    let oracle = (plan.oracle && fns <= plan.oracle_fn_cap).then(|| {
        let mut m = base.clone();
        let t0 = Instant::now();
        run_identical(&mut m, plan.arch);
        let cfg = Config::new().oracle(true).arch(plan.arch).exclude(plan.exclude.iter().cloned());
        let stats = run_fmsa(&mut m, &cfg.fmsa_options());
        TechniqueResult {
            merges: stats.merges,
            reduction: reduction_percent(size_before, cm.module_size(&m)),
            time: t0.elapsed(),
            timers: Some(stats.timers),
            rank_positions: stats.rank_positions,
        }
    });
    BenchResult {
        name: desc.name.to_owned(),
        arch: plan.arch,
        fns,
        sizes,
        size_before,
        identical,
        soa,
        fmsa,
        oracle,
        baseline_compile,
    }
}

/// Runtime-overhead measurement for Fig. 14 and the §V-D case study.
#[derive(Debug, Clone)]
pub struct RuntimeResult {
    /// Benchmark name.
    pub name: String,
    /// Dynamic instructions executed by the driver before merging.
    pub steps_before: u64,
    /// Dynamic instructions after Identical + FMSA.
    pub steps_after: u64,
    /// Dynamic instructions when hot functions were excluded (§V-D).
    pub steps_hot_excluded: u64,
    /// Code-size reduction achieved by the normal FMSA run (percent).
    pub reduction: f64,
    /// Code-size reduction with hot functions excluded.
    pub reduction_hot_excluded: f64,
}

impl RuntimeResult {
    /// Normalized runtime of merged code (1.0 = no overhead).
    pub fn normalized(&self) -> f64 {
        if self.steps_before == 0 {
            return 1.0;
        }
        self.steps_after as f64 / self.steps_before as f64
    }

    /// Normalized runtime with profile-guided hot-function exclusion.
    pub fn normalized_hot_excluded(&self) -> f64 {
        if self.steps_before == 0 {
            return 1.0;
        }
        self.steps_hot_excluded as f64 / self.steps_before as f64
    }
}

/// Runs the Fig. 14 experiment for one benchmark: build a driver, measure
/// dynamic instructions before merging, after plain FMSA, and after
/// profile-guided FMSA that excludes hot functions.
pub fn run_runtime_experiment(desc: &BenchDesc, threshold: usize) -> RuntimeResult {
    let mut base = desc.build();
    let (_, _) = add_driver(&mut base, &DriverConfig::default());
    let cm = CostModel::new(TargetArch::X86_64);
    let size_before = cm.module_size(&base);

    let run_driver = |m: &Module| -> (u64, Vec<String>) {
        let mut interp = fmsa_interp::Interpreter::new(m);
        interp.set_fuel(200_000_000);
        let r = interp.run("__driver", vec![]).expect("driver executes");
        let hot = interp.profile().hot_functions(0.05);
        (r.steps, hot)
    };
    let (steps_before, hot_names) = run_driver(&base);

    let merge_with_exclusions = |exclude: &[String]| -> (u64, f64) {
        let mut m = base.clone();
        run_identical(&mut m, TargetArch::X86_64);
        let cfg = Config::new()
            .threshold(threshold)
            .exclude(exclude.iter().cloned().chain(["__driver".to_owned()]));
        run_fmsa(&mut m, &cfg.fmsa_options());
        let (steps, _) = run_driver(&m);
        (steps, reduction_percent(size_before, cm.module_size(&m)))
    };
    let (steps_after, reduction) = merge_with_exclusions(&[]);
    let (steps_hot_excluded, reduction_hot_excluded) = merge_with_exclusions(&hot_names);
    RuntimeResult {
        name: desc.name.to_owned(),
        steps_before,
        steps_after,
        steps_hot_excluded,
        reduction,
        reduction_hot_excluded,
    }
}

/// A JSON scalar for `BENCH_ci.json` lines (hand-rolled: the workspace
/// is offline and the records are flat).
#[derive(Debug, Clone)]
pub enum Json {
    /// A string value.
    S(String),
    /// A float value (NaN/infinite rendered as `null`).
    F(f64),
    /// An integer value.
    I(i64),
    /// A boolean value.
    B(bool),
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one flat JSON object from field/value pairs.
pub fn json_object(fields: &[(&str, Json)]) -> String {
    let mut out = String::from("{");
    for (k, (name, v)) in fields.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", json_escape(name)));
        match v {
            Json::S(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
            Json::F(f) if f.is_finite() => out.push_str(&format!("{f:.6}")),
            Json::F(_) => out.push_str("null"),
            Json::I(i) => out.push_str(&i.to_string()),
            Json::B(b) => out.push_str(&b.to_string()),
        }
    }
    out.push('}');
    out
}

/// Collects benchmark result lines (JSON-lines file) and parity-budget
/// violations for the CI gate.
#[derive(Debug, Default)]
pub struct Report {
    /// Target path for JSON lines (`--json`); buffered until [`Report::flush`].
    pub json_path: Option<String>,
    lines: Vec<String>,
    failures: Vec<String>,
}

impl Report {
    /// A report writing JSON lines to `path` (or discarding them).
    pub fn new(json_path: Option<String>) -> Report {
        Report { json_path, ..Report::default() }
    }

    /// Records one result line.
    pub fn record(&mut self, fields: &[(&str, Json)]) {
        self.lines.push(json_object(fields));
    }

    /// Records a budget violation (reported and, under `--check`, fatal).
    pub fn fail(&mut self, msg: impl Into<String>) {
        let msg = msg.into();
        eprintln!("BUDGET VIOLATION: {msg}");
        self.failures.push(msg);
    }

    /// Budget violations recorded so far.
    pub fn failures(&self) -> &[String] {
        &self.failures
    }

    /// Writes the JSON lines out (append: several subcommands can share
    /// one artifact file across processes).
    pub fn flush(&self) -> std::io::Result<()> {
        let Some(path) = &self.json_path else { return Ok(()) };
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        for l in &self.lines {
            writeln!(f, "{l}")?;
        }
        Ok(())
    }
}

/// The canonical [`PipelineStats`] → JSON field mapping. Every
/// serializer of pipeline counters (`experiments merge-parallel
/// --json`, `experiments scale --json`, `fmsa_opt --stats`) goes
/// through this one function, so a counter added to
/// [`PipelineStats::fields`] can never drift out of any output.
pub fn pipeline_json_fields(p: &PipelineStats) -> Vec<(&'static str, Json)> {
    p.fields()
        .into_iter()
        .map(|(name, v)| {
            let j = match v {
                StatValue::Count(c) => Json::I(c as i64),
                StatValue::Secs(s) | StatValue::Ratio(s) => Json::F(s),
            };
            (name, j)
        })
        .collect()
}

/// Renders the canonical field list as `key=value` text, `per_line`
/// fields per line — the `--stats` human form of the same vocabulary.
pub fn pipeline_stats_text(p: &PipelineStats, per_line: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for (i, (name, v)) in p.fields().into_iter().enumerate() {
        if i > 0 && i % per_line.max(1) == 0 {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        match v {
            StatValue::Count(c) => line.push_str(&format!("{name}={c}")),
            StatValue::Secs(s) => line.push_str(&format!("{name}={s:.3}")),
            StatValue::Ratio(r) if r.is_finite() => line.push_str(&format!("{name}={r:.4}")),
            StatValue::Ratio(_) => line.push_str(&format!("{name}=n/a")),
        }
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

/// Arithmetic mean, used for the summary rows of Figs. 10-12.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Cumulative distribution of rank positions (Fig. 8): `cdf[k]` is the
/// fraction of merges whose winning candidate was at position ≤ k+1.
pub fn rank_cdf(positions: &[usize], max_rank: usize) -> Vec<f64> {
    let total = positions.len().max(1) as f64;
    (1..=max_rank).map(|k| positions.iter().filter(|&&p| p <= k).count() as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_desc() -> BenchDesc {
        fmsa_workloads::spec_suite()
            .into_iter()
            .find(|d| d.name == "462.libquantum")
            .expect("libquantum in suite")
    }

    #[test]
    fn full_benchmark_run_produces_ordered_results() {
        let desc = small_desc();
        let plan = RunPlan { thresholds: vec![1, 10], oracle: true, ..RunPlan::default() };
        let r = run_benchmark(&desc, &plan);
        // The paper's headline ordering: FMSA >= SOA >= Identical.
        let fmsa10 = &r.fmsa.iter().find(|(t, _)| *t == 10).expect("t=10 run").1;
        assert!(
            fmsa10.reduction >= r.soa.reduction - 1e-9,
            "FMSA {:?} vs SOA {:?}",
            fmsa10.reduction,
            r.soa.reduction
        );
        assert!(r.soa.reduction >= r.identical.reduction - 1e-9);
        assert!(fmsa10.reduction > 0.0, "libquantum-like module must shrink");
        // Oracle at least matches the greedy threshold runs.
        let oracle = r.oracle.expect("oracle requested and small enough");
        assert!(oracle.reduction >= fmsa10.reduction - 1e-6);
    }

    #[test]
    fn rank_cdf_shape() {
        let cdf = rank_cdf(&[1, 1, 1, 2, 5], 5);
        assert!((cdf[0] - 0.6).abs() < 1e-9);
        assert!((cdf[1] - 0.8).abs() < 1e-9);
        assert!((cdf[4] - 1.0).abs() < 1e-9);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "CDF is monotone");
    }

    #[test]
    fn runtime_experiment_overhead_is_bounded() {
        let desc = small_desc();
        let r = run_runtime_experiment(&desc, 1);
        assert!(r.steps_before > 0);
        // Merged code may be a bit slower but not catastrophically.
        assert!(r.normalized() < 1.5, "{r:?}");
        // Profile-guided exclusion should not be slower than plain FMSA.
        assert!(r.normalized_hot_excluded() <= r.normalized() + 0.05, "{r:?}");
    }
}
