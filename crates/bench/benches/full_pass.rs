//! Criterion end-to-end benchmarks: the three techniques over a calibrated
//! benchmark module, plus the interpreter throughput that Fig. 14 depends
//! on.

use criterion::{criterion_group, criterion_main, Criterion};
use fmsa_core::baselines::{run_identical, run_soa};
use fmsa_core::pass::run_fmsa;
use fmsa_core::Config;
use fmsa_target::TargetArch;
use fmsa_workloads::spec_suite;

fn libquantum_module() -> fmsa_ir::Module {
    spec_suite()
        .into_iter()
        .find(|d| d.name == "462.libquantum")
        .expect("libquantum in suite")
        .build()
}

fn milc_module() -> fmsa_ir::Module {
    spec_suite().into_iter().find(|d| d.name == "433.milc").expect("milc in suite").build()
}

fn bench_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("full-pass-milc");
    group.sample_size(10);
    group.bench_function("identical", |b| {
        b.iter_batched(
            milc_module,
            |mut m| run_identical(&mut m, TargetArch::X86_64),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("soa", |b| {
        b.iter_batched(
            milc_module,
            |mut m| run_soa(&mut m, TargetArch::X86_64),
            criterion::BatchSize::SmallInput,
        );
    });
    for t in [1usize, 10] {
        group.bench_function(format!("fmsa-t{t}"), |b| {
            b.iter_batched(
                milc_module,
                |mut m| run_fmsa(&mut m, &Config::new().threshold(t).fmsa_options()),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("fmsa-oracle", |b| {
        b.iter_batched(
            libquantum_module, // oracle is quadratic; use the small module
            |mut m| run_fmsa(&mut m, &Config::new().oracle(true).fmsa_options()),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut m = libquantum_module();
    let (_, _) = fmsa_workloads::add_driver(&mut m, &fmsa_workloads::DriverConfig::default());
    c.bench_function("interpreter/libquantum-driver", |b| {
        b.iter(|| {
            let mut interp = fmsa_interp::Interpreter::new(&m);
            interp.set_fuel(50_000_000);
            interp.run("__driver", vec![]).expect("driver runs")
        });
    });
}

criterion_group!(benches, bench_techniques, bench_interpreter);
criterion_main!(benches);
