//! Criterion benchmarks for the candidate-search subsystem: exact pairwise
//! ranking vs MinHash/LSH shortlisting at increasing module sizes, as both
//! a per-query microbenchmark and a whole-index build.
//!
//! The quadratic→near-linear crossover shows up as the "all-queries" exact
//! numbers growing ~n² while the LSH numbers grow ~n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmsa_core::fingerprint::Fingerprint;
use fmsa_core::search::{CandidateSearch, ExactSearch, LshConfig, LshSearch};
use fmsa_ir::{FuncId, Module};
use fmsa_workloads::{clone_swarm_module, SwarmConfig};
use std::collections::HashMap;

fn swarm_fingerprints(functions: usize) -> (Module, Vec<FuncId>, HashMap<FuncId, Fingerprint>) {
    let m = clone_swarm_module(&SwarmConfig::with_functions(functions));
    let ids = m.func_ids();
    let fps = ids.iter().map(|&f| (f, Fingerprint::of(&m, f))).collect();
    (m, ids, fps)
}

fn build_index<S: CandidateSearch>(
    mut index: S,
    ids: &[FuncId],
    fps: &HashMap<FuncId, Fingerprint>,
) -> S {
    for &f in ids {
        index.insert(f, &fps[&f]);
    }
    index
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("search-build");
    for &n in &[100usize, 1000, 5000] {
        let (_m, ids, fps) = swarm_fingerprints(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| build_index(ExactSearch::new(), &ids, &fps).len());
        });
        group.bench_with_input(BenchmarkId::new("lsh", n), &n, |b, _| {
            b.iter(|| build_index(LshSearch::new(LshConfig::default()), &ids, &fps).len());
        });
    }
    group.finish();
}

fn bench_all_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("search-all-queries-top10");
    for &n in &[100usize, 1000, 5000] {
        let (_m, ids, fps) = swarm_fingerprints(n);
        let exact = build_index(ExactSearch::new(), &ids, &fps);
        let lsh = build_index(LshSearch::new(LshConfig::default()), &ids, &fps);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| {
                ids.iter()
                    .map(|&f| exact.candidates(f, &fps[&f], &fps, 10, 0.0).len())
                    .sum::<usize>()
            });
        });
        group.bench_with_input(BenchmarkId::new("lsh", n), &n, |b, _| {
            b.iter(|| {
                ids.iter().map(|&f| lsh.candidates(f, &fps[&f], &fps, 10, 0.0).len()).sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_incremental_update(c: &mut Criterion) {
    // The feedback-loop operation: remove two functions, insert one.
    let (_m, ids, fps) = swarm_fingerprints(1000);
    let mut group = c.benchmark_group("search-update");
    group.bench_function("lsh-remove2-insert1", |b| {
        let mut lsh = build_index(LshSearch::new(LshConfig::default()), &ids, &fps);
        let (a, z) = (ids[0], ids[1]);
        b.iter(|| {
            lsh.remove(a);
            lsh.remove(z);
            lsh.insert(a, &fps[&a]);
            lsh.insert(z, &fps[&z]);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_all_queries, bench_incremental_update);
criterion_main!(benches);
