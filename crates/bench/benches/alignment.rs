//! Criterion microbenchmarks for the sequence-alignment kernels — the
//! component that dominates FMSA's compile time (paper Fig. 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmsa_align::{hirschberg, needleman_wunsch, smith_waterman, ScoringScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_seq(seed: u64, len: usize, alphabet: u8) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
}

fn bench_alignment(c: &mut Criterion) {
    let scheme = ScoringScheme::default();
    let mut group = c.benchmark_group("alignment");
    for &len in &[64usize, 256, 1024] {
        let a = random_seq(1, len, 12);
        let b = random_seq(2, len, 12);
        group.bench_with_input(BenchmarkId::new("needleman-wunsch", len), &len, |bch, _| {
            bch.iter(|| needleman_wunsch(&a, &b, |x, y| x == y, &scheme));
        });
        group.bench_with_input(BenchmarkId::new("hirschberg", len), &len, |bch, _| {
            bch.iter(|| hirschberg(&a, &b, |x, y| x == y, &scheme));
        });
        group.bench_with_input(BenchmarkId::new("smith-waterman", len), &len, |bch, _| {
            bch.iter(|| smith_waterman(&a, &b, |x, y| x == y, &scheme));
        });
    }
    group.finish();
}

fn bench_alignment_similar_inputs(c: &mut Criterion) {
    // Near-identical sequences — the common case for ranked candidates.
    let scheme = ScoringScheme::default();
    let a = random_seq(3, 512, 12);
    let mut b = a.clone();
    for k in (0..b.len()).step_by(17) {
        b[k] = b[k].wrapping_add(1);
    }
    c.bench_function("alignment/nw-near-identical-512", |bch| {
        bch.iter(|| needleman_wunsch(&a, &b, |x, y| x == y, &scheme));
    });
}

criterion_group!(benches, bench_alignment, bench_alignment_similar_inputs);
criterion_main!(benches);
