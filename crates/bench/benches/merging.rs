//! Criterion microbenchmarks for the merge pipeline pieces: fingerprinting,
//! ranking, linearization, and whole-pair merging (paper Fig. 13's step
//! breakdown, measured microscopically).

use criterion::{criterion_group, criterion_main, Criterion};
use fmsa_core::fingerprint::Fingerprint;
use fmsa_core::linearize::linearize;
use fmsa_core::merge::{merge_pair, MergeConfig};
use fmsa_core::ranking::rank_candidates;
use fmsa_ir::Module;
use fmsa_workloads::{generate_function, GenConfig, Variant};

fn module_with(n: usize, size: usize) -> Module {
    let mut m = Module::new("bench");
    let cfg = GenConfig { target_size: size, ..GenConfig::default() };
    for k in 0..n {
        generate_function(&mut m, &format!("f{k}"), 1000 + k as u64, &cfg, &Variant::exact());
    }
    m
}

fn bench_fingerprint(c: &mut Criterion) {
    let m = module_with(1, 200);
    let f = m.func_ids()[0];
    c.bench_function("fingerprint/200-inst-function", |b| {
        b.iter(|| Fingerprint::of(&m, f));
    });
    let fp1 = Fingerprint::of(&m, f);
    let fp2 = fp1.clone();
    c.bench_function("fingerprint/similarity", |b| {
        b.iter(|| fp1.similarity(&fp2));
    });
}

fn bench_ranking(c: &mut Criterion) {
    let m = module_with(200, 40);
    let ids = m.func_ids();
    let pool: Vec<_> = ids.iter().map(|&f| (f, Fingerprint::of(&m, f))).collect();
    let subject = ids[0];
    let sfp = Fingerprint::of(&m, subject);
    c.bench_function("ranking/top-10-of-200", |b| {
        b.iter(|| rank_candidates(subject, &sfp, pool.iter().map(|(f, fp)| (*f, fp)), 10, 0.0));
    });
}

fn bench_linearize(c: &mut Criterion) {
    let m = module_with(1, 300);
    let f = m.func_ids()[0];
    c.bench_function("linearize/300-inst-function", |b| {
        b.iter(|| linearize(m.func(f)));
    });
}

fn bench_merge_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge-pair");
    for (label, variant) in [
        ("exact", Variant::exact()),
        ("body", Variant::body(3)),
        ("typed", Variant::typed(false, true)),
        ("cfg", Variant::cfg(2)),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut m = Module::new("pair");
                    let cfg = GenConfig { target_size: 80, ..GenConfig::default() };
                    let fa = generate_function(&mut m, "a", 77, &cfg, &Variant::exact());
                    let fb = generate_function(&mut m, "b", 77, &cfg, &variant);
                    (m, fa, fb)
                },
                |(mut m, fa, fb)| {
                    merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merges")
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fingerprint, bench_ranking, bench_linearize, bench_merge_pair);
criterion_main!(benches);
