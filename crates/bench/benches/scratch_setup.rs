//! Criterion benchmarks for speculative scratch-module setup: the cost of
//! seeding a `ScratchModule`'s type store from a donor, comparing the
//! historical deep clone (never-frozen donor) against the copy-on-write
//! share (donor frozen at schedule time, as the pipeline does once per
//! generation).
//!
//! The pipeline builds one scratch module per speculative merge — tens of
//! thousands per pass at the 5 000-function scale — so setup cost must
//! not scale with the interned-type count. The `cow-` rows should stay
//! flat at 100/1 000/5 000 types while the `cloned-` rows grow linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmsa_ir::{Module, ScratchModule, TypeStore};

/// A store with `n` distinct composite types beyond the primitives (a
/// pointer chain, so every entry is structurally unique).
fn store_with_types(n: usize) -> TypeStore {
    let mut ts = TypeStore::new();
    let mut ty = ts.i64();
    for _ in 0..n {
        ty = ts.ptr(ty);
    }
    ts
}

fn bench_store_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("scratch-setup-store-clone");
    for &n in &[100usize, 1000, 5000] {
        let cold = store_with_types(n);
        assert_eq!(cold.frozen_len(), 0, "unfrozen donor clones everything");
        group.bench_with_input(BenchmarkId::new("cloned", n), &n, |b, _| {
            b.iter(|| cold.clone().len());
        });
        let mut frozen = store_with_types(n);
        frozen.freeze();
        assert!(frozen.is_fully_frozen());
        group.bench_with_input(BenchmarkId::new("cow", n), &n, |b, _| {
            b.iter(|| frozen.clone().len());
        });
    }
    group.finish();
}

fn bench_scratch_module_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("scratch-setup-module-new");
    for &n in &[100usize, 1000, 5000] {
        let mut donor = Module::new("donor");
        let mut ty = donor.types.i64();
        for _ in 0..n {
            ty = donor.types.ptr(ty);
        }
        group.bench_with_input(BenchmarkId::new("cloned", n), &n, |b, _| {
            b.iter(|| {
                let s = ScratchModule::new(&donor);
                assert!(!s.setup().is_fully_shared());
                s.setup().cloned_types
            });
        });
        donor.types.freeze();
        group.bench_with_input(BenchmarkId::new("cow", n), &n, |b, _| {
            b.iter(|| {
                let s = ScratchModule::new(&donor);
                assert!(s.setup().is_fully_shared());
                s.setup().shared_types
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_clone, bench_scratch_module_new);
criterion_main!(benches);
