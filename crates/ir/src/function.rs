//! Functions and basic blocks.
//!
//! A [`Function`] owns two arenas (blocks, instructions) plus the block
//! layout order. Instructions and blocks are tombstoned on removal so ids
//! remain stable — important because [`crate::Value`]s embed them.

use crate::inst::{Inst, Opcode};
use crate::types::{TyId, TypeStore};
use crate::value::{BlockId, InstId, Value};

/// Linkage of a function, controlling whether the optimizer may assume it
/// sees every call site (paper §IV: external linkage prevents deleting the
/// original function after merging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Visible only inside this module; all call sites are known.
    #[default]
    Internal,
    /// Potentially referenced from outside the module.
    External,
}

/// A formal parameter of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: TyId,
    /// Optional name used by the printer.
    pub name: String,
}

/// A basic block: an ordered list of instructions ending in a terminator.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Label used by the printer.
    pub name: String,
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
}

/// A function definition (or declaration, when it has no blocks).
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Linkage; see [`Linkage`].
    pub linkage: Linkage,
    /// Whether the function's address escapes (indirect calls possible).
    /// Address-taken functions cannot be deleted after merging (§III-A).
    pub address_taken: bool,
    fn_ty: TyId,
    params: Vec<Param>,
    blocks: Vec<Option<Block>>,
    insts: Vec<Option<Inst>>,
    layout: Vec<BlockId>,
}

impl Function {
    /// Creates an empty function with signature `fn_ty` (must be a
    /// `Type::Func` in `types`). Parameters are named `a0, a1, ...`.
    ///
    /// # Panics
    ///
    /// Panics if `fn_ty` is not a function type.
    pub fn new(name: impl Into<String>, fn_ty: TyId, types: &TypeStore) -> Function {
        let params = types
            .fn_params(fn_ty)
            .expect("Function::new requires a function type")
            .iter()
            .enumerate()
            .map(|(i, &ty)| Param { ty, name: format!("a{i}") })
            .collect();
        Function {
            name: name.into(),
            linkage: Linkage::Internal,
            address_taken: false,
            fn_ty,
            params,
            blocks: Vec::new(),
            insts: Vec::new(),
            layout: Vec::new(),
        }
    }

    /// The function's signature type.
    pub fn fn_ty(&self) -> TyId {
        self.fn_ty
    }

    /// Replaces the signature type id without touching the parameter list.
    /// Used by [`crate::transplant`] when a function moves between modules
    /// and its types are re-interned into the destination store; the caller
    /// is responsible for remapping the parameter types to match.
    pub(crate) fn set_fn_ty(&mut self, fn_ty: TyId) {
        self.fn_ty = fn_ty;
    }

    /// Return type of the function.
    pub fn ret_ty(&self, types: &TypeStore) -> TyId {
        types.fn_ret(self.fn_ty).expect("fn_ty is a function type")
    }

    /// Formal parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Mutable access to the formal parameters (for renaming; changing a
    /// parameter's type without updating `fn_ty` leaves the function
    /// inconsistent).
    pub fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Whether this is a declaration (no body).
    pub fn is_declaration(&self) -> bool {
        self.layout.is_empty()
    }

    /// Appends a new empty block to the layout.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Some(Block { name: name.into(), insts: Vec::new() }));
        self.layout.push(id);
        id
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics on declarations.
    pub fn entry(&self) -> BlockId {
        *self.layout.first().expect("function has a body")
    }

    /// Block ids in layout order (entry first).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.layout.iter().copied()
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.layout.len()
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block was removed.
    pub fn block(&self, id: BlockId) -> &Block {
        self.blocks[id.index()].as_ref().expect("live block")
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block was removed.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.blocks[id.index()].as_mut().expect("live block")
    }

    /// Whether `id` refers to a block that has not been removed.
    pub fn is_live_block(&self, id: BlockId) -> bool {
        self.blocks.get(id.index()).is_some_and(Option::is_some)
    }

    /// Appends `inst` to `block` and returns its id.
    pub fn append_inst(&mut self, block: BlockId, mut inst: Inst) -> InstId {
        inst.parent = block;
        let id = InstId::from_index(self.insts.len());
        self.insts.push(Some(inst));
        self.block_mut(block).insts.push(id);
        id
    }

    /// Inserts `inst` into `block` at position `pos` (0 = first).
    ///
    /// # Panics
    ///
    /// Panics if `pos > block.insts.len()`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, mut inst: Inst) -> InstId {
        inst.parent = block;
        let id = InstId::from_index(self.insts.len());
        self.insts.push(Some(inst));
        self.block_mut(block).insts.insert(pos, id);
        id
    }

    /// Inserts `inst` immediately before `before` in the same block.
    ///
    /// # Panics
    ///
    /// Panics if `before` is not in a live block.
    pub fn insert_before(&mut self, before: InstId, inst: Inst) -> InstId {
        let block = self.inst(before).parent;
        let pos = self
            .block(block)
            .insts
            .iter()
            .position(|&i| i == before)
            .expect("instruction present in its parent block");
        self.insert_inst(block, pos, inst)
    }

    /// Shared access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction was removed.
    pub fn inst(&self, id: InstId) -> &Inst {
        self.insts[id.index()].as_ref().expect("live instruction")
    }

    /// Mutable access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction was removed.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        self.insts[id.index()].as_mut().expect("live instruction")
    }

    /// Whether `id` refers to an instruction that has not been removed.
    pub fn is_live_inst(&self, id: InstId) -> bool {
        self.insts.get(id.index()).is_some_and(Option::is_some)
    }

    /// Removes `inst` from its block and tombstones it.
    pub fn remove_inst(&mut self, id: InstId) {
        if let Some(inst) = self.insts[id.index()].take() {
            if let Some(Some(block)) = self.blocks.get_mut(inst.parent.index()) {
                block.insts.retain(|&i| i != id);
            }
        }
    }

    /// Removes `block` (and all its instructions) from the function.
    pub fn remove_block(&mut self, id: BlockId) {
        if let Some(block) = self.blocks[id.index()].take() {
            for inst in block.insts {
                self.insts[inst.index()] = None;
            }
            self.layout.retain(|&b| b != id);
        }
    }

    /// Deletes the whole body, turning the function into a declaration.
    pub fn clear_body(&mut self) {
        self.blocks.clear();
        self.insts.clear();
        self.layout.clear();
    }

    /// Ids of live instructions, in layout/block order.
    pub fn inst_ids(&self) -> Vec<InstId> {
        let mut out = Vec::new();
        for b in &self.layout {
            out.extend(self.block(*b).insts.iter().copied());
        }
        out
    }

    /// Number of live instructions (the paper's "function size").
    pub fn inst_count(&self) -> usize {
        self.layout.iter().map(|&b| self.block(b).insts.len()).sum()
    }

    /// The terminator of `block`, if the block is non-empty and ends in one.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = *self.block(block).insts.last()?;
        self.inst(last).is_terminator().then_some(last)
    }

    /// Successor blocks of `block`.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).successors(),
            None => Vec::new(),
        }
    }

    /// Replaces every operand equal to `from` with `to`, everywhere in the
    /// body. Also rewrites φ incoming blocks when `from`/`to` are labels.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        for slot in self.insts.iter_mut().flatten() {
            for op in &mut slot.operands {
                if *op == from {
                    *op = to;
                }
            }
            if let (Value::Block(fb), Value::Block(tb)) = (from, to) {
                if let crate::inst::ExtraData::Phi { incoming } = &mut slot.extra {
                    for b in incoming.iter_mut() {
                        if *b == fb {
                            *b = tb;
                        }
                    }
                }
            }
        }
    }

    /// Type of a value in the context of this function.
    ///
    /// # Panics
    ///
    /// Panics if the value is a parameter index out of range or an
    /// instruction id that was removed.
    pub fn value_ty(&self, v: Value, types: &TypeStore) -> TyId {
        match v {
            Value::Inst(i) => self.inst(i).ty,
            Value::Param(p) => self.params[p as usize].ty,
            Value::Block(_) => types.label(),
            Value::Func(_) => {
                // The caller should consult the module for the precise
                // signature; as an operand a function behaves like a pointer.
                types.label()
            }
            Value::ConstInt { ty, .. }
            | Value::ConstFloat { ty, .. }
            | Value::ConstNull(ty)
            | Value::Undef(ty) => ty,
        }
    }

    /// Whether `block` is a landing block (starts with `landingpad`).
    pub fn is_landing_block(&self, block: BlockId) -> bool {
        self.block(block).insts.first().is_some_and(|&i| self.inst(i).opcode == Opcode::LandingPad)
    }

    /// Moves `block` to the end of the layout order (used by codegen to
    /// keep diamond shapes readable; semantics are unaffected).
    pub fn move_block_to_end(&mut self, block: BlockId) {
        self.layout.retain(|&b| b != block);
        self.layout.push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{ExtraData, Inst, Opcode};
    use crate::types::TypeStore;

    fn sample() -> (TypeStore, Function) {
        let mut ts = TypeStore::new();
        let fn_ty = ts.func(ts.i32(), vec![ts.i32(), ts.i32()]);
        let f = Function::new("f", fn_ty, &ts);
        (ts, f)
    }

    #[test]
    fn new_function_has_named_params() {
        let (ts, f) = sample();
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.params()[0].name, "a0");
        assert_eq!(f.ret_ty(&ts), ts.i32());
        assert!(f.is_declaration());
    }

    #[test]
    fn append_and_count() {
        let (ts, mut f) = sample();
        let b = f.add_block("entry");
        assert!(!f.is_declaration());
        let add = f.append_inst(
            b,
            Inst::new(Opcode::Add, ts.i32(), vec![Value::Param(0), Value::Param(1)]),
        );
        f.append_inst(b, Inst::new(Opcode::Ret, ts.void(), vec![Value::Inst(add)]));
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.block_count(), 1);
        assert_eq!(f.inst(add).parent, b);
        assert_eq!(f.terminator(b).map(|t| f.inst(t).opcode), Some(Opcode::Ret));
    }

    #[test]
    fn insert_before_preserves_order() {
        let (ts, mut f) = sample();
        let b = f.add_block("entry");
        let ret = f.append_inst(b, Inst::new(Opcode::Ret, ts.void(), vec![Value::Param(0)]));
        let add = f.insert_before(
            ret,
            Inst::new(Opcode::Add, ts.i32(), vec![Value::Param(0), Value::Param(1)]),
        );
        assert_eq!(f.block(b).insts, vec![add, ret]);
    }

    #[test]
    fn remove_inst_tombstones() {
        let (ts, mut f) = sample();
        let b = f.add_block("entry");
        let add = f.append_inst(
            b,
            Inst::new(Opcode::Add, ts.i32(), vec![Value::Param(0), Value::Param(1)]),
        );
        f.append_inst(b, Inst::new(Opcode::Ret, ts.void(), vec![Value::Param(0)]));
        f.remove_inst(add);
        assert!(!f.is_live_inst(add));
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn replace_all_uses_rewrites_operands_and_phis() {
        let (ts, mut f) = sample();
        let b0 = f.add_block("b0");
        let b1 = f.add_block("b1");
        let phi = f.append_inst(
            b1,
            Inst::with_extra(
                Opcode::Phi,
                ts.i32(),
                vec![Value::Param(0)],
                ExtraData::Phi { incoming: vec![b0] },
            ),
        );
        f.append_inst(b1, Inst::new(Opcode::Ret, ts.void(), vec![Value::Inst(phi)]));
        let b2 = f.add_block("b2");
        f.replace_all_uses(Value::Block(b0), Value::Block(b2));
        match &f.inst(phi).extra {
            ExtraData::Phi { incoming } => assert_eq!(incoming, &vec![b2]),
            _ => panic!("phi extra"),
        }
        f.replace_all_uses(Value::Param(0), Value::ConstInt { ty: ts.i32(), bits: 5 });
        assert_eq!(f.inst(phi).operands[0], Value::ConstInt { ty: ts.i32(), bits: 5 });
    }

    #[test]
    fn remove_block_drops_instructions() {
        let (ts, mut f) = sample();
        let b0 = f.add_block("b0");
        let b1 = f.add_block("b1");
        let i = f.append_inst(b1, Inst::new(Opcode::Ret, ts.void(), vec![]));
        f.append_inst(b0, Inst::new(Opcode::Br, ts.void(), vec![Value::Block(b1)]));
        f.remove_block(b1);
        assert!(!f.is_live_block(b1));
        assert!(!f.is_live_inst(i));
        assert_eq!(f.block_count(), 1);
    }

    #[test]
    fn successors_via_terminator() {
        let (ts, mut f) = sample();
        let b0 = f.add_block("b0");
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        f.append_inst(
            b0,
            Inst::new(
                Opcode::CondBr,
                ts.void(),
                vec![Value::Param(0), Value::Block(b1), Value::Block(b2)],
            ),
        );
        assert_eq!(f.successors(b0), vec![b1, b2]);
        assert!(f.successors(b1).is_empty());
    }
}
