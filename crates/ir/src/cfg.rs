//! Control-flow-graph utilities: predecessors, reachability, and the
//! reverse post-order traversal used by FMSA's linearization (§III-B).

use crate::function::Function;
use crate::value::BlockId;
use std::collections::HashMap;

/// Predecessor map of a function's CFG.
#[derive(Debug, Clone, Default)]
pub struct Predecessors {
    map: HashMap<BlockId, Vec<BlockId>>,
}

impl Predecessors {
    /// Computes predecessors of every live block of `f`.
    pub fn compute(f: &Function) -> Predecessors {
        let mut map: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in f.block_ids() {
            map.entry(b).or_default();
        }
        for b in f.block_ids() {
            for s in f.successors(b) {
                map.entry(s).or_default().push(b);
            }
        }
        Predecessors { map }
    }

    /// Predecessors of `b` (empty slice if it has none).
    pub fn of(&self, b: BlockId) -> &[BlockId] {
        self.map.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of predecessors of `b`.
    pub fn count(&self, b: BlockId) -> usize {
        self.of(b).len()
    }
}

/// Computes the reverse post-order of the blocks reachable from the entry.
///
/// Successors are visited in a canonical order (the operand order of the
/// terminator) so the traversal — and therefore the linearization the
/// merger aligns — is deterministic, as required by §III-B of the paper
/// ("a reverse post-order traversal with a canonical ordering of successor
/// basic blocks").
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    if f.is_declaration() {
        return Vec::new();
    }
    let entry = f.entry();
    let mut visited: Vec<bool> = Vec::new();
    let mut post: Vec<BlockId> = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    mark(&mut visited, entry);
    while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
        let succs = f.successors(b);
        if *idx < succs.len() {
            // Visit successors in reverse operand order so the *first*
            // successor ends up first in the final reverse post-order.
            let s = succs[succs.len() - 1 - *idx];
            *idx += 1;
            if f.is_live_block(s) && !is_marked(&visited, s) {
                mark(&mut visited, s);
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator tree of a function's CFG (Cooper-Harvey-Kennedy
/// iterative algorithm over the reverse post-order).
#[derive(Debug, Clone)]
pub struct Dominators {
    rpo_index: HashMap<BlockId, usize>,
    idom: HashMap<BlockId, BlockId>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for the reachable blocks of `f`.
    ///
    /// # Panics
    ///
    /// Panics on declarations.
    pub fn compute(f: &Function) -> Dominators {
        let rpo = reverse_post_order(f);
        let entry = f.entry();
        let mut rpo_index = HashMap::new();
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index.insert(b, i);
        }
        let preds = Predecessors::compute(f);
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.of(b) {
                    if !idom.contains_key(&p) {
                        continue; // predecessor not yet processed/unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { rpo_index, idom, entry }
    }

    /// Whether block `a` dominates block `b` (reflexive). Unreachable
    /// blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.rpo_index.contains_key(&a) || !self.rpo_index.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom.get(&b).copied()
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Blocks unreachable from the entry, in layout order.
pub fn unreachable_blocks(f: &Function) -> Vec<BlockId> {
    let reachable: std::collections::HashSet<BlockId> = reverse_post_order(f).into_iter().collect();
    f.block_ids().filter(|b| !reachable.contains(b)).collect()
}

fn mark(visited: &mut Vec<bool>, b: BlockId) {
    let i = b.index();
    if visited.len() <= i {
        visited.resize(i + 1, false);
    }
    visited[i] = true;
}

fn is_marked(visited: &[bool], b: BlockId) -> bool {
    visited.get(b.index()).copied().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::Module;
    use crate::value::Value;

    /// entry -> (then, else) -> join ; plus one unreachable block.
    fn diamond() -> (Module, crate::value::FuncId, Vec<BlockId>) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![m.types.i1()]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let then_b = b.block("then");
        let else_b = b.block("else");
        let join = b.block("join");
        let dead = b.block("dead");
        b.switch_to(entry);
        b.condbr(Value::Param(0), then_b, else_b);
        b.switch_to(then_b);
        b.br(join);
        b.switch_to(else_b);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(b.const_i32(0)));
        b.switch_to(dead);
        b.ret(Some(b.const_i32(1)));
        (m, f, vec![entry, then_b, else_b, join, dead])
    }

    #[test]
    fn rpo_of_diamond() {
        let (m, f, blocks) = diamond();
        let rpo = reverse_post_order(m.func(f));
        let [entry, then_b, else_b, join, dead] = blocks[..] else { unreachable!() };
        assert_eq!(rpo.first(), Some(&entry));
        assert!(!rpo.contains(&dead), "unreachable block excluded");
        // join comes after both branches.
        let pos = |b| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(join) > pos(then_b));
        assert!(pos(join) > pos(else_b));
        // Canonical order: then before else (operand order).
        assert!(pos(then_b) < pos(else_b));
    }

    #[test]
    fn rpo_is_deterministic() {
        let (m, f, _) = diamond();
        let a = reverse_post_order(m.func(f));
        let b = reverse_post_order(m.func(f));
        assert_eq!(a, b);
    }

    #[test]
    fn predecessors_of_join() {
        let (m, f, blocks) = diamond();
        let preds = Predecessors::compute(m.func(f));
        let [entry, then_b, else_b, join, _] = blocks[..] else { unreachable!() };
        assert_eq!(preds.count(entry), 0);
        let mut pj = preds.of(join).to_vec();
        pj.sort();
        let mut expect = vec![then_b, else_b];
        expect.sort();
        assert_eq!(pj, expect);
    }

    #[test]
    fn unreachable_detection() {
        let (m, f, blocks) = diamond();
        let dead = blocks[4];
        assert_eq!(unreachable_blocks(m.func(f)), vec![dead]);
    }

    #[test]
    fn dominators_of_diamond() {
        let (m, f, blocks) = diamond();
        let dom = Dominators::compute(m.func(f));
        let [entry, then_b, else_b, join, dead] = blocks[..] else { unreachable!() };
        assert!(dom.dominates(entry, join));
        assert!(dom.dominates(entry, then_b));
        assert!(!dom.dominates(then_b, join), "one branch arm does not dominate the join");
        assert!(!dom.dominates(else_b, join));
        assert!(dom.dominates(join, join), "reflexive");
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(entry), None);
        assert!(!dom.dominates(entry, dead), "unreachable blocks are not dominated");
    }

    #[test]
    fn rpo_handles_loops() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![m.types.i1()]);
        let f = m.create_function("loopy", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        b.condbr(Value::Param(0), body, exit);
        b.switch_to(body);
        b.br(header); // back edge
        b.switch_to(exit);
        b.ret(Some(b.const_i32(0)));
        let rpo = reverse_post_order(m.func(f));
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        let pos = |x| rpo.iter().position(|&y| y == x).unwrap();
        assert!(pos(header) < pos(body));
    }
}
