//! An ergonomic builder for constructing IR.
//!
//! [`FuncBuilder`] borrows the module, tracks an insertion point and offers
//! one method per opcode, returning the result [`Value`].
//!
//! # Examples
//!
//! ```
//! use fmsa_ir::{Module, FuncBuilder, Value};
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.i32();
//! let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
//! let f = m.create_function("add2", fn_ty);
//! let mut b = FuncBuilder::new(&mut m, f);
//! let entry = b.block("entry");
//! b.switch_to(entry);
//! let sum = b.add(Value::Param(0), Value::Param(1));
//! b.ret(Some(sum));
//! assert_eq!(m.func(f).inst_count(), 2);
//! ```

use crate::inst::{ExtraData, FloatPredicate, Inst, IntPredicate, LandingPadClause, Opcode};
use crate::module::Module;
use crate::types::TyId;
use crate::value::{BlockId, FuncId, InstId, Value};

/// Builds instructions into one function of a module.
#[derive(Debug)]
pub struct FuncBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    cursor: Option<BlockId>,
}

impl<'m> FuncBuilder<'m> {
    /// Starts building into `func` of `module`. No insertion point is set;
    /// call [`FuncBuilder::block`] and [`FuncBuilder::switch_to`] first.
    pub fn new(module: &'m mut Module, func: FuncId) -> FuncBuilder<'m> {
        FuncBuilder { module, func, cursor: None }
    }

    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// Shared access to the underlying module.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Mutable access to the underlying module (e.g. to intern types).
    pub fn module_mut(&mut self) -> &mut Module {
        self.module
    }

    /// Appends a new block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.module.func_mut(self.func).add_block(name)
    }

    /// Sets the insertion point to the end of `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cursor = Some(block);
    }

    /// Current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no insertion point was set.
    pub fn current_block(&self) -> BlockId {
        self.cursor.expect("insertion point set via switch_to")
    }

    /// Type of `v` in the context of the function being built.
    pub fn value_ty(&self, v: Value) -> TyId {
        if let Value::Func(f) = v {
            let fn_ty = self.module.func(f).fn_ty();
            // A function used as an operand behaves like a pointer to it.
            return fn_ty;
        }
        self.module.func(self.func).value_ty(v, &self.module.types)
    }

    fn push(&mut self, inst: Inst) -> InstId {
        let block = self.current_block();
        self.module.func_mut(self.func).append_inst(block, inst)
    }

    fn push_val(&mut self, inst: Inst) -> Value {
        Value::Inst(self.push(inst))
    }

    // ----- constants -------------------------------------------------------

    /// An `i32` constant.
    pub fn const_i32(&self, v: i32) -> Value {
        Value::ConstInt { ty: self.module.types.i32(), bits: v as u32 as u64 }
    }

    /// An `i64` constant.
    pub fn const_i64(&self, v: i64) -> Value {
        Value::ConstInt { ty: self.module.types.i64(), bits: v as u64 }
    }

    /// An `i1` (boolean) constant.
    pub fn const_bool(&self, v: bool) -> Value {
        Value::ConstInt { ty: self.module.types.i1(), bits: v as u64 }
    }

    /// An integer constant of arbitrary width.
    pub fn const_int(&mut self, bits_width: u32, v: u64) -> Value {
        let ty = self.module.types.int(bits_width);
        Value::ConstInt { ty, bits: truncate_to_width(v, bits_width) }
    }

    /// A `float` constant.
    pub fn const_f32(&self, v: f32) -> Value {
        Value::ConstFloat { ty: self.module.types.f32(), bits: v.to_bits() as u64 }
    }

    /// A `double` constant.
    pub fn const_f64(&self, v: f64) -> Value {
        Value::ConstFloat { ty: self.module.types.f64(), bits: v.to_bits() }
    }

    // ----- arithmetic ------------------------------------------------------

    /// Emits a binary operation; `lhs` and `rhs` must have the same type.
    pub fn binary(&mut self, op: Opcode, lhs: Value, rhs: Value) -> Value {
        debug_assert!(op.is_binary(), "binary() requires a binary opcode");
        let ty = self.value_ty(lhs);
        self.push_val(Inst::new(op, ty, vec![lhs, rhs]))
    }

    /// Integer addition.
    pub fn add(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::Add, l, r)
    }
    /// Integer subtraction.
    pub fn sub(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::Sub, l, r)
    }
    /// Integer multiplication.
    pub fn mul(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::Mul, l, r)
    }
    /// Unsigned division.
    pub fn udiv(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::UDiv, l, r)
    }
    /// Signed division.
    pub fn sdiv(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::SDiv, l, r)
    }
    /// Unsigned remainder.
    pub fn urem(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::URem, l, r)
    }
    /// Signed remainder.
    pub fn srem(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::SRem, l, r)
    }
    /// Floating addition.
    pub fn fadd(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::FAdd, l, r)
    }
    /// Floating subtraction.
    pub fn fsub(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::FSub, l, r)
    }
    /// Floating multiplication.
    pub fn fmul(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::FMul, l, r)
    }
    /// Floating division.
    pub fn fdiv(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::FDiv, l, r)
    }
    /// Left shift.
    pub fn shl(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::Shl, l, r)
    }
    /// Logical right shift.
    pub fn lshr(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::LShr, l, r)
    }
    /// Arithmetic right shift.
    pub fn ashr(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::AShr, l, r)
    }
    /// Bitwise and.
    pub fn and(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::And, l, r)
    }
    /// Bitwise or.
    pub fn or(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::Or, l, r)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, l: Value, r: Value) -> Value {
        self.binary(Opcode::Xor, l, r)
    }

    // ----- comparisons -----------------------------------------------------

    /// Integer comparison producing `i1`.
    pub fn icmp(&mut self, pred: IntPredicate, l: Value, r: Value) -> Value {
        let i1 = self.module.types.i1();
        self.push_val(Inst::with_extra(Opcode::ICmp, i1, vec![l, r], ExtraData::ICmp(pred)))
    }

    /// Floating comparison producing `i1`.
    pub fn fcmp(&mut self, pred: FloatPredicate, l: Value, r: Value) -> Value {
        let i1 = self.module.types.i1();
        self.push_val(Inst::with_extra(Opcode::FCmp, i1, vec![l, r], ExtraData::FCmp(pred)))
    }

    // ----- memory ----------------------------------------------------------

    /// Stack allocation of one `ty`; result is `ty*`.
    pub fn alloca(&mut self, ty: TyId) -> Value {
        let ptr = self.module.types.ptr(ty);
        self.push_val(Inst::with_extra(
            Opcode::Alloca,
            ptr,
            vec![],
            ExtraData::Alloca { allocated: ty },
        ))
    }

    /// Loads from `ptr`, producing the pointee type.
    pub fn load(&mut self, ptr: Value) -> Value {
        let pt = self.value_ty(ptr);
        let pointee = self.module.types.pointee(pt).expect("load from a pointer");
        self.push_val(Inst::new(Opcode::Load, pointee, vec![ptr]))
    }

    /// Stores `value` to `ptr`.
    pub fn store(&mut self, value: Value, ptr: Value) {
        let void = self.module.types.void();
        self.push(Inst::new(Opcode::Store, void, vec![value, ptr]));
    }

    /// `getelementptr` through `source_elem` with the given indices.
    /// The result is a pointer to `result_pointee`.
    pub fn gep(
        &mut self,
        source_elem: TyId,
        ptr: Value,
        indices: Vec<Value>,
        result_pointee: TyId,
    ) -> Value {
        let rt = self.module.types.ptr(result_pointee);
        let mut ops = vec![ptr];
        ops.extend(indices);
        self.push_val(Inst::with_extra(Opcode::Gep, rt, ops, ExtraData::Gep { source_elem }))
    }

    // ----- casts -----------------------------------------------------------

    /// Emits a cast instruction of kind `op` to type `to`.
    pub fn cast(&mut self, op: Opcode, v: Value, to: TyId) -> Value {
        debug_assert!(op.is_cast(), "cast() requires a cast opcode");
        self.push_val(Inst::new(op, to, vec![v]))
    }

    /// Lossless bit reinterpretation.
    pub fn bitcast(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::BitCast, v, to)
    }
    /// Integer truncation.
    pub fn trunc(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::Trunc, v, to)
    }
    /// Zero extension.
    pub fn zext(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::ZExt, v, to)
    }
    /// Sign extension.
    pub fn sext(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::SExt, v, to)
    }
    /// Float → float narrowing.
    pub fn fptrunc(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::FPTrunc, v, to)
    }
    /// Float → float widening.
    pub fn fpext(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::FPExt, v, to)
    }
    /// Signed int → float.
    pub fn sitofp(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::SIToFP, v, to)
    }
    /// Float → signed int.
    pub fn fptosi(&mut self, v: Value, to: TyId) -> Value {
        self.cast(Opcode::FPToSI, v, to)
    }

    // ----- control flow ----------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        let void = self.module.types.void();
        self.push(Inst::new(Opcode::Br, void, vec![Value::Block(target)]));
    }

    /// Conditional branch on an `i1` value.
    pub fn condbr(&mut self, cond: Value, then_b: BlockId, else_b: BlockId) {
        let void = self.module.types.void();
        self.push(Inst::new(
            Opcode::CondBr,
            void,
            vec![cond, Value::Block(then_b), Value::Block(else_b)],
        ));
    }

    /// `switch` on an integer value: pairs of (constant, target).
    pub fn switch(&mut self, cond: Value, default: BlockId, cases: Vec<(Value, BlockId)>) {
        let void = self.module.types.void();
        let mut ops = vec![cond, Value::Block(default)];
        for (c, b) in cases {
            ops.push(c);
            ops.push(Value::Block(b));
        }
        self.push(Inst::new(Opcode::Switch, void, ops));
    }

    /// Return; `None` for `ret void`.
    pub fn ret(&mut self, v: Option<Value>) {
        let void = self.module.types.void();
        self.push(Inst::new(Opcode::Ret, void, v.into_iter().collect()));
    }

    /// Marks the current point unreachable.
    pub fn unreachable(&mut self) {
        let void = self.module.types.void();
        self.push(Inst::new(Opcode::Unreachable, void, vec![]));
    }

    // ----- calls & misc ----------------------------------------------------

    /// Direct call to `callee` with `args`; result type is the callee's
    /// return type.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>) -> Value {
        let fn_ty = self.module.func(callee).fn_ty();
        let ret = self.module.types.fn_ret(fn_ty).expect("callee has function type");
        let mut ops = vec![Value::Func(callee)];
        ops.extend(args);
        self.push_val(Inst::new(Opcode::Call, ret, ops))
    }

    /// `invoke`: call that may unwind to `unwind` (a landing block).
    pub fn invoke(
        &mut self,
        callee: FuncId,
        args: Vec<Value>,
        normal: BlockId,
        unwind: BlockId,
    ) -> Value {
        let fn_ty = self.module.func(callee).fn_ty();
        let ret = self.module.types.fn_ret(fn_ty).expect("callee has function type");
        let mut ops = vec![Value::Func(callee)];
        ops.extend(args);
        ops.push(Value::Block(normal));
        ops.push(Value::Block(unwind));
        self.push_val(Inst::new(Opcode::Invoke, ret, ops))
    }

    /// `select cond, if_true, if_false`.
    pub fn select(&mut self, cond: Value, if_true: Value, if_false: Value) -> Value {
        let ty = self.value_ty(if_true);
        self.push_val(Inst::new(Opcode::Select, ty, vec![cond, if_true, if_false]))
    }

    /// φ-node; `incoming` pairs values with their predecessor blocks.
    pub fn phi(&mut self, ty: TyId, incoming: Vec<(Value, BlockId)>) -> Value {
        let (vals, blocks): (Vec<_>, Vec<_>) = incoming.into_iter().unzip();
        self.push_val(Inst::with_extra(Opcode::Phi, ty, vals, ExtraData::Phi { incoming: blocks }))
    }

    /// `landingpad` with the given clauses; must be the first instruction
    /// of its block. Result type models the `{ i8*, i32 }` EH pair.
    pub fn landingpad(&mut self, clauses: Vec<LandingPadClause>, cleanup: bool) -> Value {
        let i8p = self.module.types.ptr(self.module.types.i8());
        let i32t = self.module.types.i32();
        let pair = self.module.types.struct_(vec![i8p, i32t]);
        self.push_val(Inst::with_extra(
            Opcode::LandingPad,
            pair,
            vec![],
            ExtraData::LandingPad { clauses, cleanup },
        ))
    }

    /// `resume` re-raising the exception value.
    pub fn resume(&mut self, exn: Value) {
        let void = self.module.types.void();
        self.push(Inst::new(Opcode::Resume, void, vec![exn]));
    }

    /// `extractvalue` from an aggregate.
    pub fn extract_value(&mut self, agg: Value, indices: Vec<u32>, result_ty: TyId) -> Value {
        self.push_val(Inst::with_extra(
            Opcode::ExtractValue,
            result_ty,
            vec![agg],
            ExtraData::AggIndices(indices),
        ))
    }

    /// `insertvalue` into an aggregate.
    pub fn insert_value(&mut self, agg: Value, v: Value, indices: Vec<u32>) -> Value {
        let ty = self.value_ty(agg);
        self.push_val(Inst::with_extra(
            Opcode::InsertValue,
            ty,
            vec![agg, v],
            ExtraData::AggIndices(indices),
        ))
    }
}

fn truncate_to_width(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn builds_a_small_function() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let f = m.create_function("max", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let then_b = b.block("then");
        let else_b = b.block("else");
        b.switch_to(entry);
        let c = b.icmp(IntPredicate::Sgt, Value::Param(0), Value::Param(1));
        b.condbr(c, then_b, else_b);
        b.switch_to(then_b);
        b.ret(Some(Value::Param(0)));
        b.switch_to(else_b);
        b.ret(Some(Value::Param(1)));
        let f = m.func(f);
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.inst_count(), 4);
        assert_eq!(f.successors(entry), vec![then_b, else_b]);
    }

    #[test]
    fn alloca_load_store_types() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let slot = b.alloca(i32t);
        b.store(b.const_i32(42), slot);
        let v = b.load(slot);
        b.ret(Some(v));
        assert_eq!(b.value_ty(v), i32t);
        let pt = b.value_ty(slot);
        assert_eq!(b.module().types.pointee(pt), Some(i32t));
    }

    #[test]
    fn call_result_type_matches_callee() {
        let mut m = Module::new("m");
        let i64t = m.types.i64();
        let callee_ty = m.types.func(i64t, vec![i64t]);
        let callee = m.create_function("id64", callee_ty);
        let void = m.types.void();
        let caller_ty = m.types.func(void, vec![]);
        let caller = m.create_function("caller", caller_ty);
        let mut b = FuncBuilder::new(&mut m, caller);
        let entry = b.block("entry");
        b.switch_to(entry);
        let r = b.call(callee, vec![b.const_i64(7)]);
        assert_eq!(b.value_ty(r), i64t);
        b.ret(None);
    }

    #[test]
    fn const_int_truncates() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        match b.const_int(8, 0x1ff) {
            Value::ConstInt { bits, .. } => assert_eq!(bits, 0xff),
            _ => panic!(),
        }
    }
}
