//! Cross-module function transplant: building functions detached from the
//! main [`Module`] and splicing them back in.
//!
//! The parallel merge pipeline generates merged functions speculatively on
//! worker threads. Workers cannot mutate the main module, so each builds
//! its function inside a private [`ScratchModule`] — a throwaway module
//! whose [`TypeStore`] starts as a clone of the donor's and whose function
//! table holds imported stand-ins for the donor functions the build
//! references. At commit time [`transplant_function`] splices the finished
//! body into the main module, remapping every id class that crosses the
//! module boundary:
//!
//! * **[`TyId`]** — scratch types are re-interned into the destination
//!   store by [`migrate_types`]. Migration walks the scratch store *in
//!   interning order*, which reproduces exactly the sequence of types an
//!   in-place build would have interned (the cloned prefix maps to itself
//!   by canonical interning; types created during the scratch build were
//!   appended in build order). Keeping the destination store's evolution
//!   identical to an in-place build matters because type-id *values* feed
//!   the MinHash candidate index — divergent interning order would break
//!   the pipeline's bit-identity guarantee.
//! * **[`FuncId`]** — operands referencing scratch stand-ins are resolved
//!   back to the donor functions through the scratch module's import map.
//!   An operand with no mapping is a hard error, never a silent dangle.
//! * **[`crate::InstId`]/[`crate::BlockId`]** — *not* renumbered. The transplanted
//!   [`Function`] keeps its arenas verbatim, tombstones included, because
//!   the printer renders raw arena indices: compacting them would make a
//!   transplanted function print differently from the identical function
//!   built in place, breaking bit-identity.

use crate::function::Function;
use crate::inst::ExtraData;
use crate::module::Module;
use crate::types::{TyId, Type, TypeStore};
use crate::value::{FuncId, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a transplant could not be completed. The module is left unchanged
/// except for types already migrated into its store (benign: an in-place
/// build would have interned the same types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransplantError {
    /// The function references a scratch [`FuncId`] with no donor mapping.
    UnmappedFunction(FuncId),
    /// The destination already defines a function with the chosen name.
    DuplicateName(String),
}

impl fmt::Display for TransplantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransplantError::UnmappedFunction(id) => {
                write!(f, "function operand {id} has no mapping into the destination module")
            }
            TransplantError::DuplicateName(name) => {
                write!(f, "destination module already defines @{name}")
            }
        }
    }
}

impl Error for TransplantError {}

/// A [`TyId`] translation table from one store into another, produced by
/// [`migrate_types`] / [`migrate_types_suffix`]. Total over the source
/// store: ids below the shared prefix map to themselves, ids in the
/// migrated suffix through the table.
#[derive(Debug, Clone)]
pub struct TypeMap {
    /// Length of the shared prefix that maps by identity.
    prefix: usize,
    /// Destination ids for source ids `prefix..`.
    suffix: Vec<TyId>,
}

impl TypeMap {
    /// The destination id for source type `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` did not come from the migrated source store.
    pub fn get(&self, ty: TyId) -> TyId {
        if ty.index() < self.prefix {
            ty
        } else {
            self.suffix[ty.index() - self.prefix]
        }
    }
}

/// Re-interns every type of `src` into `dst`, in `src`'s interning order,
/// and returns the translation table.
///
/// Composite types always reference lower-indexed component types (a type
/// can only be built from already-interned ids), so a single forward pass
/// can remap nested references through the table built so far. Types
/// already present in `dst` dedupe to their existing id — in particular,
/// when `src` began as a clone of `dst`, the shared prefix maps to itself
/// and only the suffix appends, in the same order a build running directly
/// against `dst` would have appended it.
pub fn migrate_types(src: &TypeStore, dst: &mut TypeStore) -> TypeMap {
    migrate_types_suffix(src, dst, 0)
}

/// [`migrate_types`] for a `src` store that was cloned from `dst` when
/// `dst` held `shared_prefix` types: the prefix maps by identity without
/// being re-interned (type stores are append-only, so those ids are still
/// valid in `dst` with unchanged structure), and only the suffix `src`
/// appended since the clone is interned — `O(new types)` per call instead
/// of `O(store)`, which is what keeps transplants cheap late in a pass
/// when the store has grown large.
pub fn migrate_types_suffix(src: &TypeStore, dst: &mut TypeStore, shared_prefix: usize) -> TypeMap {
    debug_assert!(shared_prefix <= src.len() && shared_prefix <= dst.len());
    #[cfg(debug_assertions)]
    for i in 0..shared_prefix {
        debug_assert_eq!(
            src.get(TyId(i as u32)),
            dst.get(TyId(i as u32)),
            "shared prefix must be structurally identical (append-only stores)"
        );
    }
    let mut suffix: Vec<TyId> = Vec::with_capacity(src.len() - shared_prefix);
    for i in shared_prefix..src.len() {
        let at = |id: TyId| {
            if id.index() < shared_prefix {
                id
            } else {
                suffix[id.index() - shared_prefix]
            }
        };
        let remapped = match src.get(TyId(i as u32)) {
            Type::Ptr { pointee } => Type::Ptr { pointee: at(*pointee) },
            Type::Array { elem, len } => Type::Array { elem: at(*elem), len: *len },
            Type::Struct { fields, packed } => {
                Type::Struct { fields: fields.iter().map(|&f| at(f)).collect(), packed: *packed }
            }
            Type::Func { ret, params, varargs } => Type::Func {
                ret: at(*ret),
                params: params.iter().map(|&p| at(p)).collect(),
                varargs: *varargs,
            },
            leaf => leaf.clone(),
        };
        suffix.push(dst.intern(remapped));
    }
    TypeMap { prefix: shared_prefix, suffix }
}

/// How a [`ScratchModule`]'s type store was set up: how much of the donor
/// store was shared by reference (the copy-on-write frozen prefix) versus
/// copied eagerly. The pipeline aggregates these into its
/// scratch-setup telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchSetup {
    /// Donor types shared via the frozen `Arc` prefix — no copy at all.
    pub shared_types: usize,
    /// Donor types copied eagerly (interned after the donor's last
    /// [`TypeStore::freeze`], or all of them for a never-frozen donor).
    pub cloned_types: usize,
}

impl ScratchSetup {
    /// Whether the donor store was shared entirely by reference (the
    /// scratch setup copied zero types).
    pub fn is_fully_shared(&self) -> bool {
        self.cloned_types == 0
    }

    /// Rough lower bound on the heap bytes the shared prefix avoided
    /// copying: one `Type` in the table plus one `(Type, TyId)` interner
    /// entry per shared type. Ignores the heap payloads of struct/func
    /// field vectors and hash-table overhead, so the real saving is
    /// larger.
    pub fn bytes_avoided(&self) -> u64 {
        let per_type = 2 * std::mem::size_of::<Type>() + std::mem::size_of::<TyId>();
        (self.shared_types * per_type) as u64
    }
}

/// A private module for building one function detached from a donor
/// [`Module`].
///
/// The type store starts as a clone of the donor's, so every donor
/// [`TyId`] is valid here with the same value and new types append after
/// the shared prefix — a copy-on-write share when the donor was
/// [frozen](TypeStore::freeze) (the pipeline freezes the main store once
/// per generation so the ~one-scratch-per-speculation setup cost stops
/// scaling with store size). Donor functions enter through
/// [`ScratchModule::import_function`] (full body clones for the functions
/// the build reads) or as signature-only declarations (for callees, so the
/// verifier can type-check call sites); both keep their donor name and are
/// recorded in the scratch→donor map that [`transplant_function`] later
/// uses to resolve cross-module references.
#[derive(Debug)]
pub struct ScratchModule {
    /// The detached module. Build into it freely; only functions that are
    /// explicitly transplanted ever reach the donor.
    pub module: Module,
    /// Donor store size at clone time: the shared type prefix maps by
    /// identity on transplant, only later types are re-interned.
    snapshot_types: usize,
    /// How the type store was seeded (COW share vs eager copy).
    setup: ScratchSetup,
    /// scratch id → donor id, for every imported function.
    to_donor: HashMap<FuncId, FuncId>,
    /// donor id → scratch id (import memo).
    from_donor: HashMap<FuncId, FuncId>,
}

impl ScratchModule {
    /// A scratch module seeded with a clone of the donor's type store —
    /// a copy-on-write share of the frozen prefix plus an eager copy of
    /// whatever the donor interned since its last freeze.
    pub fn new(donor: &Module) -> ScratchModule {
        let mut module = Module::new(format!("{}.scratch", donor.name));
        module.types = donor.types.clone();
        let shared = donor.types.frozen_len();
        ScratchModule {
            snapshot_types: module.types.len(),
            setup: ScratchSetup { shared_types: shared, cloned_types: donor.types.len() - shared },
            module,
            to_donor: HashMap::new(),
            from_donor: HashMap::new(),
        }
    }

    /// How this scratch's type store was seeded from the donor.
    pub fn setup(&self) -> ScratchSetup {
        self.setup
    }

    /// Types this scratch build interned beyond the donor snapshot (the
    /// suffix a transplant or discard re-interns into the main store).
    pub fn suffix_types(&self) -> usize {
        self.module.types.len() - self.snapshot_types
    }

    /// Transplants `func` back into a module descended from the donor
    /// (same append-only type store this scratch was cloned from),
    /// resolving function references through the import map and skipping
    /// re-interning of the shared type prefix. See [`transplant_function`]
    /// for the remapping rules and errors.
    ///
    /// # Errors
    ///
    /// See [`transplant_function`].
    pub fn transplant_into(
        &self,
        dst: &mut Module,
        func: FuncId,
        name: impl Into<String>,
    ) -> Result<Transplanted, TransplantError> {
        transplant_with_prefix(dst, &self.module, func, name, &self.to_donor, self.snapshot_types)
    }

    /// Interns into `dst` the types this scratch build created, without
    /// transplanting any function. An in-place build interns its types
    /// even when the built function is later discarded; callers that
    /// discard a scratch build replay that side effect with this (type-id
    /// values are observable through the MinHash candidate index).
    pub fn migrate_types_into(&self, dst: &mut Module) -> TypeMap {
        migrate_types_suffix(&self.module.types, &mut dst.types, self.snapshot_types)
    }

    /// The scratch→donor function map, in the shape
    /// [`transplant_function`] consumes.
    pub fn func_map(&self) -> &HashMap<FuncId, FuncId> {
        &self.to_donor
    }

    /// The donor function a scratch id stands for, if imported.
    pub fn donor_of(&self, scratch: FuncId) -> Option<FuncId> {
        self.to_donor.get(&scratch).copied()
    }

    /// Imports donor function `f` as a full body clone, rewriting its
    /// function-reference operands to scratch ids (callees it mentions are
    /// imported as declarations on the fly). Re-importing upgrades an
    /// earlier declaration-only import in place; ids are stable.
    pub fn import_function(&mut self, donor: &Module, f: FuncId) -> FuncId {
        let sid = self.import_declaration(donor, f);
        if !self.module.func(sid).is_declaration() || donor.func(f).is_declaration() {
            return sid; // already a definition (or nothing more to copy)
        }
        let mut clone = donor.func(f).clone();
        // Collect the callees first: rewriting needs `&mut self` for
        // declaration imports, so it cannot overlap a borrow of `clone`.
        let mut callees: Vec<FuncId> = Vec::new();
        for iid in clone.inst_ids() {
            for op in &clone.inst(iid).operands {
                if let Value::Func(g) = *op {
                    callees.push(g);
                }
            }
        }
        callees.sort_unstable();
        callees.dedup();
        let remap: HashMap<FuncId, FuncId> =
            callees.into_iter().map(|g| (g, self.import_declaration(donor, g))).collect();
        for iid in clone.inst_ids() {
            for op in &mut clone.inst_mut(iid).operands {
                if let Value::Func(g) = *op {
                    *op = Value::Func(remap[&g]);
                }
            }
        }
        *self.module.func_mut(sid) = clone;
        sid
    }

    /// Imports donor function `f` as a signature-only declaration (enough
    /// for call-site type checking) and records the id mapping.
    pub fn import_declaration(&mut self, donor: &Module, f: FuncId) -> FuncId {
        if let Some(&sid) = self.from_donor.get(&f) {
            return sid;
        }
        let df = donor.func(f);
        let mut decl = Function::new(df.name.clone(), df.fn_ty(), &self.module.types);
        decl.linkage = df.linkage;
        decl.address_taken = df.address_taken;
        let sid = self.module.add_function(decl);
        self.from_donor.insert(f, sid);
        self.to_donor.insert(sid, f);
        sid
    }
}

/// The result of a successful [`transplant_function`].
#[derive(Debug)]
pub struct Transplanted {
    /// The new function's id in the destination module.
    pub func: FuncId,
    /// The type translation applied (source store → destination store);
    /// callers remap any [`TyId`]s they recorded alongside the scratch
    /// build through this.
    pub types: TypeMap,
}

/// Splices `func` from `src` into `dst` under `name`.
///
/// Types are migrated with [`migrate_types`]; function-reference operands
/// are resolved through `func_map` (scratch id → destination id);
/// instruction and block ids are preserved verbatim, tombstones included,
/// so the transplanted function prints identically to the same function
/// built directly in `dst`.
///
/// # Errors
///
/// [`TransplantError::UnmappedFunction`] for a function operand absent
/// from `func_map`; [`TransplantError::DuplicateName`] when `dst` already
/// defines `name`. In both cases no function is added to `dst` (types
/// already migrated stay interned, which is harmless).
pub fn transplant_function(
    dst: &mut Module,
    src: &Module,
    func: FuncId,
    name: impl Into<String>,
    func_map: &HashMap<FuncId, FuncId>,
) -> Result<Transplanted, TransplantError> {
    transplant_with_prefix(dst, src, func, name, func_map, 0)
}

fn transplant_with_prefix(
    dst: &mut Module,
    src: &Module,
    func: FuncId,
    name: impl Into<String>,
    func_map: &HashMap<FuncId, FuncId>,
    shared_prefix: usize,
) -> Result<Transplanted, TransplantError> {
    let name = name.into();
    if dst.func_by_name(&name).is_some() {
        return Err(TransplantError::DuplicateName(name));
    }
    let tmap = migrate_types_suffix(&src.types, &mut dst.types, shared_prefix);
    let mut f = src.func(func).clone();
    f.name = name;
    f.set_fn_ty(tmap.get(f.fn_ty()));
    for p in f.params_mut() {
        p.ty = tmap.get(p.ty);
    }
    // `f` is a local clone and `dst` is untouched until `add_function`,
    // so remapping in place is safe: an unmapped-function error mid-walk
    // just drops the clone.
    for iid in f.inst_ids() {
        let inst = f.inst_mut(iid);
        for op in &mut inst.operands {
            *op = match *op {
                Value::Func(g) => {
                    Value::Func(*func_map.get(&g).ok_or(TransplantError::UnmappedFunction(g))?)
                }
                Value::ConstInt { ty, bits } => Value::ConstInt { ty: tmap.get(ty), bits },
                Value::ConstFloat { ty, bits } => Value::ConstFloat { ty: tmap.get(ty), bits },
                Value::ConstNull(ty) => Value::ConstNull(tmap.get(ty)),
                Value::Undef(ty) => Value::Undef(tmap.get(ty)),
                other => other,
            };
        }
        inst.ty = tmap.get(inst.ty);
        match &mut inst.extra {
            ExtraData::Alloca { allocated } => *allocated = tmap.get(*allocated),
            ExtraData::Gep { source_elem } => *source_elem = tmap.get(*source_elem),
            _ => {}
        }
    }
    let id = dst.add_function(f);
    Ok(Transplanted { func: id, types: tmap })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    fn donor_with_callee() -> (Module, FuncId, FuncId) {
        let mut m = Module::new("donor");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let callee = m.create_function("callee", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, callee);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.add(Value::Param(0), b.const_i32(1));
            b.ret(Some(v));
        }
        let f = m.create_function("f", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.call(callee, vec![Value::Param(0)]);
            let w = b.mul(v, b.const_i32(3));
            b.ret(Some(w));
        }
        (m, f, callee)
    }

    #[test]
    fn migrate_into_clone_is_identity() {
        let (m, _, _) = donor_with_callee();
        let mut dst = m.types.clone();
        let map = migrate_types(&m.types, &mut dst);
        assert_eq!(dst.len(), m.types.len(), "no new types appended");
        for i in 0..m.types.len() {
            assert_eq!(map.get(TyId(i as u32)), TyId(i as u32));
        }
    }

    #[test]
    fn migrate_appends_suffix_in_order() {
        let (m, _, _) = donor_with_callee();
        let mut scratch = m.types.clone();
        let p1 = scratch.ptr(scratch.i64());
        let p2 = scratch.ptr(p1);
        let mut dst = m.types.clone();
        let map = migrate_types(&scratch, &mut dst);
        // Suffix types land at the same indices a direct build would use.
        assert_eq!(map.get(p1), p1);
        assert_eq!(map.get(p2), p2);
        assert_eq!(dst.len(), scratch.len());
        assert_eq!(dst.display(map.get(p2)), "i64**");
    }

    #[test]
    fn import_and_transplant_round_trips() {
        let (m, f, callee) = donor_with_callee();
        let mut scratch = ScratchModule::new(&m);
        let sf = scratch.import_function(&m, f);
        assert_eq!(scratch.donor_of(sf), Some(f));
        // The callee came along as a declaration with its signature.
        let scallee = scratch.module.func_by_name("callee").expect("callee imported");
        assert!(scratch.module.func(scallee).is_declaration());
        assert_eq!(scratch.donor_of(scallee), Some(callee));
        assert!(verify_module(&scratch.module).is_empty(), "{:?}", verify_module(&scratch.module));
        // Transplant back into the donor under a fresh name: the body must
        // print identically (modulo the define line) and verify.
        let mut dst = m.clone();
        let t = transplant_function(&mut dst, &scratch.module, sf, "f.copy", scratch.func_map())
            .expect("transplants");
        assert!(verify_module(&dst).is_empty(), "{:?}", verify_module(&dst));
        let orig = crate::printer::print_function(&m, m.func(f));
        let copy = crate::printer::print_function(&dst, dst.func(t.func));
        assert_eq!(orig.replace("@f(", "@f.copy("), copy);
    }

    #[test]
    fn reimport_upgrades_declaration_in_place() {
        let (m, f, callee) = donor_with_callee();
        let mut scratch = ScratchModule::new(&m);
        let sf = scratch.import_function(&m, f); // pulls callee as a decl
        let sc = scratch.module.func_by_name("callee").expect("decl");
        let upgraded = scratch.import_function(&m, callee);
        assert_eq!(upgraded, sc, "upgrade keeps the id");
        assert!(!scratch.module.func(sc).is_declaration());
        assert!(verify_module(&scratch.module).is_empty());
        let _ = sf;
    }

    #[test]
    fn self_recursion_maps_through_the_scratch_clone() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("rec", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.call(f, vec![Value::Param(0)]);
            b.ret(Some(v));
        }
        let mut scratch = ScratchModule::new(&m);
        let sf = scratch.import_function(&m, f);
        // The self-call references the scratch clone, not the donor id.
        let body = scratch.module.func(sf);
        let call = body.block(body.entry()).insts[0];
        assert_eq!(body.inst(call).operands[0], Value::Func(sf));
        let mut dst = m.clone();
        let t = transplant_function(&mut dst, &scratch.module, sf, "rec.copy", scratch.func_map())
            .expect("transplants");
        // ... and resolves back to the donor function on transplant.
        let out = dst.func(t.func);
        let call = out.block(out.entry()).insts[0];
        assert_eq!(out.inst(call).operands[0], Value::Func(f));
    }

    #[test]
    fn unmapped_function_reference_is_an_error() {
        let (m, f, _) = donor_with_callee();
        let mut scratch = ScratchModule::new(&m);
        let sf = scratch.import_function(&m, f);
        let mut dst = m.clone();
        let empty = HashMap::new();
        let err = transplant_function(&mut dst, &scratch.module, sf, "f.copy", &empty);
        assert!(matches!(err, Err(TransplantError::UnmappedFunction(_))), "{err:?}");
        assert!(dst.func_by_name("f.copy").is_none(), "nothing was added");
    }

    #[test]
    fn duplicate_name_is_an_error() {
        let (m, f, _) = donor_with_callee();
        let mut scratch = ScratchModule::new(&m);
        let sf = scratch.import_function(&m, f);
        let mut dst = m.clone();
        let err = transplant_function(&mut dst, &scratch.module, sf, "f", scratch.func_map());
        assert!(matches!(err, Err(TransplantError::DuplicateName(_))), "{err:?}");
    }

    #[test]
    fn frozen_donor_shares_the_store_and_transplants_identically() {
        let (mut m, f, _) = donor_with_callee();
        // Unfrozen donor: the scratch copies every type.
        let cold = ScratchModule::new(&m);
        assert!(!cold.setup().is_fully_shared());
        assert_eq!(cold.setup().cloned_types, m.types.len());
        // Frozen donor: the scratch shares the whole store by reference.
        m.types.freeze();
        let mut scratch = ScratchModule::new(&m);
        assert!(scratch.setup().is_fully_shared(), "{:?}", scratch.setup());
        assert_eq!(scratch.setup().shared_types, m.types.len());
        assert!(scratch.setup().bytes_avoided() > 0);
        assert!(scratch.module.types.shares_frozen_with(&m.types));
        let sf = scratch.import_function(&m, f);
        let p = scratch.module.types.ptr(scratch.module.types.i64());
        assert_eq!(scratch.suffix_types(), 1);
        let mut dst = m.clone();
        let t = scratch.transplant_into(&mut dst, sf, "f.copy").expect("transplants");
        assert_eq!(t.types.get(p), p, "suffix ids land where an in-place build would put them");
        let orig = crate::printer::print_function(&m, m.func(f));
        let copy = crate::printer::print_function(&dst, dst.func(t.func));
        assert_eq!(orig.replace("@f(", "@f.copy("), copy);
        assert!(verify_module(&dst).is_empty(), "{:?}", verify_module(&dst));
    }

    #[test]
    fn transplant_preserves_tombstoned_arena_indices() {
        // Build a function, remove an instruction (leaving a gap), and
        // check the transplanted copy prints the same raw value numbers.
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("gappy", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let dead = m.func_mut(f).append_inst(
            b,
            crate::inst::Inst::new(
                crate::inst::Opcode::Add,
                i32t,
                vec![Value::Param(0), Value::Param(0)],
            ),
        );
        let live = m.func_mut(f).append_inst(
            b,
            crate::inst::Inst::new(
                crate::inst::Opcode::Mul,
                i32t,
                vec![Value::Param(0), Value::Param(0)],
            ),
        );
        let void = m.types.void();
        m.func_mut(f).append_inst(
            b,
            crate::inst::Inst::new(crate::inst::Opcode::Ret, void, vec![Value::Inst(live)]),
        );
        m.func_mut(f).remove_inst(dead);
        let mut scratch = ScratchModule::new(&m);
        let sf = scratch.import_function(&m, f);
        let mut dst = Module::new("dst");
        let t = transplant_function(&mut dst, &scratch.module, sf, "gappy", scratch.func_map())
            .expect("transplants");
        assert_eq!(
            print_module(&m).replace("; module m", "; module dst"),
            print_module(&dst),
            "raw ids (including the gap left by the removed inst) must survive"
        );
        assert!(dst.func(t.func).is_live_inst(live));
    }
}
