//! # fmsa-ir — the IR substrate of the FMSA reproduction
//!
//! A from-scratch, LLVM-v8-flavoured intermediate representation used by the
//! reproduction of *Function Merging by Sequence Alignment* (Rocha et al.,
//! CGO 2019). It provides everything §III of the paper assumes of the
//! compiler it is embedded in:
//!
//! * a typed instruction set (~46 opcodes) with the Itanium-style
//!   `invoke`/`landingpad` exception-handling model,
//! * interned types with the *lossless bitcast* equivalence used by the
//!   merger ([`TypeStore::can_lossless_bitcast`]),
//! * functions/blocks/instructions stored in id-indexed arenas,
//! * a [`FuncBuilder`] construction API, CFG utilities (reverse post-order
//!   with canonical successor ordering — the traversal FMSA linearizes),
//! * a verifier, a textual printer and parser, and the φ-demotion pass the
//!   paper applies before merging.
//!
//! # Examples
//!
//! ```
//! use fmsa_ir::{Module, FuncBuilder, Value, verify_module};
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.i32();
//! let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
//! let f = m.create_function("add2", fn_ty);
//! let mut b = FuncBuilder::new(&mut m, f);
//! let entry = b.block("entry");
//! b.switch_to(entry);
//! let sum = b.add(Value::Param(0), Value::Param(1));
//! b.ret(Some(sum));
//! assert!(verify_module(&m).is_empty());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod function;
pub mod inst;
pub mod module;
pub mod parser;
pub mod passes;
pub mod printer;
pub mod transplant;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::FuncBuilder;
pub use function::{Block, Function, Linkage, Param};
pub use inst::{ExtraData, FloatPredicate, Inst, IntPredicate, LandingPadClause, Opcode};
pub use module::Module;
pub use transplant::{
    transplant_function, ScratchModule, ScratchSetup, TransplantError, Transplanted, TypeMap,
};
pub use types::{TyId, Type, TypeStore};
pub use value::{BlockId, FuncId, InstId, Value};
pub use verifier::{ensure_valid, verify_function, verify_module, VerifyError};
