//! Instructions and opcodes.
//!
//! The opcode set mirrors LLVM v8's instruction set closely enough that the
//! FMSA algorithms (fingerprinting, equivalence, cost modelling) behave like
//! their LLVM counterparts. Operand conventions are documented per opcode on
//! [`Opcode`].

use crate::types::TyId;
use crate::value::{BlockId, Value};

/// Instruction opcodes.
///
/// Operand conventions (`operands` field of [`Inst`]):
///
/// | Opcode | Operands |
/// |---|---|
/// | `Ret` | `[]` (void) or `[value]` |
/// | `Br` | `[Block(target)]` |
/// | `CondBr` | `[cond, Block(then), Block(else)]` |
/// | `Switch` | `[cond, Block(default), c1, Block(b1), c2, Block(b2), ...]` |
/// | `Invoke` | `[callee, args..., Block(normal), Block(unwind)]` |
/// | `Resume` | `[exn_value]` |
/// | `Unreachable` | `[]` |
/// | binary ops | `[lhs, rhs]` |
/// | `Alloca` | `[]` or `[count]`; allocated type in `ExtraData::Alloca` |
/// | `Load` | `[ptr]` |
/// | `Store` | `[value, ptr]` |
/// | `Gep` | `[ptr, idx...]`; source element type in `ExtraData::Gep` |
/// | cast ops | `[value]` |
/// | `ICmp`/`FCmp` | `[lhs, rhs]`; predicate in `ExtraData` |
/// | `Phi` | `[v1, v2, ...]`; incoming blocks in `ExtraData::Phi` |
/// | `Call` | `[callee, args...]` |
/// | `Select` | `[cond, if_true, if_false]` |
/// | `LandingPad` | `[]`; clauses in `ExtraData::LandingPad` |
/// | `ExtractValue` | `[agg]`; indices in `ExtraData::AggIndices` |
/// | `InsertValue` | `[agg, value]`; indices in `ExtraData::AggIndices` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Opcode {
    // Terminators.
    Ret,
    Br,
    CondBr,
    Switch,
    Invoke,
    Resume,
    Unreachable,
    // Integer binary.
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    // Float binary.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FRem,
    // Bitwise.
    Shl,
    LShr,
    AShr,
    And,
    Or,
    Xor,
    // Memory.
    Alloca,
    Load,
    Store,
    Gep,
    // Casts.
    Trunc,
    ZExt,
    SExt,
    FPTrunc,
    FPExt,
    FPToUI,
    FPToSI,
    UIToFP,
    SIToFP,
    PtrToInt,
    IntToPtr,
    BitCast,
    // Other.
    ICmp,
    FCmp,
    Phi,
    Call,
    Select,
    LandingPad,
    ExtractValue,
    InsertValue,
}

impl Opcode {
    /// All opcodes, in declaration order. The fingerprint vector (§IV of the
    /// paper) is indexed by this ordering.
    pub const ALL: [Opcode; 49] = [
        Opcode::Ret,
        Opcode::Br,
        Opcode::CondBr,
        Opcode::Switch,
        Opcode::Invoke,
        Opcode::Resume,
        Opcode::Unreachable,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::UDiv,
        Opcode::SDiv,
        Opcode::URem,
        Opcode::SRem,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FRem,
        Opcode::Shl,
        Opcode::LShr,
        Opcode::AShr,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Alloca,
        Opcode::Load,
        Opcode::Store,
        Opcode::Gep,
        Opcode::Trunc,
        Opcode::ZExt,
        Opcode::SExt,
        Opcode::FPTrunc,
        Opcode::FPExt,
        Opcode::FPToUI,
        Opcode::FPToSI,
        Opcode::UIToFP,
        Opcode::SIToFP,
        Opcode::PtrToInt,
        Opcode::IntToPtr,
        Opcode::BitCast,
        Opcode::ICmp,
        Opcode::FCmp,
        Opcode::Phi,
        Opcode::Call,
        Opcode::Select,
        Opcode::LandingPad,
        Opcode::ExtractValue,
        Opcode::InsertValue,
    ];

    /// Number of distinct opcodes (the fingerprint vector length).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this opcode in [`Opcode::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&o| o == self).expect("opcode listed in ALL")
    }

    /// Whether this opcode terminates a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Ret
                | Opcode::Br
                | Opcode::CondBr
                | Opcode::Switch
                | Opcode::Invoke
                | Opcode::Resume
                | Opcode::Unreachable
        )
    }

    /// Whether the operation is commutative, i.e. operand order can be
    /// swapped without changing the result. Used by merged-function code
    /// generation to reorder operands and minimize `select`s (§III-E).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::FAdd
                | Opcode::FMul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
        )
    }

    /// Whether the instruction may read or write memory or have other
    /// observable side effects (and therefore must not be removed by DCE
    /// even if its result is unused).
    pub fn has_side_effects(self) -> bool {
        matches!(
            self,
            Opcode::Store
                | Opcode::Call
                | Opcode::Invoke
                | Opcode::Resume
                | Opcode::Unreachable
                | Opcode::LandingPad
        ) || self.is_terminator()
    }

    /// Whether this is an integer or float binary arithmetic/bitwise op.
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::UDiv
                | Opcode::SDiv
                | Opcode::URem
                | Opcode::SRem
                | Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FRem
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
        )
    }

    /// Whether this is one of the cast opcodes.
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Opcode::Trunc
                | Opcode::ZExt
                | Opcode::SExt
                | Opcode::FPTrunc
                | Opcode::FPExt
                | Opcode::FPToUI
                | Opcode::FPToSI
                | Opcode::UIToFP
                | Opcode::SIToFP
                | Opcode::PtrToInt
                | Opcode::IntToPtr
                | Opcode::BitCast
        )
    }

    /// Lower-case LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Ret => "ret",
            Opcode::Br => "br",
            Opcode::CondBr => "condbr",
            Opcode::Switch => "switch",
            Opcode::Invoke => "invoke",
            Opcode::Resume => "resume",
            Opcode::Unreachable => "unreachable",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::UDiv => "udiv",
            Opcode::SDiv => "sdiv",
            Opcode::URem => "urem",
            Opcode::SRem => "srem",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FRem => "frem",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "getelementptr",
            Opcode::Trunc => "trunc",
            Opcode::ZExt => "zext",
            Opcode::SExt => "sext",
            Opcode::FPTrunc => "fptrunc",
            Opcode::FPExt => "fpext",
            Opcode::FPToUI => "fptoui",
            Opcode::FPToSI => "fptosi",
            Opcode::UIToFP => "uitofp",
            Opcode::SIToFP => "sitofp",
            Opcode::PtrToInt => "ptrtoint",
            Opcode::IntToPtr => "inttoptr",
            Opcode::BitCast => "bitcast",
            Opcode::ICmp => "icmp",
            Opcode::FCmp => "fcmp",
            Opcode::Phi => "phi",
            Opcode::Call => "call",
            Opcode::Select => "select",
            Opcode::LandingPad => "landingpad",
            Opcode::ExtractValue => "extractvalue",
            Opcode::InsertValue => "insertvalue",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Self::ALL.iter().copied().find(|o| o.mnemonic() == s)
    }
}

/// Integer comparison predicates (subset of LLVM's `icmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IntPredicate {
    Eq,
    Ne,
    Ugt,
    Uge,
    Ult,
    Ule,
    Sgt,
    Sge,
    Slt,
    Sle,
}

impl IntPredicate {
    /// All predicates.
    pub const ALL: [IntPredicate; 10] = [
        IntPredicate::Eq,
        IntPredicate::Ne,
        IntPredicate::Ugt,
        IntPredicate::Uge,
        IntPredicate::Ult,
        IntPredicate::Ule,
        IntPredicate::Sgt,
        IntPredicate::Sge,
        IntPredicate::Slt,
        IntPredicate::Sle,
    ];

    /// The predicate with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> IntPredicate {
        match self {
            IntPredicate::Eq => IntPredicate::Eq,
            IntPredicate::Ne => IntPredicate::Ne,
            IntPredicate::Ugt => IntPredicate::Ult,
            IntPredicate::Uge => IntPredicate::Ule,
            IntPredicate::Ult => IntPredicate::Ugt,
            IntPredicate::Ule => IntPredicate::Uge,
            IntPredicate::Sgt => IntPredicate::Slt,
            IntPredicate::Sge => IntPredicate::Sle,
            IntPredicate::Slt => IntPredicate::Sgt,
            IntPredicate::Sle => IntPredicate::Sge,
        }
    }

    /// Whether swapping the operands leaves the result unchanged.
    pub fn is_commutative(self) -> bool {
        matches!(self, IntPredicate::Eq | IntPredicate::Ne)
    }

    /// LLVM-style mnemonic (`eq`, `slt`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntPredicate::Eq => "eq",
            IntPredicate::Ne => "ne",
            IntPredicate::Ugt => "ugt",
            IntPredicate::Uge => "uge",
            IntPredicate::Ult => "ult",
            IntPredicate::Ule => "ule",
            IntPredicate::Sgt => "sgt",
            IntPredicate::Sge => "sge",
            IntPredicate::Slt => "slt",
            IntPredicate::Sle => "sle",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<IntPredicate> {
        Self::ALL.iter().copied().find(|p| p.mnemonic() == s)
    }
}

/// Floating-point comparison predicates (ordered subset plus `uno`/`ord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FloatPredicate {
    Oeq,
    One,
    Ogt,
    Oge,
    Olt,
    Ole,
    Ord,
    Uno,
    Ueq,
    Une,
}

impl FloatPredicate {
    /// All predicates.
    pub const ALL: [FloatPredicate; 10] = [
        FloatPredicate::Oeq,
        FloatPredicate::One,
        FloatPredicate::Ogt,
        FloatPredicate::Oge,
        FloatPredicate::Olt,
        FloatPredicate::Ole,
        FloatPredicate::Ord,
        FloatPredicate::Uno,
        FloatPredicate::Ueq,
        FloatPredicate::Une,
    ];

    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatPredicate::Oeq => "oeq",
            FloatPredicate::One => "one",
            FloatPredicate::Ogt => "ogt",
            FloatPredicate::Oge => "oge",
            FloatPredicate::Olt => "olt",
            FloatPredicate::Ole => "ole",
            FloatPredicate::Ord => "ord",
            FloatPredicate::Uno => "uno",
            FloatPredicate::Ueq => "ueq",
            FloatPredicate::Une => "une",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<FloatPredicate> {
        Self::ALL.iter().copied().find(|p| p.mnemonic() == s)
    }
}

/// A clause of a `landingpad` instruction: which exceptions it catches.
///
/// We model clauses symbolically: a catch clause names a type-info symbol,
/// a filter clause lists the allowed symbols. Equivalence of landing pads
/// (§III-D) requires *identical* clause lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LandingPadClause {
    /// `catch` of a specific exception type-info symbol.
    Catch(String),
    /// `filter` restricting thrown types to the listed symbols.
    Filter(Vec<String>),
}

/// Opcode-specific payload that does not fit the homogeneous operand list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum ExtraData {
    /// No extra payload.
    #[default]
    None,
    /// `icmp` predicate.
    ICmp(IntPredicate),
    /// `fcmp` predicate.
    FCmp(FloatPredicate),
    /// `alloca`: the allocated (pointee) type.
    Alloca {
        /// Type being allocated; the result type is a pointer to it.
        allocated: TyId,
    },
    /// `getelementptr`: the source element type indices step through.
    Gep {
        /// Type of the element the base pointer addresses.
        source_elem: TyId,
    },
    /// `phi`: incoming blocks, parallel to the operand list.
    Phi {
        /// `incoming[i]` is the predecessor supplying operand `i`.
        incoming: Vec<BlockId>,
    },
    /// `landingpad`: catch/filter clauses and the cleanup flag.
    LandingPad {
        /// Clause list; order matters for equivalence.
        clauses: Vec<LandingPadClause>,
        /// Whether the pad is a cleanup pad.
        cleanup: bool,
    },
    /// `extractvalue` / `insertvalue`: constant aggregate indices.
    AggIndices(Vec<u32>),
}

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub opcode: Opcode,
    /// Result type (`void` for instructions without a result).
    pub ty: TyId,
    /// Operand list; see [`Opcode`] for per-opcode conventions.
    pub operands: Vec<Value>,
    /// Opcode-specific payload.
    pub extra: ExtraData,
    /// Owning block (maintained by [`crate::Function`] mutators).
    pub parent: BlockId,
}

impl Inst {
    /// Creates an instruction with no extra payload.
    pub fn new(opcode: Opcode, ty: TyId, operands: Vec<Value>) -> Inst {
        Inst { opcode, ty, operands, extra: ExtraData::None, parent: BlockId(u32::MAX) }
    }

    /// Creates an instruction with an extra payload.
    pub fn with_extra(opcode: Opcode, ty: TyId, operands: Vec<Value>, extra: ExtraData) -> Inst {
        Inst { opcode, ty, operands, extra, parent: BlockId(u32::MAX) }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        self.opcode.is_terminator()
    }

    /// Successor blocks if this is a terminator (empty otherwise).
    pub fn successors(&self) -> Vec<BlockId> {
        match self.opcode {
            Opcode::Br => self.operands.iter().filter_map(Value::as_block).collect(),
            Opcode::CondBr => self.operands.iter().filter_map(Value::as_block).collect(),
            Opcode::Switch => self.operands.iter().filter_map(Value::as_block).collect(),
            Opcode::Invoke => {
                // Last two operands are the normal and unwind destinations.
                let n = self.operands.len();
                self.operands[n.saturating_sub(2)..].iter().filter_map(Value::as_block).collect()
            }
            _ => Vec::new(),
        }
    }

    /// The icmp predicate, if any.
    pub fn int_predicate(&self) -> Option<IntPredicate> {
        match &self.extra {
            ExtraData::ICmp(p) => Some(*p),
            _ => None,
        }
    }

    /// The fcmp predicate, if any.
    pub fn float_predicate(&self) -> Option<FloatPredicate> {
        match &self.extra {
            ExtraData::FCmp(p) => Some(*p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeStore;
    use crate::value::BlockId;

    #[test]
    fn all_opcodes_have_unique_mnemonics() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::COUNT, 49);
    }

    #[test]
    fn opcode_index_is_dense() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Ret.is_terminator());
        assert!(Opcode::Invoke.is_terminator());
        assert!(!Opcode::Call.is_terminator());
        assert!(!Opcode::Add.is_terminator());
    }

    #[test]
    fn commutativity() {
        assert!(Opcode::Add.is_commutative());
        assert!(Opcode::FMul.is_commutative());
        assert!(!Opcode::Sub.is_commutative());
        assert!(!Opcode::SDiv.is_commutative());
        assert!(IntPredicate::Eq.is_commutative());
        assert!(!IntPredicate::Slt.is_commutative());
    }

    #[test]
    fn predicate_swapping() {
        assert_eq!(IntPredicate::Slt.swapped(), IntPredicate::Sgt);
        assert_eq!(IntPredicate::Eq.swapped(), IntPredicate::Eq);
        for p in IntPredicate::ALL {
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(IntPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
        for p in FloatPredicate::ALL {
            assert_eq!(FloatPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
    }

    #[test]
    fn successor_extraction() {
        let ts = TypeStore::new();
        let b0 = BlockId(0);
        let b1 = BlockId(1);
        let br = Inst::new(Opcode::Br, ts.void(), vec![Value::Block(b0)]);
        assert_eq!(br.successors(), vec![b0]);
        let cb = Inst::new(
            Opcode::CondBr,
            ts.void(),
            vec![Value::ConstInt { ty: ts.i1(), bits: 1 }, Value::Block(b0), Value::Block(b1)],
        );
        assert_eq!(cb.successors(), vec![b0, b1]);
        let add = Inst::new(Opcode::Add, ts.i32(), vec![]);
        assert!(add.successors().is_empty());
    }
}
