//! IR well-formedness verifier.
//!
//! The verifier is the main defence against code-generation bugs in the
//! merger: every merged function is verified before it is accepted. Checks
//! are structural and type-level; they deliberately mirror the subset of
//! LLVM's verifier that matters for this codebase.

use crate::function::Function;
use crate::inst::{ExtraData, Inst, Opcode};
use crate::module::Module;
use crate::types::Type;
use crate::value::{BlockId, FuncId, InstId, Value};
use std::error::Error;
use std::fmt;

/// A verification failure, pointing at the offending function and
/// instruction where possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending function name.
    pub func: String,
    /// Offending block, if applicable.
    pub block: Option<BlockId>,
    /// Offending instruction, if applicable.
    pub inst: Option<InstId>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}", self.func)?;
        if let Some(b) = self.block {
            write!(f, " {b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, " {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for VerifyError {}

/// Verifies every live function of `module`. Returns all violations found
/// (empty means the module is well-formed).
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for id in module.func_ids() {
        errs.extend(verify_function(module, id));
    }
    errs
}

/// Verifies a single function. See [`verify_module`].
pub fn verify_function(module: &Module, id: FuncId) -> Vec<VerifyError> {
    let f = module.func(id);
    let mut v = Verifier { module, f, errs: Vec::new() };
    v.run();
    v.errs
}

/// Convenience wrapper returning `Err` with the first violation.
///
/// # Errors
///
/// Returns the first [`VerifyError`] if the module is malformed.
pub fn ensure_valid(module: &Module) -> Result<(), VerifyError> {
    match verify_module(module).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

struct Verifier<'a> {
    module: &'a Module,
    f: &'a Function,
    errs: Vec<VerifyError>,
}

impl<'a> Verifier<'a> {
    fn err(&mut self, block: Option<BlockId>, inst: Option<InstId>, message: String) {
        self.errs.push(VerifyError { func: self.f.name.clone(), block, inst, message });
    }

    fn run(&mut self) {
        // Signature types must come from this module's store before
        // anything else: the per-instruction checks read the return and
        // parameter types, and a foreign id (e.g. a transplant that never
        // remapped fn_ty) would panic the store lookup.
        let ts = &self.module.types;
        let mut sig_tys = vec![self.f.fn_ty()];
        sig_tys.extend(self.f.params().iter().map(|p| p.ty));
        let mut sig_ok = true;
        for ty in sig_tys {
            if !ts.contains(ty) {
                self.err(
                    None,
                    None,
                    format!("signature type id {ty} is not in this module's store"),
                );
                sig_ok = false;
            }
        }
        if !sig_ok || self.f.is_declaration() {
            return;
        }
        let entry = self.f.entry();
        let preds = crate::cfg::Predecessors::compute(self.f);
        if preds.count(entry) != 0 {
            self.err(Some(entry), None, "entry block has predecessors".into());
        }
        for b in self.f.block_ids() {
            self.check_block(b);
        }
    }

    fn check_block(&mut self, b: BlockId) {
        let insts = self.f.block(b).insts.clone();
        if insts.is_empty() {
            self.err(Some(b), None, "empty block (missing terminator)".into());
            return;
        }
        for (pos, &iid) in insts.iter().enumerate() {
            if !self.f.is_live_inst(iid) {
                self.err(Some(b), Some(iid), "block references removed instruction".into());
                continue;
            }
            let inst = self.f.inst(iid);
            if inst.parent != b {
                self.err(Some(b), Some(iid), "instruction parent link is stale".into());
            }
            let is_last = pos + 1 == insts.len();
            if inst.is_terminator() && !is_last {
                self.err(Some(b), Some(iid), "terminator in the middle of a block".into());
            }
            if is_last && !inst.is_terminator() {
                self.err(Some(b), Some(iid), "block does not end in a terminator".into());
            }
            if inst.opcode == Opcode::LandingPad && pos != 0 {
                self.err(
                    Some(b),
                    Some(iid),
                    "landingpad must be the first instruction of its block".into(),
                );
            }
            if !self.check_tyids_in_range(b, iid, inst) {
                // Out-of-range type ids (a botched cross-module transplant)
                // would make the typing checks index past the store.
                continue;
            }
            self.check_operands(b, iid, inst);
            self.check_typing(b, iid, inst);
        }
    }

    /// Every [`crate::TyId`] an instruction carries must come from this
    /// module's store; ids from a foreign (e.g. scratch) store are reported
    /// instead of panicking deeper in the typing checks. Returns whether
    /// all ids were in range.
    fn check_tyids_in_range(&mut self, b: BlockId, iid: InstId, inst: &Inst) -> bool {
        let ts = &self.module.types;
        let mut tys = vec![inst.ty];
        for op in &inst.operands {
            match *op {
                Value::ConstInt { ty, .. }
                | Value::ConstFloat { ty, .. }
                | Value::ConstNull(ty)
                | Value::Undef(ty) => tys.push(ty),
                _ => {}
            }
        }
        match &inst.extra {
            ExtraData::Alloca { allocated } => tys.push(*allocated),
            ExtraData::Gep { source_elem } => tys.push(*source_elem),
            _ => {}
        }
        let mut ok = true;
        for ty in tys {
            if !ts.contains(ty) {
                self.err(Some(b), Some(iid), format!("type id {ty} is not in this module's store"));
                ok = false;
            }
        }
        ok
    }

    fn check_operands(&mut self, b: BlockId, iid: InstId, inst: &Inst) {
        for op in &inst.operands {
            match *op {
                Value::Inst(i) if !self.f.is_live_inst(i) => {
                    self.err(Some(b), Some(iid), format!("operand {i} was removed"));
                }
                Value::Param(p) if p as usize >= self.f.params().len() => {
                    self.err(Some(b), Some(iid), format!("parameter index {p} out of range"));
                }
                Value::Block(t) if !self.f.is_live_block(t) => {
                    self.err(Some(b), Some(iid), format!("branch target {t} was removed"));
                }
                Value::Func(fid) if !self.module.is_live(fid) => {
                    self.err(Some(b), Some(iid), format!("function operand {fid} was removed"));
                }
                _ => {}
            }
        }
    }

    fn value_ty(&self, v: Value) -> Option<crate::types::TyId> {
        match v {
            // A dangling function reference (removed, or a cross-module id
            // that was never remapped) must degrade to "unknown type":
            // `check_operands` already reported it, and indexing the
            // function table here would panic.
            Value::Func(fid) if !self.module.is_live(fid) => None,
            Value::Func(fid) => Some(self.module.func(fid).fn_ty()),
            Value::Inst(i) if !self.f.is_live_inst(i) => None,
            Value::Param(p) if p as usize >= self.f.params().len() => None,
            _ => Some(self.f.value_ty(v, &self.module.types)),
        }
    }

    fn check_typing(&mut self, b: BlockId, iid: InstId, inst: &Inst) {
        let ts = &self.module.types;
        let op = inst.opcode;
        let nops = inst.operands.len();
        let tys: Vec<_> = inst.operands.iter().map(|&v| self.value_ty(v)).collect();
        let fail = |this: &mut Self, msg: String| this.err(Some(b), Some(iid), msg);

        match op {
            _ if op.is_binary() => {
                if nops != 2 {
                    fail(self, format!("{} expects 2 operands, got {nops}", op.mnemonic()));
                } else if let (Some(a), Some(bb)) = (tys[0], tys[1]) {
                    if a != bb || a != inst.ty {
                        fail(
                            self,
                            format!(
                                "{}: operand/result types disagree ({}, {}) -> {}",
                                op.mnemonic(),
                                ts.display(a),
                                ts.display(bb),
                                ts.display(inst.ty)
                            ),
                        );
                    }
                    let is_float_op = matches!(
                        op,
                        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FRem
                    );
                    if is_float_op != ts.is_float(a) {
                        fail(self, format!("{}: wrong operand domain", op.mnemonic()));
                    }
                }
            }
            Opcode::ICmp => {
                if !matches!(inst.extra, ExtraData::ICmp(_)) {
                    fail(self, "icmp without predicate".into());
                }
                if ts.int_width(inst.ty) != Some(1) {
                    fail(self, "icmp must produce i1".into());
                }
                if let (Some(a), Some(c)) =
                    (tys.first().copied().flatten(), tys.get(1).copied().flatten())
                {
                    if a != c || !(ts.is_int(a) || ts.is_ptr(a)) {
                        fail(self, "icmp operands must be matching int/ptr types".into());
                    }
                }
            }
            Opcode::FCmp => {
                if !matches!(inst.extra, ExtraData::FCmp(_)) {
                    fail(self, "fcmp without predicate".into());
                }
                if let (Some(a), Some(c)) =
                    (tys.first().copied().flatten(), tys.get(1).copied().flatten())
                {
                    if a != c || !ts.is_float(a) {
                        fail(self, "fcmp operands must be matching float types".into());
                    }
                }
            }
            Opcode::Alloca => match &inst.extra {
                ExtraData::Alloca { allocated } => {
                    if ts.pointee(inst.ty) != Some(*allocated) {
                        fail(self, "alloca result must be pointer to allocated type".into());
                    }
                }
                _ => fail(self, "alloca without allocated type".into()),
            },
            Opcode::Load => {
                if nops != 1 {
                    fail(self, "load expects 1 operand".into());
                } else if let Some(pt) = tys[0] {
                    if ts.pointee(pt) != Some(inst.ty) {
                        fail(self, "load result type must match pointee".into());
                    }
                }
            }
            Opcode::Store => {
                if nops != 2 {
                    fail(self, "store expects 2 operands".into());
                } else if let (Some(vt), Some(pt)) = (tys[0], tys[1]) {
                    if ts.pointee(pt) != Some(vt) {
                        fail(self, "store value type must match pointee".into());
                    }
                }
            }
            Opcode::Gep => {
                if !matches!(inst.extra, ExtraData::Gep { .. }) {
                    fail(self, "gep without source element type".into());
                }
                if nops < 2 {
                    fail(self, "gep expects a pointer and at least one index".into());
                } else if let Some(pt) = tys[0] {
                    if !ts.is_ptr(pt) {
                        fail(self, "gep base must be a pointer".into());
                    }
                }
                if !ts.is_ptr(inst.ty) {
                    fail(self, "gep result must be a pointer".into());
                }
            }
            Opcode::BitCast => {
                if let Some(Some(from)) = tys.first() {
                    if !ts.can_lossless_bitcast(*from, inst.ty) {
                        fail(
                            self,
                            format!(
                                "bitcast between non-bitcastable types {} -> {}",
                                ts.display(*from),
                                ts.display(inst.ty)
                            ),
                        );
                    }
                }
            }
            Opcode::Trunc | Opcode::ZExt | Opcode::SExt => {
                if let Some(Some(from)) = tys.first() {
                    let (fw, tw) = (ts.int_width(*from), ts.int_width(inst.ty));
                    match (fw, tw) {
                        (Some(fw), Some(tw)) => {
                            let ok = if op == Opcode::Trunc { fw > tw } else { fw < tw };
                            if !ok {
                                fail(
                                    self,
                                    format!("{}: invalid widths {fw} -> {tw}", op.mnemonic()),
                                );
                            }
                        }
                        _ => fail(self, format!("{} requires integer types", op.mnemonic())),
                    }
                }
            }
            Opcode::Ret => {
                let expect = self.f.ret_ty(ts);
                let is_void = matches!(ts.get(expect), Type::Void);
                if is_void && nops != 0 {
                    fail(self, "ret in void function must not carry a value".into());
                }
                if !is_void {
                    if nops != 1 {
                        fail(self, "ret must carry exactly one value".into());
                    } else if let Some(rt) = tys[0] {
                        if rt != expect {
                            fail(
                                self,
                                format!(
                                    "ret type {} does not match signature {}",
                                    ts.display(rt),
                                    ts.display(expect)
                                ),
                            );
                        }
                    }
                }
            }
            Opcode::Br if (nops != 1 || inst.operands[0].as_block().is_none()) => {
                fail(self, "br expects a single label operand".into());
            }
            Opcode::CondBr => {
                let ok = nops == 3
                    && tys[0].map(|t| ts.int_width(t) == Some(1)).unwrap_or(false)
                    && inst.operands[1].as_block().is_some()
                    && inst.operands[2].as_block().is_some();
                if !ok {
                    fail(self, "condbr expects (i1, label, label)".into());
                }
            }
            Opcode::Switch => {
                if nops < 2 || !nops.is_multiple_of(2) {
                    fail(self, "switch expects cond, default, then (const, label) pairs".into());
                } else {
                    if inst.operands[1].as_block().is_none() {
                        fail(self, "switch default must be a label".into());
                    }
                    for pair in inst.operands[2..].chunks(2) {
                        let c_ok = matches!(pair[0], Value::ConstInt { .. });
                        let b_ok = pair.get(1).and_then(|v| v.as_block()).is_some();
                        if !c_ok || !b_ok {
                            fail(self, "switch case must be (const int, label)".into());
                            break;
                        }
                    }
                }
            }
            Opcode::Call | Opcode::Invoke => {
                let arg_end = if op == Opcode::Invoke { nops.saturating_sub(2) } else { nops };
                if nops == 0 {
                    fail(self, "call without callee".into());
                    return;
                }
                if op == Opcode::Invoke {
                    let blocks_ok = nops >= 3
                        && inst.operands[nops - 2].as_block().is_some()
                        && inst.operands[nops - 1].as_block().is_some();
                    if !blocks_ok {
                        fail(self, "invoke must end with normal and unwind labels".into());
                        return;
                    }
                    if let Some(ub) = inst.operands[nops - 1].as_block() {
                        if self.f.is_live_block(ub) && !self.f.is_landing_block(ub) {
                            fail(self, "invoke unwind target must be a landing block".into());
                        }
                    }
                }
                if let Value::Func(callee) = inst.operands[0] {
                    if self.module.is_live(callee) {
                        let fn_ty = self.module.func(callee).fn_ty();
                        let params = ts.fn_params(fn_ty).map(<[_]>::to_vec).unwrap_or_default();
                        let ret = ts.fn_ret(fn_ty).expect("function type");
                        if ret != inst.ty {
                            fail(self, "call result type must match callee return type".into());
                        }
                        let args = &inst.operands[1..arg_end];
                        if args.len() != params.len() {
                            fail(
                                self,
                                format!(
                                    "call passes {} args, callee expects {}",
                                    args.len(),
                                    params.len()
                                ),
                            );
                        } else {
                            for (k, (&a, &p)) in args.iter().zip(params.iter()).enumerate() {
                                if let Some(at) = self.value_ty(a) {
                                    if at != p {
                                        fail(
                                            self,
                                            format!(
                                                "call arg {k} has type {}, expected {}",
                                                ts.display(at),
                                                ts.display(p)
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Opcode::Select => {
                let ok = nops == 3
                    && tys[0].map(|t| ts.int_width(t) == Some(1)).unwrap_or(false)
                    && tys[1].is_some()
                    && tys[1] == tys[2]
                    && tys[1] == Some(inst.ty);
                if !ok {
                    fail(self, "select expects (i1, T, T) -> T".into());
                }
            }
            Opcode::Phi => match &inst.extra {
                ExtraData::Phi { incoming } => {
                    if incoming.len() != nops {
                        fail(self, "phi incoming blocks do not match operand count".into());
                    }
                    for &ib in incoming {
                        if !self.f.is_live_block(ib) {
                            fail(self, format!("phi incoming block {ib} was removed"));
                        }
                    }
                    for (k, ty) in tys.iter().enumerate() {
                        if let Some(t) = ty {
                            if *t != inst.ty {
                                fail(self, format!("phi operand {k} type mismatch"));
                            }
                        }
                    }
                }
                _ => fail(self, "phi without incoming block list".into()),
            },
            Opcode::LandingPad if !matches!(inst.extra, ExtraData::LandingPad { .. }) => {
                fail(self, "landingpad without clause data".into());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::IntPredicate;
    use crate::module::Module;

    fn ok_module() -> Module {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let f = m.create_function("max", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let t = b.block("t");
        let e = b.block("e");
        b.switch_to(entry);
        let c = b.icmp(IntPredicate::Sgt, Value::Param(0), Value::Param(1));
        b.condbr(c, t, e);
        b.switch_to(t);
        b.ret(Some(Value::Param(0)));
        b.switch_to(e);
        b.ret(Some(Value::Param(1)));
        m
    }

    #[test]
    fn valid_module_passes() {
        let m = ok_module();
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
        assert!(ensure_valid(&m).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        m.func_mut(f).append_inst(
            b,
            Inst::new(
                Opcode::Add,
                i32t,
                vec![Value::ConstInt { ty: i32t, bits: 1 }, Value::ConstInt { ty: i32t, bits: 2 }],
            ),
        );
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("terminator")), "{errs:?}");
    }

    #[test]
    fn ret_type_mismatch_detected() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let void = m.types.void();
        m.func_mut(f).append_inst(
            b,
            Inst::new(Opcode::Ret, void, vec![Value::ConstInt { ty: i64t, bits: 0 }]),
        );
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("ret type")), "{errs:?}");
    }

    #[test]
    fn binary_type_mismatch_detected() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let bad = m.func_mut(f).append_inst(
            b,
            Inst::new(
                Opcode::Add,
                i32t,
                vec![Value::ConstInt { ty: i32t, bits: 1 }, Value::ConstInt { ty: i64t, bits: 2 }],
            ),
        );
        let void = m.types.void();
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![Value::Inst(bad)]));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("disagree")), "{errs:?}");
    }

    #[test]
    fn call_arity_mismatch_detected() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let callee_ty = m.types.func(i32t, vec![i32t]);
        let callee = m.create_function("callee", callee_ty);
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Call, i32t, vec![Value::Func(callee)]));
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![]));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("args")), "{errs:?}");
    }

    #[test]
    fn entry_with_predecessors_detected() {
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        b.br(entry); // self-loop into entry
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("entry block")), "{errs:?}");
    }

    #[test]
    fn dangling_function_reference_reported_not_panicking() {
        // A call whose callee id points past the function table (e.g. a
        // cross-module FuncId that was never remapped by a transplant)
        // must produce a verify error, not an index panic.
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let bogus = FuncId::from_index(999);
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Call, void, vec![Value::Func(bogus)]));
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![]));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("was removed")), "{errs:?}");
    }

    /// A [`TyId`] that only a bigger, foreign store knows: fork the
    /// module's store the way a scratch module does (a copy-on-write
    /// clone of the frozen donor), intern `depth` pointer wrappers after
    /// the shared prefix, and return the last id — out of range for `m`.
    fn alien_ptr_ty(m: &Module, depth: usize) -> crate::types::TyId {
        let mut foreign = m.types.clone();
        foreign.freeze(); // exercise the COW path: new types append after the frozen prefix
        let mut alien = foreign.i64();
        for _ in 0..depth {
            alien = foreign.ptr(alien);
        }
        assert!(foreign.contains(alien));
        assert!(!m.types.contains(alien), "an id past the donor store must be foreign to it");
        alien
    }

    #[test]
    fn foreign_type_id_reported_not_panicking() {
        // A TyId from a bigger (scratch) store is out of range here; the
        // verifier must report it instead of indexing past the store.
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let alien = alien_ptr_ty(&m, 2);
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![Value::Undef(alien)]));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("not in this module's store")), "{errs:?}");
    }

    #[test]
    fn foreign_signature_type_reported_not_panicking() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let void = m.types.void();
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![Value::Param(0)]));
        // Point a parameter type at an id only a bigger store knows.
        m.func_mut(f).params_mut()[0].ty = alien_ptr_ty(&m, 1);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("signature type id")), "{errs:?}");
    }

    #[test]
    fn phi_removed_incoming_block_detected() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let dead = b.block("dead");
        let join = b.block("join");
        b.switch_to(entry);
        b.br(join);
        b.switch_to(dead);
        b.br(join);
        b.switch_to(join);
        let phi = b.phi(i32t, vec![(Value::Param(0), entry), (Value::Param(0), dead)]);
        b.ret(Some(phi));
        m.func_mut(f).remove_block(dead);
        // The phi still names `dead` as an incoming block.
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("incoming block")), "{errs:?}");
    }

    #[test]
    fn select_shape_checked() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        let c32 = Value::ConstInt { ty: i32t, bits: 1 };
        let sel =
            m.func_mut(f).append_inst(b, Inst::new(Opcode::Select, i32t, vec![c32, c32, c32]));
        let void = m.types.void();
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![Value::Inst(sel)]));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("select")), "{errs:?}");
    }
}
