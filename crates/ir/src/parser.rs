//! Parser for the textual form produced by [`crate::printer`].
//!
//! The grammar is exactly what the printer emits, which gives the crate a
//! round-trip property (`parse(print(m))` is structurally identical to `m`)
//! exercised by tests, and lets tests and examples write IR fixtures as
//! strings.

use crate::function::{Function, Linkage};
use crate::inst::{ExtraData, FloatPredicate, Inst, IntPredicate, LandingPadClause, Opcode};
use crate::module::Module;
use crate::types::TyId;
use crate::value::{BlockId, InstId, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure with a source span (1-based line, 1-based column) and
/// message; `column` is `0` only for errors constructed without position
/// information (no current producer does, but consumers should not rely
/// on that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column within that line (`0` = unknown), counted on the
    /// original line including indentation.
    pub column: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "parse error at line {}:{}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a whole module from the printer's textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first malformed line.
pub fn parse_module(text: &str) -> Result<Module> {
    let mut module = Module::new("parsed");
    // Pre-pass: create every function so call operands can be resolved
    // regardless of definition order.
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("; module ") {
            module.name = rest.trim().to_owned();
        }
        if line.starts_with("define ") || line.starts_with("declare ") {
            let indent = raw.len() - raw.trim_start().len();
            let header = parse_header(&mut module, line, lineno + 1, indent)?;
            let mut f = Function::new(header.name.clone(), header.fn_ty, &module.types);
            f.linkage = header.linkage;
            for (i, n) in header.param_names.iter().enumerate() {
                // Rename parameters to the declared names.
                let p = &mut f.params_mut()[i];
                p.name = n.clone();
            }
            module.add_function(f);
        }
    }
    // Body pass.
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = raw.trim();
        if !line.starts_with("define ") {
            continue;
        }
        let indent = raw.len() - raw.trim_start().len();
        let header = parse_header(&mut module, line, lineno + 1, indent)?;
        let fid = module.func_by_name(&header.name).expect("created in pre-pass");
        // Collect this function's body lines, remembering each line's
        // indentation so columns refer to the original source.
        let mut body: Vec<(usize, usize, String)> = Vec::new();
        for (ln, braw) in lines.by_ref() {
            let b = braw.trim();
            if b == "}" {
                break;
            }
            if !b.is_empty() && !b.starts_with(';') {
                let ind = braw.len() - braw.trim_start().len();
                body.push((ln + 1, ind, b.to_owned()));
            }
        }
        parse_body(&mut module, fid, &header, &body)?;
    }
    Ok(module)
}

struct Header {
    name: String,
    fn_ty: TyId,
    linkage: Linkage,
    param_names: Vec<String>,
}

fn err_at(line: usize, column: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, column, message: message.into() }
}

fn parse_header(module: &mut Module, line: &str, lineno: usize, col0: usize) -> Result<Header> {
    let rest = line
        .strip_prefix("define ")
        .or_else(|| line.strip_prefix("declare "))
        .ok_or_else(|| err_at(lineno, col0 + 1, "expected define/declare"))?;
    let (rest, linkage) = match rest.strip_prefix("internal ") {
        Some(r) => (r, Linkage::Internal),
        None => (rest, Linkage::External),
    };
    // 0-based column of `rest[0]` in the original line.
    let rest_col = col0 + (line.len() - rest.len());
    let at = rest.find('@').ok_or_else(|| err_at(lineno, rest_col + 1, "missing @name"))?;
    let ret_str = rest[..at].trim();
    let mut cur = Cursor::new_at(ret_str, lineno, trimmed_start(rest_col, &rest[..at]));
    let ret_ty = parse_type(module, &mut cur)?;
    let after = &rest[at + 1..];
    let after_col = rest_col + at + 1;
    let paren = after.find('(').ok_or_else(|| err_at(lineno, after_col + 1, "missing ("))?;
    let name = after[..paren].trim().to_owned();
    let close = after.rfind(')').ok_or_else(|| err_at(lineno, after_col + 1, "missing )"))?;
    let params_str = &after[paren + 1..close];
    let params_col = after_col + paren + 1;
    let mut param_tys = Vec::new();
    let mut param_names = Vec::new();
    for (off, part) in split_top_level(params_str) {
        let part_col = trimmed_start(params_col + off, &part);
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let pct =
            part.rfind('%').ok_or_else(|| err_at(lineno, part_col + 1, "param missing %name"))?;
        let mut tcur = Cursor::new_at(part[..pct].trim(), lineno, part_col);
        param_tys.push(parse_type(module, &mut tcur)?);
        param_names.push(part[pct + 1..].trim().to_owned());
    }
    let fn_ty = module.types.func(ret_ty, param_tys);
    Ok(Header { name, fn_ty, linkage, param_names })
}

fn parse_body(
    module: &mut Module,
    fid: crate::value::FuncId,
    header: &Header,
    body: &[(usize, usize, String)],
) -> Result<()> {
    // First sub-pass: create blocks and pre-assign instruction ids so that
    // forward references (branches, loop-carried φs) resolve.
    let mut block_by_name: HashMap<String, BlockId> = HashMap::new();
    let mut inst_by_name: HashMap<String, InstId> = HashMap::new();
    let mut next_inst = 0u32;
    for (ln, indent, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            let b = module.func_mut(fid).add_block(strip_block_index(label));
            if block_by_name.insert(label.to_owned(), b).is_some() {
                return Err(err_at(*ln, indent + 1, format!("duplicate label {label}")));
            }
        } else {
            if let Some(eq) = defining_name(line) {
                inst_by_name.insert(eq, InstId::from_index(next_inst as usize));
            }
            next_inst += 1;
        }
    }
    let mut param_by_name: HashMap<String, u32> = HashMap::new();
    for (i, n) in header.param_names.iter().enumerate() {
        param_by_name.insert(n.clone(), i as u32);
    }
    let ctx = NameCtx { block_by_name, inst_by_name, param_by_name };
    // Second sub-pass: parse instructions in order.
    let mut cur_block: Option<BlockId> = None;
    for (ln, indent, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            cur_block = Some(ctx.block_by_name[label]);
            continue;
        }
        let block =
            cur_block.ok_or_else(|| err_at(*ln, indent + 1, "instruction before first label"))?;
        let inst = parse_inst(module, fid, &ctx, line, *ln, *indent)?;
        module.func_mut(fid).append_inst(block, inst);
    }
    Ok(())
}

fn strip_block_index(label: &str) -> String {
    match label.rsplit_once('.') {
        Some((name, idx)) if idx.chars().all(|c| c.is_ascii_digit()) => name.to_owned(),
        _ => label.to_owned(),
    }
}

fn defining_name(line: &str) -> Option<String> {
    let eq = line.find(" = ")?;
    let lhs = line[..eq].trim();
    lhs.strip_prefix('%').map(str::to_owned)
}

struct NameCtx {
    block_by_name: HashMap<String, BlockId>,
    inst_by_name: HashMap<String, InstId>,
    param_by_name: HashMap<String, u32>,
}

/// Splits on top-level commas (ignoring commas inside `[]`, `{}`, `()`),
/// returning each part with the byte offset of its first character in
/// `s`, so callers can report real columns inside the parts.
fn split_top_level(s: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut start = 0usize;
    for (k, c) in s.char_indices() {
        match c {
            '[' | '{' | '(' | '<' => depth += 1,
            ']' | '}' | ')' | '>' => depth -= 1,
            ',' if depth == 0 => {
                out.push((start, std::mem::take(&mut cur)));
                start = k + 1;
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push((start, cur));
    }
    out
}

/// Byte offset of the first non-space character of `part` relative to the
/// split offset (parts keep their leading whitespace).
fn trimmed_start(off: usize, part: &str) -> usize {
    off + (part.len() - part.trim_start().len())
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
    /// 0-based column of `s[0]` within the original source line, so
    /// errors report real columns even when parsing a sub-slice.
    col0: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over a sub-slice that starts at column `col0` (0-based)
    /// of the original line.
    fn new_at(s: &'a str, line: usize, col0: usize) -> Cursor<'a> {
        Cursor { s, pos: 0, line, col0 }
    }
    /// 1-based column of the next unparsed character.
    fn column(&self) -> usize {
        self.col0 + self.pos + 1
    }
    /// 0-based column of [`Cursor::rest`]'s first character — the base to
    /// hand to sub-cursors parsing a slice of the remainder.
    fn rest_base(&self) -> usize {
        self.col0 + self.pos
    }
    /// An error pointing at the current position.
    fn fail(&self, message: impl Into<String>) -> ParseError {
        err_at(self.line, self.column(), message)
    }
    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }
    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') {
            self.pos += 1;
        }
    }
    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, tok: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.fail(format!("expected {tok:?} at {:?}", self.rest())))
        }
    }
    fn word(&mut self) -> &'a str {
        self.skip_ws();
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '+')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        &self.s[start..self.pos]
    }
    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }
}

fn parse_type(module: &mut Module, cur: &mut Cursor<'_>) -> Result<TyId> {
    cur.skip_ws();
    let mut base = if cur.eat("<{") {
        let mut fields = Vec::new();
        loop {
            fields.push(parse_type(module, cur)?);
            if !cur.eat(",") {
                break;
            }
        }
        cur.expect("}>")?;
        module.types.packed_struct(fields)
    } else if cur.eat("{") {
        let mut fields = Vec::new();
        loop {
            fields.push(parse_type(module, cur)?);
            if !cur.eat(",") {
                break;
            }
        }
        cur.expect("}")?;
        module.types.struct_(fields)
    } else if cur.eat("[") {
        cur.skip_ws();
        let len_col = cur.column();
        let n: u64 = cur.word().parse().map_err(|_| err_at(cur.line, len_col, "array length"))?;
        cur.expect("x")?;
        let elem = parse_type(module, cur)?;
        cur.expect("]")?;
        module.types.array(elem, n)
    } else {
        cur.skip_ws();
        let ty_col = cur.column();
        let w = cur.word();
        match w {
            "void" => module.types.void(),
            "label" => module.types.label(),
            "half" => module.types.half(),
            "float" => module.types.f32(),
            "double" => module.types.f64(),
            _ if w.starts_with('i') => {
                let bits: u32 = w[1..]
                    .parse()
                    .map_err(|_| err_at(cur.line, ty_col, format!("bad type {w:?}")))?;
                module.types.int(bits)
            }
            _ => return Err(err_at(cur.line, ty_col, format!("unknown type {w:?}"))),
        }
    };
    loop {
        cur.skip_ws();
        if cur.rest().starts_with('*') {
            cur.pos += 1;
            base = module.types.ptr(base);
        } else {
            break;
        }
    }
    Ok(base)
}

fn parse_value(module: &mut Module, ctx: &NameCtx, cur: &mut Cursor<'_>) -> Result<Value> {
    cur.skip_ws();
    if cur.eat("label") {
        cur.expect("%")?;
        let name_col = cur.column() - 1; // include the consumed '%'
        let name = cur.word();
        let b = ctx
            .block_by_name
            .get(name)
            .ok_or_else(|| err_at(cur.line, name_col, format!("unknown label %{name}")))?;
        return Ok(Value::Block(*b));
    }
    if cur.rest().starts_with('@') {
        let name_col = cur.column();
        cur.pos += 1;
        let name = cur.word();
        let f = module
            .func_by_name(name)
            .ok_or_else(|| err_at(cur.line, name_col, format!("unknown function @{name}")))?;
        return Ok(Value::Func(f));
    }
    let ty = parse_type(module, cur)?;
    cur.skip_ws();
    if cur.eat("%") {
        let name_col = cur.column() - 1;
        let name = cur.word();
        if let Some(&i) = ctx.inst_by_name.get(name) {
            return Ok(Value::Inst(i));
        }
        if let Some(&p) = ctx.param_by_name.get(name) {
            return Ok(Value::Param(p));
        }
        return Err(err_at(cur.line, name_col, format!("unknown value %{name}")));
    }
    if cur.eat("null") {
        return Ok(Value::ConstNull(ty));
    }
    if cur.eat("undef") {
        return Ok(Value::Undef(ty));
    }
    cur.skip_ws();
    let const_col = cur.column();
    let w = cur.word();
    if module.types.is_float(ty) {
        let x: f64 =
            w.parse().map_err(|_| err_at(cur.line, const_col, format!("bad float {w:?}")))?;
        let bits = if module.types.display(ty) == "float" {
            (x as f32).to_bits() as u64
        } else {
            x.to_bits()
        };
        return Ok(Value::ConstFloat { ty, bits });
    }
    let v: i64 = w.parse().map_err(|_| err_at(cur.line, const_col, format!("bad int {w:?}")))?;
    let width = module.types.int_width(ty).unwrap_or(64);
    let bits = if width >= 64 { v as u64 } else { (v as u64) & ((1u64 << width) - 1) };
    Ok(Value::ConstInt { ty, bits })
}

fn parse_values_csv(
    module: &mut Module,
    ctx: &NameCtx,
    s: &str,
    line: usize,
    col0: usize,
) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    for (off, part) in split_top_level(s) {
        let part_col = trimmed_start(col0 + off, &part);
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut cur = Cursor::new_at(part, line, part_col);
        out.push(parse_value(module, ctx, &mut cur)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn parse_inst(
    module: &mut Module,
    fid: crate::value::FuncId,
    ctx: &NameCtx,
    line: &str,
    ln: usize,
    col0: usize,
) -> Result<Inst> {
    let (body, body_col) = match line.find(" = ") {
        Some(eq) if line.starts_with('%') => (&line[eq + 3..], col0 + eq + 3),
        _ => (line, col0),
    };
    let mut cur = Cursor::new_at(body, ln, body_col);
    cur.skip_ws();
    let mnemonic_col = cur.column();
    let mnemonic = cur.word().to_owned();
    let void = module.types.void();
    let op = Opcode::from_mnemonic(&mnemonic)
        .ok_or_else(|| err_at(ln, mnemonic_col, format!("unknown opcode {mnemonic:?}")))?;
    let inst = match op {
        Opcode::Ret => {
            if cur.eat("void") && cur.at_end() {
                Inst::new(Opcode::Ret, void, vec![])
            } else {
                let v = parse_value(module, ctx, &mut cur)?;
                Inst::new(Opcode::Ret, void, vec![v])
            }
        }
        Opcode::Br
        | Opcode::CondBr
        | Opcode::Switch
        | Opcode::Store
        | Opcode::Select
        | Opcode::Resume => {
            let vals = parse_values_csv(module, ctx, cur.rest(), ln, cur.rest_base())?;
            let ty = match op {
                Opcode::Select => value_ty_in(module, fid, vals[1]),
                _ => void,
            };
            Inst::new(op, ty, vals)
        }
        Opcode::Unreachable => Inst::new(op, void, vec![]),
        Opcode::ICmp => {
            cur.skip_ws();
            let pred_col = cur.column();
            let p = IntPredicate::from_mnemonic(cur.word())
                .ok_or_else(|| err_at(ln, pred_col, "bad icmp predicate"))?;
            let vals = parse_values_csv(module, ctx, cur.rest(), ln, cur.rest_base())?;
            Inst::with_extra(op, module.types.i1(), vals, ExtraData::ICmp(p))
        }
        Opcode::FCmp => {
            cur.skip_ws();
            let pred_col = cur.column();
            let p = FloatPredicate::from_mnemonic(cur.word())
                .ok_or_else(|| err_at(ln, pred_col, "bad fcmp predicate"))?;
            let vals = parse_values_csv(module, ctx, cur.rest(), ln, cur.rest_base())?;
            Inst::with_extra(op, module.types.i1(), vals, ExtraData::FCmp(p))
        }
        Opcode::Alloca => {
            let ty = parse_type(module, &mut cur)?;
            let ptr = module.types.ptr(ty);
            Inst::with_extra(op, ptr, vec![], ExtraData::Alloca { allocated: ty })
        }
        Opcode::Load => {
            let v_col = cur.column();
            let v = parse_value(module, ctx, &mut cur)?;
            let pt = value_ty_in(module, fid, v);
            let pointee =
                module.types.pointee(pt).ok_or_else(|| err_at(ln, v_col, "load from non-ptr"))?;
            Inst::new(op, pointee, vec![v])
        }
        Opcode::Gep => {
            let src = parse_type(module, &mut cur)?;
            cur.expect("->")?;
            let res = parse_type(module, &mut cur)?;
            cur.expect(",")?;
            let vals = parse_values_csv(module, ctx, cur.rest(), ln, cur.rest_base())?;
            Inst::with_extra(op, res, vals, ExtraData::Gep { source_elem: src })
        }
        Opcode::Phi => {
            let ty = parse_type(module, &mut cur)?;
            let mut vals = Vec::new();
            let mut blocks = Vec::new();
            let parts_base = cur.rest_base();
            for (off, part) in split_top_level(cur.rest()) {
                let part_col = trimmed_start(parts_base + off, &part);
                let part = part.trim();
                let inner = part
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err_at(ln, part_col + 1, "phi pair"))?;
                let (vs, bs) =
                    inner.rsplit_once(',').ok_or_else(|| err_at(ln, part_col + 1, "phi pair"))?;
                let mut vc = Cursor::new_at(vs.trim(), ln, trimmed_start(part_col + 1, vs));
                vals.push(parse_value(module, ctx, &mut vc)?);
                let label_col = trimmed_start(part_col + 1 + vs.len() + 1, bs) + 1;
                let bname = bs
                    .trim()
                    .strip_prefix('%')
                    .ok_or_else(|| err_at(ln, label_col, "phi label"))?;
                blocks.push(
                    *ctx.block_by_name
                        .get(bname)
                        .ok_or_else(|| err_at(ln, label_col, format!("unknown label {bname}")))?,
                );
            }
            Inst::with_extra(op, ty, vals, ExtraData::Phi { incoming: blocks })
        }
        Opcode::LandingPad => {
            let ty = parse_type(module, &mut cur)?;
            let mut cleanup = false;
            let mut clauses = Vec::new();
            loop {
                if cur.eat("cleanup") {
                    cleanup = true;
                } else if cur.eat("catch") {
                    cur.expect("@")?;
                    clauses.push(LandingPadClause::Catch(cur.word().to_owned()));
                } else if cur.eat("filter") {
                    cur.expect("[")?;
                    let close = cur.rest().find(']').ok_or_else(|| cur.fail("filter missing ]"))?;
                    let syms = cur.rest()[..close]
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                    cur.pos += close + 1;
                    clauses.push(LandingPadClause::Filter(syms));
                } else {
                    break;
                }
            }
            Inst::with_extra(op, ty, vec![], ExtraData::LandingPad { clauses, cleanup })
        }
        Opcode::ExtractValue | Opcode::InsertValue => {
            let rest = cur.rest();
            let rest_base = cur.rest_base();
            let bracket = rest.rfind('[').ok_or_else(|| cur.fail("missing indices"))?;
            let idx_col = rest_base + bracket + 2;
            let idxs: Vec<u32> = rest[bracket + 1..]
                .trim_end_matches(']')
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| err_at(ln, idx_col, "bad index")))
                .collect::<Result<_>>()?;
            let vals = parse_values_csv(
                module,
                ctx,
                rest[..bracket].trim_end_matches(", "),
                ln,
                rest_base,
            )?;
            // Result type: for extractvalue we can't know without walking
            // the aggregate; printer includes it implicitly via load-like
            // usage. We recompute from the aggregate type.
            let ty = match op {
                Opcode::InsertValue => value_ty_in(module, fid, vals[0]),
                Opcode::ExtractValue => {
                    extract_result_ty(module, value_ty_in(module, fid, vals[0]), &idxs)
                        .ok_or_else(|| err_at(ln, idx_col, "bad extractvalue indices"))?
                }
                _ => unreachable!(),
            };
            Inst::with_extra(op, ty, vals, ExtraData::AggIndices(idxs))
        }
        Opcode::Call | Opcode::Invoke => {
            let ret = parse_type(module, &mut cur)?;
            cur.skip_ws();
            let rest = cur.rest();
            let rest_base = cur.rest_base();
            let paren = rest.find('(').ok_or_else(|| cur.fail("call missing ("))?;
            let mut callee_cur =
                Cursor::new_at(rest[..paren].trim(), ln, trimmed_start(rest_base, &rest[..paren]));
            let callee = parse_value(module, ctx, &mut callee_cur)?;
            let close = rest.rfind(')').ok_or_else(|| cur.fail("call missing )"))?;
            let mut operands = vec![callee];
            operands.extend(parse_values_csv(
                module,
                ctx,
                &rest[paren + 1..close],
                ln,
                rest_base + paren + 1,
            )?);
            if op == Opcode::Invoke {
                let tail = &rest[close + 1..];
                let tail_base = rest_base + close + 1;
                let to = tail
                    .find("to")
                    .ok_or_else(|| err_at(ln, tail_base + 1, "invoke missing to"))?;
                let unwind = tail
                    .find("unwind")
                    .ok_or_else(|| err_at(ln, tail_base + 1, "invoke missing unwind"))?;
                let ns = &tail[to + 2..unwind];
                let mut nc = Cursor::new_at(ns.trim(), ln, trimmed_start(tail_base + to + 2, ns));
                operands.push(parse_value(module, ctx, &mut nc)?);
                let us = &tail[unwind + 6..];
                let mut uc =
                    Cursor::new_at(us.trim(), ln, trimmed_start(tail_base + unwind + 6, us));
                operands.push(parse_value(module, ctx, &mut uc)?);
            }
            Inst::new(op, ret, operands)
        }
        cast if cast.is_cast() => {
            let rest = cur.rest();
            let rest_base = cur.rest_base();
            let to = rest.rfind(" to ").ok_or_else(|| cur.fail("cast missing to"))?;
            let mut vc =
                Cursor::new_at(rest[..to].trim(), ln, trimmed_start(rest_base, &rest[..to]));
            let v = parse_value(module, ctx, &mut vc)?;
            let ts = &rest[to + 4..];
            let mut tc = Cursor::new_at(ts.trim(), ln, trimmed_start(rest_base + to + 4, ts));
            let ty = parse_type(module, &mut tc)?;
            Inst::new(cast, ty, vec![v])
        }
        binop => {
            let vals = parse_values_csv(module, ctx, cur.rest(), ln, cur.rest_base())?;
            let ty = vals
                .first()
                .map(|&v| value_ty_in(module, fid, v))
                .ok_or_else(|| cur.fail("binary op without operands"))?;
            Inst::new(binop, ty, vals)
        }
    };
    Ok(inst)
}

fn value_ty_in(module: &Module, fid: crate::value::FuncId, v: Value) -> TyId {
    match v {
        Value::Func(f) => module.func(f).fn_ty(),
        Value::Inst(i) => {
            // Forward references during parsing: the instruction may not be
            // materialized yet; parsing order guarantees operands of
            // non-φ instructions are already present, and φ result types
            // come from the explicit type annotation, so this lookup is
            // only reached for defined instructions.
            module.func(fid).inst(i).ty
        }
        _ => module.func(fid).value_ty(v, &module.types),
    }
}

fn extract_result_ty(module: &Module, agg: TyId, idxs: &[u32]) -> Option<TyId> {
    let mut ty = agg;
    for &i in idxs {
        ty = match module.types.get(ty) {
            crate::types::Type::Struct { fields, .. } => *fields.get(i as usize)?,
            crate::types::Type::Array { elem, .. } => *elem,
            _ => return None,
        };
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    #[test]
    fn parses_simple_function() {
        let text = "\
define internal i32 @max(i32 %a, i32 %b) {
entry.0:
  %v0 = icmp sgt i32 %a, i32 %b
  condbr i1 %v0, label %t.1, label %e.2
t.1:
  ret i32 %a
e.2:
  ret i32 %b
}
";
        let m = parse_module(text).expect("parses");
        let f = m.func_by_name("max").expect("function exists");
        assert_eq!(m.func(f).inst_count(), 4);
        assert_eq!(m.func(f).block_count(), 3);
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
    }

    #[test]
    fn roundtrip_via_printer() {
        let mut m = Module::new("rt");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fn_ty = m.types.func(f64t, vec![i32t, f64t]);
        let f = m.create_function("mix", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let more = b.block("more");
        let out = b.block("out");
        b.switch_to(entry);
        let slot = b.alloca(f64t);
        b.store(Value::Param(1), slot);
        let c = b.icmp(IntPredicate::Slt, Value::Param(0), b.const_i32(10));
        b.condbr(c, more, out);
        b.switch_to(more);
        let x = b.load(slot);
        let y = b.fmul(x, b.const_f64(2.5));
        b.store(y, slot);
        b.br(out);
        b.switch_to(out);
        let r = b.load(slot);
        b.ret(Some(r));
        let text1 = print_module(&m);
        let m2 = parse_module(&text1).expect("roundtrip parse");
        let text2 = print_module(&m2);
        assert_eq!(text1, text2);
        assert!(verify_module(&m2).is_empty());
    }

    #[test]
    fn parses_calls_and_phis() {
        let text = "\
define internal i32 @callee(i32 %x) {
entry.0:
  ret i32 %x
}

define internal i32 @caller(i1 %c) {
entry.0:
  condbr i1 %c, label %a.1, label %b.2
a.1:
  %v1 = call i32 @callee(i32 1)
  br label %join.3
b.2:
  %v3 = call i32 @callee(i32 2)
  br label %join.3
join.3:
  %v5 = phi i32 [ i32 %v1, %a.1 ], [ i32 %v3, %b.2 ]
  ret i32 %v5
}
";
        let m = parse_module(text).expect("parses");
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
        let caller = m.func_by_name("caller").expect("exists");
        let f = m.func(caller);
        let phis = f.inst_ids().into_iter().filter(|&i| f.inst(i).opcode == Opcode::Phi).count();
        assert_eq!(phis, 1);
    }

    #[test]
    fn error_has_line_and_column() {
        let text = "\
define internal i32 @broken() {
entry.0:
  %v0 = frobnicate i32 1
}
";
        let e = parse_module(text).expect_err("should fail");
        assert_eq!(e.line, 3);
        // Column points at the mnemonic, counting the 2-space indent.
        assert_eq!(e.column, 9, "{e}");
        assert!(e.message.contains("frobnicate"));
        assert!(e.to_string().contains("line 3:9"), "{e}");
    }

    #[test]
    fn column_spans_point_into_operands() {
        // The bad operand is the unknown value %nope.
        let text = "\
define internal i32 @f(i32 %a) {
entry.0:
  %v0 = add i32 %a, i32 %nope
  ret i32 %v0
}
";
        let e = parse_module(text).expect_err("should fail");
        assert_eq!(e.line, 3);
        let col = text.lines().nth(2).expect("line 3").find("%nope").expect("present") + 1;
        assert_eq!(e.column, col, "{e}");
        assert!(e.message.contains("%nope"), "{e}");
    }

    #[test]
    fn header_type_errors_have_columns() {
        let text = "define internal wat @f() {\n}\n";
        let e = parse_module(text).expect_err("bad ret type");
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 17, "{e}");
    }

    #[test]
    fn parses_struct_and_array_types() {
        let text = "\
define internal { i32, double* } @agg([4 x i8]* %p) {
entry.0:
  ret { i32, double* } undef
}
";
        let m = parse_module(text).expect("parses");
        let f = m.func_by_name("agg").expect("exists");
        let ts = &m.types;
        assert_eq!(ts.display(m.func(f).ret_ty(ts)), "{ i32, double* }");
        assert_eq!(ts.display(m.func(f).params()[0].ty), "[4 x i8]*");
    }

    use crate::inst::IntPredicate;
}
