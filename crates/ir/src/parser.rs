//! Parser for the textual form produced by [`crate::printer`].
//!
//! The grammar is exactly what the printer emits, which gives the crate a
//! round-trip property (`parse(print(m))` is structurally identical to `m`)
//! exercised by tests, and lets tests and examples write IR fixtures as
//! strings.

use crate::function::{Function, Linkage};
use crate::inst::{ExtraData, FloatPredicate, Inst, IntPredicate, LandingPadClause, Opcode};
use crate::module::Module;
use crate::types::TyId;
use crate::value::{BlockId, InstId, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure with a line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a whole module from the printer's textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first malformed line.
pub fn parse_module(text: &str) -> Result<Module> {
    let mut module = Module::new("parsed");
    // Pre-pass: create every function so call operands can be resolved
    // regardless of definition order.
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("; module ") {
            module.name = rest.trim().to_owned();
        }
        if line.starts_with("define ") || line.starts_with("declare ") {
            let header = parse_header(&mut module, line, lineno + 1)?;
            let mut f = Function::new(header.name.clone(), header.fn_ty, &module.types);
            f.linkage = header.linkage;
            for (i, n) in header.param_names.iter().enumerate() {
                // Rename parameters to the declared names.
                let p = &mut f.params_mut()[i];
                p.name = n.clone();
            }
            module.add_function(f);
        }
    }
    // Body pass.
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = raw.trim();
        if !line.starts_with("define ") {
            continue;
        }
        let header = parse_header(&mut module, line, lineno + 1)?;
        let fid = module.func_by_name(&header.name).expect("created in pre-pass");
        // Collect this function's body lines.
        let mut body: Vec<(usize, String)> = Vec::new();
        for (ln, braw) in lines.by_ref() {
            let b = braw.trim();
            if b == "}" {
                break;
            }
            if !b.is_empty() && !b.starts_with(';') {
                body.push((ln + 1, b.to_owned()));
            }
        }
        parse_body(&mut module, fid, &header, &body)?;
    }
    Ok(module)
}

struct Header {
    name: String,
    fn_ty: TyId,
    linkage: Linkage,
    param_names: Vec<String>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_header(module: &mut Module, line: &str, lineno: usize) -> Result<Header> {
    let rest = line
        .strip_prefix("define ")
        .or_else(|| line.strip_prefix("declare "))
        .ok_or_else(|| err(lineno, "expected define/declare"))?;
    let (rest, linkage) = match rest.strip_prefix("internal ") {
        Some(r) => (r, Linkage::Internal),
        None => (rest, Linkage::External),
    };
    let at = rest.find('@').ok_or_else(|| err(lineno, "missing @name"))?;
    let ret_str = rest[..at].trim();
    let mut cur = Cursor::new(ret_str, lineno);
    let ret_ty = parse_type(module, &mut cur)?;
    let after = &rest[at + 1..];
    let paren = after.find('(').ok_or_else(|| err(lineno, "missing ("))?;
    let name = after[..paren].trim().to_owned();
    let close = after.rfind(')').ok_or_else(|| err(lineno, "missing )"))?;
    let params_str = &after[paren + 1..close];
    let mut param_tys = Vec::new();
    let mut param_names = Vec::new();
    for part in split_top_level(params_str) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let pct = part.rfind('%').ok_or_else(|| err(lineno, "param missing %name"))?;
        let mut tcur = Cursor::new(part[..pct].trim(), lineno);
        param_tys.push(parse_type(module, &mut tcur)?);
        param_names.push(part[pct + 1..].trim().to_owned());
    }
    let fn_ty = module.types.func(ret_ty, param_tys);
    Ok(Header { name, fn_ty, linkage, param_names })
}

fn parse_body(
    module: &mut Module,
    fid: crate::value::FuncId,
    header: &Header,
    body: &[(usize, String)],
) -> Result<()> {
    // First sub-pass: create blocks and pre-assign instruction ids so that
    // forward references (branches, loop-carried φs) resolve.
    let mut block_by_name: HashMap<String, BlockId> = HashMap::new();
    let mut inst_by_name: HashMap<String, InstId> = HashMap::new();
    let mut next_inst = 0u32;
    for (ln, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            let b = module.func_mut(fid).add_block(strip_block_index(label));
            if block_by_name.insert(label.to_owned(), b).is_some() {
                return Err(err(*ln, format!("duplicate label {label}")));
            }
        } else {
            if let Some(eq) = defining_name(line) {
                inst_by_name.insert(eq, InstId::from_index(next_inst as usize));
            }
            next_inst += 1;
        }
    }
    let mut param_by_name: HashMap<String, u32> = HashMap::new();
    for (i, n) in header.param_names.iter().enumerate() {
        param_by_name.insert(n.clone(), i as u32);
    }
    let ctx = NameCtx { block_by_name, inst_by_name, param_by_name };
    // Second sub-pass: parse instructions in order.
    let mut cur_block: Option<BlockId> = None;
    for (ln, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            cur_block = Some(ctx.block_by_name[label]);
            continue;
        }
        let block = cur_block.ok_or_else(|| err(*ln, "instruction before first label"))?;
        let inst = parse_inst(module, fid, &ctx, line, *ln)?;
        module.func_mut(fid).append_inst(block, inst);
    }
    Ok(())
}

fn strip_block_index(label: &str) -> String {
    match label.rsplit_once('.') {
        Some((name, idx)) if idx.chars().all(|c| c.is_ascii_digit()) => name.to_owned(),
        _ => label.to_owned(),
    }
}

fn defining_name(line: &str) -> Option<String> {
    let eq = line.find(" = ")?;
    let lhs = line[..eq].trim();
    lhs.strip_prefix('%').map(str::to_owned)
}

struct NameCtx {
    block_by_name: HashMap<String, BlockId>,
    inst_by_name: HashMap<String, InstId>,
    param_by_name: HashMap<String, u32>,
}

/// Splits on top-level commas (ignoring commas inside `[]`, `{}`, `()`).
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '{' | '(' | '<' => depth += 1,
            ']' | '}' | ')' | '>' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Cursor<'a> {
        Cursor { s, pos: 0, line }
    }
    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }
    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') {
            self.pos += 1;
        }
    }
    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, tok: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(err(self.line, format!("expected {tok:?} at {:?}", self.rest())))
        }
    }
    fn word(&mut self) -> &'a str {
        self.skip_ws();
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '+')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        &self.s[start..self.pos]
    }
    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }
}

fn parse_type(module: &mut Module, cur: &mut Cursor<'_>) -> Result<TyId> {
    cur.skip_ws();
    let mut base = if cur.eat("<{") {
        let mut fields = Vec::new();
        loop {
            fields.push(parse_type(module, cur)?);
            if !cur.eat(",") {
                break;
            }
        }
        cur.expect("}>")?;
        module.types.packed_struct(fields)
    } else if cur.eat("{") {
        let mut fields = Vec::new();
        loop {
            fields.push(parse_type(module, cur)?);
            if !cur.eat(",") {
                break;
            }
        }
        cur.expect("}")?;
        module.types.struct_(fields)
    } else if cur.eat("[") {
        let n: u64 = cur.word().parse().map_err(|_| err(cur.line, "array length"))?;
        cur.expect("x")?;
        let elem = parse_type(module, cur)?;
        cur.expect("]")?;
        module.types.array(elem, n)
    } else {
        let w = cur.word();
        match w {
            "void" => module.types.void(),
            "label" => module.types.label(),
            "half" => module.types.half(),
            "float" => module.types.f32(),
            "double" => module.types.f64(),
            _ if w.starts_with('i') => {
                let bits: u32 =
                    w[1..].parse().map_err(|_| err(cur.line, format!("bad type {w:?}")))?;
                module.types.int(bits)
            }
            _ => return Err(err(cur.line, format!("unknown type {w:?}"))),
        }
    };
    loop {
        cur.skip_ws();
        if cur.rest().starts_with('*') {
            cur.pos += 1;
            base = module.types.ptr(base);
        } else {
            break;
        }
    }
    Ok(base)
}

fn parse_value(module: &mut Module, ctx: &NameCtx, cur: &mut Cursor<'_>) -> Result<Value> {
    cur.skip_ws();
    if cur.eat("label") {
        cur.expect("%")?;
        let name = cur.word();
        let b = ctx
            .block_by_name
            .get(name)
            .ok_or_else(|| err(cur.line, format!("unknown label %{name}")))?;
        return Ok(Value::Block(*b));
    }
    if cur.rest().starts_with('@') {
        cur.pos += 1;
        let name = cur.word();
        let f = module
            .func_by_name(name)
            .ok_or_else(|| err(cur.line, format!("unknown function @{name}")))?;
        return Ok(Value::Func(f));
    }
    let ty = parse_type(module, cur)?;
    cur.skip_ws();
    if cur.eat("%") {
        let name = cur.word();
        if let Some(&i) = ctx.inst_by_name.get(name) {
            return Ok(Value::Inst(i));
        }
        if let Some(&p) = ctx.param_by_name.get(name) {
            return Ok(Value::Param(p));
        }
        return Err(err(cur.line, format!("unknown value %{name}")));
    }
    if cur.eat("null") {
        return Ok(Value::ConstNull(ty));
    }
    if cur.eat("undef") {
        return Ok(Value::Undef(ty));
    }
    let w = cur.word();
    if module.types.is_float(ty) {
        let x: f64 = w.parse().map_err(|_| err(cur.line, format!("bad float {w:?}")))?;
        let bits = if module.types.display(ty) == "float" {
            (x as f32).to_bits() as u64
        } else {
            x.to_bits()
        };
        return Ok(Value::ConstFloat { ty, bits });
    }
    let v: i64 = w.parse().map_err(|_| err(cur.line, format!("bad int {w:?}")))?;
    let width = module.types.int_width(ty).unwrap_or(64);
    let bits = if width >= 64 { v as u64 } else { (v as u64) & ((1u64 << width) - 1) };
    Ok(Value::ConstInt { ty, bits })
}

fn parse_values_csv(
    module: &mut Module,
    ctx: &NameCtx,
    s: &str,
    line: usize,
) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    for part in split_top_level(s) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut cur = Cursor::new(part, line);
        out.push(parse_value(module, ctx, &mut cur)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn parse_inst(
    module: &mut Module,
    fid: crate::value::FuncId,
    ctx: &NameCtx,
    line: &str,
    ln: usize,
) -> Result<Inst> {
    let body = match line.find(" = ") {
        Some(eq) if line.starts_with('%') => &line[eq + 3..],
        _ => line,
    };
    let mut cur = Cursor::new(body, ln);
    let mnemonic = cur.word().to_owned();
    let void = module.types.void();
    let op = Opcode::from_mnemonic(&mnemonic)
        .ok_or_else(|| err(ln, format!("unknown opcode {mnemonic:?}")))?;
    let inst = match op {
        Opcode::Ret => {
            if cur.eat("void") && cur.at_end() {
                Inst::new(Opcode::Ret, void, vec![])
            } else {
                let v = parse_value(module, ctx, &mut cur)?;
                Inst::new(Opcode::Ret, void, vec![v])
            }
        }
        Opcode::Br
        | Opcode::CondBr
        | Opcode::Switch
        | Opcode::Store
        | Opcode::Select
        | Opcode::Resume => {
            let vals = parse_values_csv(module, ctx, cur.rest(), ln)?;
            let ty = match op {
                Opcode::Select => value_ty_in(module, fid, vals[1]),
                _ => void,
            };
            Inst::new(op, ty, vals)
        }
        Opcode::Unreachable => Inst::new(op, void, vec![]),
        Opcode::ICmp => {
            let p = IntPredicate::from_mnemonic(cur.word())
                .ok_or_else(|| err(ln, "bad icmp predicate"))?;
            let vals = parse_values_csv(module, ctx, cur.rest(), ln)?;
            Inst::with_extra(op, module.types.i1(), vals, ExtraData::ICmp(p))
        }
        Opcode::FCmp => {
            let p = FloatPredicate::from_mnemonic(cur.word())
                .ok_or_else(|| err(ln, "bad fcmp predicate"))?;
            let vals = parse_values_csv(module, ctx, cur.rest(), ln)?;
            Inst::with_extra(op, module.types.i1(), vals, ExtraData::FCmp(p))
        }
        Opcode::Alloca => {
            let ty = parse_type(module, &mut cur)?;
            let ptr = module.types.ptr(ty);
            Inst::with_extra(op, ptr, vec![], ExtraData::Alloca { allocated: ty })
        }
        Opcode::Load => {
            let v = parse_value(module, ctx, &mut cur)?;
            let pt = value_ty_in(module, fid, v);
            let pointee = module.types.pointee(pt).ok_or_else(|| err(ln, "load from non-ptr"))?;
            Inst::new(op, pointee, vec![v])
        }
        Opcode::Gep => {
            let src = parse_type(module, &mut cur)?;
            cur.expect("->")?;
            let res = parse_type(module, &mut cur)?;
            cur.expect(",")?;
            let vals = parse_values_csv(module, ctx, cur.rest(), ln)?;
            Inst::with_extra(op, res, vals, ExtraData::Gep { source_elem: src })
        }
        Opcode::Phi => {
            let ty = parse_type(module, &mut cur)?;
            let mut vals = Vec::new();
            let mut blocks = Vec::new();
            for part in split_top_level(cur.rest()) {
                let part = part.trim();
                let inner = part
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(ln, "phi pair"))?;
                let (vs, bs) = inner.rsplit_once(',').ok_or_else(|| err(ln, "phi pair"))?;
                let mut vc = Cursor::new(vs.trim(), ln);
                vals.push(parse_value(module, ctx, &mut vc)?);
                let bname = bs.trim().strip_prefix('%').ok_or_else(|| err(ln, "phi label"))?;
                blocks.push(
                    *ctx.block_by_name
                        .get(bname)
                        .ok_or_else(|| err(ln, format!("unknown label {bname}")))?,
                );
            }
            Inst::with_extra(op, ty, vals, ExtraData::Phi { incoming: blocks })
        }
        Opcode::LandingPad => {
            let ty = parse_type(module, &mut cur)?;
            let mut cleanup = false;
            let mut clauses = Vec::new();
            loop {
                if cur.eat("cleanup") {
                    cleanup = true;
                } else if cur.eat("catch") {
                    cur.expect("@")?;
                    clauses.push(LandingPadClause::Catch(cur.word().to_owned()));
                } else if cur.eat("filter") {
                    cur.expect("[")?;
                    let close = cur.rest().find(']').ok_or_else(|| err(ln, "filter missing ]"))?;
                    let syms = cur.rest()[..close]
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                    cur.pos += close + 1;
                    clauses.push(LandingPadClause::Filter(syms));
                } else {
                    break;
                }
            }
            Inst::with_extra(op, ty, vec![], ExtraData::LandingPad { clauses, cleanup })
        }
        Opcode::ExtractValue | Opcode::InsertValue => {
            let rest = cur.rest();
            let bracket = rest.rfind('[').ok_or_else(|| err(ln, "missing indices"))?;
            let idxs: Vec<u32> = rest[bracket + 1..]
                .trim_end_matches(']')
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| err(ln, "bad index")))
                .collect::<Result<_>>()?;
            let vals = parse_values_csv(module, ctx, rest[..bracket].trim_end_matches(", "), ln)?;
            // Result type: for extractvalue we can't know without walking
            // the aggregate; printer includes it implicitly via load-like
            // usage. We recompute from the aggregate type.
            let ty = match op {
                Opcode::InsertValue => value_ty_in(module, fid, vals[0]),
                Opcode::ExtractValue => {
                    extract_result_ty(module, value_ty_in(module, fid, vals[0]), &idxs)
                        .ok_or_else(|| err(ln, "bad extractvalue indices"))?
                }
                _ => unreachable!(),
            };
            Inst::with_extra(op, ty, vals, ExtraData::AggIndices(idxs))
        }
        Opcode::Call | Opcode::Invoke => {
            let ret = parse_type(module, &mut cur)?;
            cur.skip_ws();
            let rest = cur.rest();
            let paren = rest.find('(').ok_or_else(|| err(ln, "call missing ("))?;
            let mut callee_cur = Cursor::new(rest[..paren].trim(), ln);
            let callee = parse_value(module, ctx, &mut callee_cur)?;
            let close = rest.rfind(')').ok_or_else(|| err(ln, "call missing )"))?;
            let mut operands = vec![callee];
            operands.extend(parse_values_csv(module, ctx, &rest[paren + 1..close], ln)?);
            if op == Opcode::Invoke {
                let tail = &rest[close + 1..];
                let to = tail.find("to").ok_or_else(|| err(ln, "invoke missing to"))?;
                let unwind = tail.find("unwind").ok_or_else(|| err(ln, "invoke missing unwind"))?;
                let mut nc = Cursor::new(tail[to + 2..unwind].trim(), ln);
                operands.push(parse_value(module, ctx, &mut nc)?);
                let mut uc = Cursor::new(tail[unwind + 6..].trim(), ln);
                operands.push(parse_value(module, ctx, &mut uc)?);
            }
            Inst::new(op, ret, operands)
        }
        cast if cast.is_cast() => {
            let rest = cur.rest();
            let to = rest.rfind(" to ").ok_or_else(|| err(ln, "cast missing to"))?;
            let mut vc = Cursor::new(rest[..to].trim(), ln);
            let v = parse_value(module, ctx, &mut vc)?;
            let mut tc = Cursor::new(rest[to + 4..].trim(), ln);
            let ty = parse_type(module, &mut tc)?;
            Inst::new(cast, ty, vec![v])
        }
        binop => {
            let vals = parse_values_csv(module, ctx, cur.rest(), ln)?;
            let ty = vals
                .first()
                .map(|&v| value_ty_in(module, fid, v))
                .ok_or_else(|| err(ln, "binary op without operands"))?;
            Inst::new(binop, ty, vals)
        }
    };
    Ok(inst)
}

fn value_ty_in(module: &Module, fid: crate::value::FuncId, v: Value) -> TyId {
    match v {
        Value::Func(f) => module.func(f).fn_ty(),
        Value::Inst(i) => {
            // Forward references during parsing: the instruction may not be
            // materialized yet; parsing order guarantees operands of
            // non-φ instructions are already present, and φ result types
            // come from the explicit type annotation, so this lookup is
            // only reached for defined instructions.
            module.func(fid).inst(i).ty
        }
        _ => module.func(fid).value_ty(v, &module.types),
    }
}

fn extract_result_ty(module: &Module, agg: TyId, idxs: &[u32]) -> Option<TyId> {
    let mut ty = agg;
    for &i in idxs {
        ty = match module.types.get(ty) {
            crate::types::Type::Struct { fields, .. } => *fields.get(i as usize)?,
            crate::types::Type::Array { elem, .. } => *elem,
            _ => return None,
        };
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    #[test]
    fn parses_simple_function() {
        let text = "\
define internal i32 @max(i32 %a, i32 %b) {
entry.0:
  %v0 = icmp sgt i32 %a, i32 %b
  condbr i1 %v0, label %t.1, label %e.2
t.1:
  ret i32 %a
e.2:
  ret i32 %b
}
";
        let m = parse_module(text).expect("parses");
        let f = m.func_by_name("max").expect("function exists");
        assert_eq!(m.func(f).inst_count(), 4);
        assert_eq!(m.func(f).block_count(), 3);
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
    }

    #[test]
    fn roundtrip_via_printer() {
        let mut m = Module::new("rt");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fn_ty = m.types.func(f64t, vec![i32t, f64t]);
        let f = m.create_function("mix", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let more = b.block("more");
        let out = b.block("out");
        b.switch_to(entry);
        let slot = b.alloca(f64t);
        b.store(Value::Param(1), slot);
        let c = b.icmp(IntPredicate::Slt, Value::Param(0), b.const_i32(10));
        b.condbr(c, more, out);
        b.switch_to(more);
        let x = b.load(slot);
        let y = b.fmul(x, b.const_f64(2.5));
        b.store(y, slot);
        b.br(out);
        b.switch_to(out);
        let r = b.load(slot);
        b.ret(Some(r));
        let text1 = print_module(&m);
        let m2 = parse_module(&text1).expect("roundtrip parse");
        let text2 = print_module(&m2);
        assert_eq!(text1, text2);
        assert!(verify_module(&m2).is_empty());
    }

    #[test]
    fn parses_calls_and_phis() {
        let text = "\
define internal i32 @callee(i32 %x) {
entry.0:
  ret i32 %x
}

define internal i32 @caller(i1 %c) {
entry.0:
  condbr i1 %c, label %a.1, label %b.2
a.1:
  %v1 = call i32 @callee(i32 1)
  br label %join.3
b.2:
  %v3 = call i32 @callee(i32 2)
  br label %join.3
join.3:
  %v5 = phi i32 [ i32 %v1, %a.1 ], [ i32 %v3, %b.2 ]
  ret i32 %v5
}
";
        let m = parse_module(text).expect("parses");
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
        let caller = m.func_by_name("caller").expect("exists");
        let f = m.func(caller);
        let phis = f.inst_ids().into_iter().filter(|&i| f.inst(i).opcode == Opcode::Phi).count();
        assert_eq!(phis, 1);
    }

    #[test]
    fn error_has_line_number() {
        let text = "\
define internal i32 @broken() {
entry.0:
  %v0 = frobnicate i32 1
}
";
        let e = parse_module(text).expect_err("should fail");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn parses_struct_and_array_types() {
        let text = "\
define internal { i32, double* } @agg([4 x i8]* %p) {
entry.0:
  ret { i32, double* } undef
}
";
        let m = parse_module(text).expect("parses");
        let f = m.func_by_name("agg").expect("exists");
        let ts = &m.types;
        assert_eq!(ts.display(m.func(f).ret_ty(ts)), "{ i32, double* }");
        assert_eq!(ts.display(m.func(f).params()[0].ty), "[4 x i8]*");
    }

    use crate::inst::IntPredicate;
}
