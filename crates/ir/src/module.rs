//! Modules: a set of functions sharing a [`TypeStore`].

use crate::function::Function;
use crate::types::{TyId, TypeStore};
use crate::value::{FuncId, Value};
use std::collections::HashMap;

/// A compilation unit: functions plus the interned type store they share.
///
/// Functions are tombstoned on removal so [`FuncId`]s stay stable.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (used in diagnostics and experiment reports).
    pub name: String,
    /// The shared type store.
    pub types: TypeStore,
    functions: Vec<Option<Function>>,
    by_name: HashMap<String, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            types: TypeStore::new(),
            functions: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds `func` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a live function with the same name already exists.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        assert!(!self.by_name.contains_key(&func.name), "duplicate function name {:?}", func.name);
        let id = FuncId::from_index(self.functions.len());
        self.by_name.insert(func.name.clone(), id);
        self.functions.push(Some(func));
        id
    }

    /// Convenience: creates an empty function with signature `fn_ty` and
    /// adds it.
    pub fn create_function(&mut self, name: impl Into<String>, fn_ty: TyId) -> FuncId {
        let f = Function::new(name, fn_ty, &self.types);
        self.add_function(f)
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if the function was removed.
    pub fn func(&self, id: FuncId) -> &Function {
        self.functions[id.index()].as_ref().expect("live function")
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if the function was removed.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        self.functions[id.index()].as_mut().expect("live function")
    }

    /// Mutable access to a function together with shared access to the
    /// type store — the borrow split `&mut self` methods cannot express.
    /// Used by code that rewrites one function body against pre-interned
    /// types (e.g. call-site rewriting).
    ///
    /// # Panics
    ///
    /// Panics if the function was removed.
    pub fn func_mut_with_types(&mut self, id: FuncId) -> (&mut Function, &TypeStore) {
        (self.functions[id.index()].as_mut().expect("live function"), &self.types)
    }

    /// Temporarily detaches the (distinct, live) functions `ids` from the
    /// module and hands them to `f` as a mutable slice, alongside shared
    /// access to the type store. This is the aliasing foundation of the
    /// partitioned parallel call-site rewrite: each detached function is
    /// owned exclusively by the slice, so disjoint elements can be
    /// mutated from different worker threads while the store is read
    /// concurrently. The functions are re-attached (same ids, same names)
    /// when `f` returns.
    ///
    /// While detached, the functions are invisible to [`Module::func`] /
    /// [`Module::is_live`]; `f` must not look them up through the module.
    ///
    /// # Panics
    ///
    /// Panics if any id is dead or repeated. If `f` panics, the unwound
    /// module is left without the detached functions.
    pub fn with_detached_functions<R>(
        &mut self,
        ids: &[FuncId],
        f: impl FnOnce(&TypeStore, &mut [Function]) -> R,
    ) -> R {
        let mut detached: Vec<Function> = ids
            .iter()
            .map(|&id| self.functions[id.index()].take().expect("live, distinct function"))
            .collect();
        let result = f(&self.types, &mut detached);
        for (&id, func) in ids.iter().zip(detached) {
            self.functions[id.index()] = Some(func);
        }
        result
    }

    /// Whether `id` refers to a function that has not been removed.
    pub fn is_live(&self, id: FuncId) -> bool {
        self.functions.get(id.index()).is_some_and(Option::is_some)
    }

    /// Ids of all live functions, in insertion order.
    pub fn func_ids(&self) -> Vec<FuncId> {
        (0..self.functions.len()).map(FuncId::from_index).filter(|&id| self.is_live(id)).collect()
    }

    /// Number of live functions.
    pub fn func_count(&self) -> usize {
        self.functions.iter().filter(|f| f.is_some()).count()
    }

    /// Length of the function arena, counting removed slots. Every
    /// function created from now on gets an index `>= func_arena_len()` —
    /// an O(1) high-water mark that lets a caller snapshot the module
    /// before a fallible mutation and sweep partially-built functions
    /// afterwards.
    pub fn func_arena_len(&self) -> usize {
        self.functions.len()
    }

    /// Looks up a live function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied().filter(|&id| self.is_live(id))
    }

    /// Removes `id` from the module. Call sites referring to it must be
    /// rewritten first (see [`Module::replace_fn_uses`]).
    pub fn remove_function(&mut self, id: FuncId) {
        if let Some(f) = self.functions[id.index()].take() {
            self.by_name.remove(&f.name);
        }
    }

    /// Replaces every use of function `from` as an operand (call sites,
    /// address references) with `to`, across the whole module.
    ///
    /// Note: this performs a *plain* substitution; when argument lists must
    /// change (merged functions take extra parameters) the caller rewrites
    /// call sites itself.
    pub fn replace_fn_uses(&mut self, from: FuncId, to: FuncId) {
        for slot in self.functions.iter_mut().flatten() {
            slot.replace_all_uses(Value::Func(from), Value::Func(to));
        }
    }

    /// Total number of instructions across live function bodies.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().flatten().map(Function::inst_count).sum()
    }

    /// Returns `(min, avg, max)` of defined-function sizes in instructions,
    /// as reported in Tables I/II of the paper. Declarations are skipped.
    pub fn size_stats(&self) -> (usize, f64, usize) {
        let sizes: Vec<usize> = self
            .functions
            .iter()
            .flatten()
            .filter(|f| !f.is_declaration())
            .map(Function::inst_count)
            .collect();
        if sizes.is_empty() {
            return (0, 0.0, 0);
        }
        let min = *sizes.iter().min().expect("non-empty");
        let max = *sizes.iter().max().expect("non-empty");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        (min, avg, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Opcode};

    #[test]
    fn add_lookup_remove() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![]);
        let a = m.create_function("a", fn_ty);
        let b = m.create_function("b", fn_ty);
        assert_eq!(m.func_count(), 2);
        assert_eq!(m.func_by_name("a"), Some(a));
        m.remove_function(a);
        assert!(!m.is_live(a));
        assert_eq!(m.func_by_name("a"), None);
        assert_eq!(m.func_ids(), vec![b]);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_rejected() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![]);
        m.create_function("a", fn_ty);
        m.create_function("a", fn_ty);
    }

    #[test]
    fn replace_fn_uses_rewrites_call_sites() {
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let callee = m.create_function("callee", fn_ty);
        let callee2 = m.create_function("callee2", fn_ty);
        let caller = m.create_function("caller", fn_ty);
        let b = m.func_mut(caller).add_block("entry");
        m.func_mut(caller).append_inst(b, Inst::new(Opcode::Call, void, vec![Value::Func(callee)]));
        m.func_mut(caller).append_inst(b, Inst::new(Opcode::Ret, void, vec![]));
        m.replace_fn_uses(callee, callee2);
        let f = m.func(caller);
        let first = f.block(b).insts[0];
        assert_eq!(f.inst(first).operands[0], Value::Func(callee2));
    }

    #[test]
    fn size_stats_skip_declarations() {
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        m.create_function("decl", fn_ty); // declaration, no body
        let f = m.create_function("def", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        m.func_mut(f).append_inst(b, Inst::new(Opcode::Ret, void, vec![]));
        let (min, avg, max) = m.size_stats();
        assert_eq!((min, max), (1, 1));
        assert!((avg - 1.0).abs() < 1e-9);
    }
}
