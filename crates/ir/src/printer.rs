//! Textual printer producing an LLVM-flavoured dump of modules and
//! functions. The output is deterministic and accepted back by
//! [`crate::parser`].

use crate::function::{Function, Linkage};
use crate::inst::{ExtraData, Inst, LandingPadClause, Opcode};
use crate::module::Module;
use crate::value::{BlockId, InstId, Value};
use std::fmt::Write as _;

/// Prints the whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for id in m.func_ids() {
        out.push('\n');
        out.push_str(&print_function(m, m.func(id)));
    }
    out
}

/// Prints one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let ts = &m.types;
    let mut out = String::new();
    let ret = ts.display(f.ret_ty(ts));
    let params = f
        .params()
        .iter()
        .map(|p| format!("{} %{}", ts.display(p.ty), p.name))
        .collect::<Vec<_>>()
        .join(", ");
    let linkage = match f.linkage {
        Linkage::Internal => "internal ",
        Linkage::External => "",
    };
    if f.is_declaration() {
        let _ = writeln!(out, "declare {linkage}{ret} @{}({params})", f.name);
        return out;
    }
    let _ = writeln!(out, "define {linkage}{ret} @{}({params}) {{", f.name);
    for b in f.block_ids() {
        let _ = writeln!(out, "{}:", block_name(f, b));
        for &i in &f.block(b).insts {
            let _ = writeln!(out, "  {}", print_inst(m, f, i));
        }
    }
    out.push_str("}\n");
    out
}

fn block_name(f: &Function, b: BlockId) -> String {
    let name = &f.block(b).name;
    if name.is_empty() {
        format!("bb{}", b.index())
    } else {
        format!("{name}.{}", b.index())
    }
}

/// Prints a value operand with its type prefix.
pub fn print_value(m: &Module, f: &Function, v: Value) -> String {
    let ts = &m.types;
    match v {
        Value::Inst(i) => format!("{} %v{}", ts.display(f.inst(i).ty), i.index()),
        Value::Param(p) => {
            let param = &f.params()[p as usize];
            format!("{} %{}", ts.display(param.ty), param.name)
        }
        Value::Block(b) => format!("label %{}", block_name(f, b)),
        Value::Func(fid) => format!("@{}", m.func(fid).name),
        Value::ConstInt { ty, bits } => format!("{} {}", ts.display(ty), bits as i64),
        Value::ConstFloat { ty, bits } => {
            if ts.display(ty) == "float" {
                format!("float {:?}", f32::from_bits(bits as u32))
            } else {
                format!("{} {:?}", ts.display(ty), f64::from_bits(bits))
            }
        }
        Value::ConstNull(ty) => format!("{} null", ts.display(ty)),
        Value::Undef(ty) => format!("{} undef", ts.display(ty)),
    }
}

/// Prints one instruction.
pub fn print_inst(m: &Module, f: &Function, id: InstId) -> String {
    let ts = &m.types;
    let inst: &Inst = f.inst(id);
    let ops = |r: std::ops::Range<usize>| -> String {
        inst.operands[r].iter().map(|&v| print_value(m, f, v)).collect::<Vec<_>>().join(", ")
    };
    let lhs = if matches!(ts.get(inst.ty), crate::types::Type::Void) || inst.opcode == Opcode::Store
    {
        String::new()
    } else {
        format!("%v{} = ", id.index())
    };
    let body = match inst.opcode {
        Opcode::ICmp => {
            let p = inst.int_predicate().expect("icmp predicate");
            format!("icmp {} {}", p.mnemonic(), ops(0..inst.operands.len()))
        }
        Opcode::FCmp => {
            let p = inst.float_predicate().expect("fcmp predicate");
            format!("fcmp {} {}", p.mnemonic(), ops(0..inst.operands.len()))
        }
        Opcode::Alloca => {
            let ExtraData::Alloca { allocated } = &inst.extra else { unreachable!() };
            format!("alloca {}", ts.display(*allocated))
        }
        Opcode::Gep => {
            let ExtraData::Gep { source_elem } = &inst.extra else { unreachable!() };
            format!(
                "getelementptr {} -> {}, {}",
                ts.display(*source_elem),
                ts.display(inst.ty),
                ops(0..inst.operands.len())
            )
        }
        Opcode::Phi => {
            let ExtraData::Phi { incoming } = &inst.extra else { unreachable!() };
            let pairs = inst
                .operands
                .iter()
                .zip(incoming)
                .map(|(&v, &b)| format!("[ {}, %{} ]", print_value(m, f, v), block_name(f, b)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("phi {} {}", ts.display(inst.ty), pairs)
        }
        Opcode::LandingPad => {
            let ExtraData::LandingPad { clauses, cleanup } = &inst.extra else { unreachable!() };
            let mut s = format!("landingpad {}", ts.display(inst.ty));
            if *cleanup {
                s.push_str(" cleanup");
            }
            for c in clauses {
                match c {
                    LandingPadClause::Catch(sym) => {
                        let _ = write!(s, " catch @{sym}");
                    }
                    LandingPadClause::Filter(syms) => {
                        let _ = write!(s, " filter [{}]", syms.join(", "));
                    }
                }
            }
            s
        }
        Opcode::ExtractValue | Opcode::InsertValue => {
            let ExtraData::AggIndices(idx) = &inst.extra else { unreachable!() };
            let idxs = idx.iter().map(u32::to_string).collect::<Vec<_>>().join(", ");
            format!("{} {}, [{}]", inst.opcode.mnemonic(), ops(0..inst.operands.len()), idxs)
        }
        Opcode::Call => {
            format!(
                "call {} {}({})",
                ts.display(inst.ty),
                print_value(m, f, inst.operands[0]),
                ops(1..inst.operands.len())
            )
        }
        Opcode::Invoke => {
            let n = inst.operands.len();
            format!(
                "invoke {} {}({}) to {} unwind {}",
                ts.display(inst.ty),
                print_value(m, f, inst.operands[0]),
                ops(1..n - 2),
                print_value(m, f, inst.operands[n - 2]),
                print_value(m, f, inst.operands[n - 1]),
            )
        }
        Opcode::Ret if inst.operands.is_empty() => "ret void".to_owned(),
        op if op.is_cast() => {
            format!("{} {} to {}", op.mnemonic(), ops(0..inst.operands.len()), ts.display(inst.ty))
        }
        op => format!("{} {}", op.mnemonic(), ops(0..inst.operands.len())),
    };
    format!("{lhs}{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::IntPredicate;
    use crate::module::Module;

    #[test]
    fn prints_a_function() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let f = m.create_function("max", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let t = b.block("then");
        let e = b.block("else");
        b.switch_to(entry);
        let c = b.icmp(IntPredicate::Sgt, Value::Param(0), Value::Param(1));
        b.condbr(c, t, e);
        b.switch_to(t);
        b.ret(Some(Value::Param(0)));
        b.switch_to(e);
        b.ret(Some(Value::Param(1)));
        let text = print_module(&m);
        assert!(text.contains("define internal i32 @max(i32 %a0, i32 %a1)"), "{text}");
        assert!(text.contains("icmp sgt i32 %a0, i32 %a1"), "{text}");
        assert!(text.contains("condbr"), "{text}");
        assert!(text.contains("ret i32 %a0"), "{text}");
    }

    #[test]
    fn prints_declarations() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![m.types.f64()]);
        m.create_function("ext", fn_ty);
        let text = print_module(&m);
        assert!(text.contains("declare internal void @ext(double %a0)"), "{text}");
    }

    #[test]
    fn prints_memory_ops() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let slot = b.alloca(i32t);
        b.store(b.const_i32(7), slot);
        let v = b.load(slot);
        b.ret(Some(v));
        let text = print_module(&m);
        assert!(text.contains("alloca i32"), "{text}");
        assert!(text.contains("store i32 7, i32* %v0"), "{text}");
        assert!(text.contains("load i32* %v0"), "{text}");
    }
}
