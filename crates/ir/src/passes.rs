//! Utility transformation passes.
//!
//! The FMSA paper assumes "the input functions have all their φ-functions
//! demoted to memory operations" (§III) — [`demote_phis`] is that pass
//! (LLVM's `reg2mem`). The small clean-up passes here are used by the
//! merging pipeline and by the workload generators.

use crate::cfg;
use crate::function::Function;
use crate::inst::{ExtraData, Inst, Opcode};
use crate::module::Module;
use crate::value::{FuncId, InstId, Value};

/// Demotes every φ-node of `func` to `alloca`/`store`/`load`.
///
/// For each φ, an `alloca` is placed in the entry block, a `store` of the
/// incoming value is inserted before the terminator of each predecessor,
/// and the φ is replaced by a `load` at its original position.
///
/// Returns the number of φ-nodes demoted.
pub fn demote_phis(module: &mut Module, func: FuncId) -> usize {
    let ts_void = module.types.void();
    let phis: Vec<InstId> = {
        let f = module.func(func);
        f.inst_ids().into_iter().filter(|&i| f.inst(i).opcode == Opcode::Phi).collect()
    };
    if phis.is_empty() {
        return 0;
    }
    let entry = module.func(func).entry();
    for phi in &phis {
        let (ty, incoming_vals, incoming_blocks) = {
            let inst = module.func(func).inst(*phi);
            let ExtraData::Phi { incoming } = &inst.extra else {
                unreachable!("phi has Phi extra")
            };
            (inst.ty, inst.operands.clone(), incoming.clone())
        };
        let ptr_ty = module.types.ptr(ty);
        let f = module.func_mut(func);
        // Alloca at the top of the entry block.
        let slot = f.insert_inst(
            entry,
            0,
            Inst::with_extra(Opcode::Alloca, ptr_ty, vec![], ExtraData::Alloca { allocated: ty }),
        );
        // Store incoming value before each predecessor's terminator.
        for (val, pred) in incoming_vals.iter().zip(incoming_blocks.iter()) {
            let term = f.terminator(*pred).expect("predecessor has a terminator");
            f.insert_before(term, Inst::new(Opcode::Store, ts_void, vec![*val, Value::Inst(slot)]));
        }
        // Replace the phi itself by a load at its position.
        let load = f.insert_before(*phi, Inst::new(Opcode::Load, ty, vec![Value::Inst(slot)]));
        f.replace_all_uses(Value::Inst(*phi), Value::Inst(load));
        f.remove_inst(*phi);
    }
    phis.len()
}

/// Demotes φ-nodes in every function of the module. Returns the total
/// number demoted.
pub fn demote_phis_module(module: &mut Module) -> usize {
    module.func_ids().into_iter().map(|f| demote_phis(module, f)).sum()
}

/// Removes blocks unreachable from the entry. Returns how many were
/// removed.
pub fn remove_unreachable_blocks(func: &mut Function) -> usize {
    if func.is_declaration() {
        return 0;
    }
    let dead = cfg::unreachable_blocks(func);
    let n = dead.len();
    for b in &dead {
        // Drop φ-incoming entries that referenced the dead block.
        let all: Vec<InstId> = func.inst_ids();
        for i in all {
            let inst = func.inst(i);
            if inst.opcode != Opcode::Phi {
                continue;
            }
            let ExtraData::Phi { incoming } = &inst.extra else { continue };
            if !incoming.contains(b) {
                continue;
            }
            let keep: Vec<usize> =
                incoming.iter().enumerate().filter(|(_, bb)| *bb != b).map(|(k, _)| k).collect();
            let inst = func.inst_mut(i);
            let ExtraData::Phi { incoming } = &mut inst.extra else { continue };
            let new_ops: Vec<Value> = keep.iter().map(|&k| inst.operands[k]).collect();
            let new_inc = keep.iter().map(|&k| incoming[k]).collect();
            inst.operands = new_ops;
            *incoming = new_inc;
        }
    }
    for b in dead {
        func.remove_block(b);
    }
    n
}

/// Dead-code elimination: removes side-effect-free instructions whose
/// results are never used, iterating to a fixed point. Returns how many
/// instructions were removed.
pub fn dce(func: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: std::collections::HashSet<InstId> = std::collections::HashSet::new();
        let ids = func.inst_ids();
        for &i in &ids {
            for op in &func.inst(i).operands {
                if let Value::Inst(dep) = op {
                    used.insert(*dep);
                }
            }
        }
        let mut changed = false;
        for i in ids {
            let inst = func.inst(i);
            if !inst.opcode.has_side_effects() && !used.contains(&i) {
                func.remove_inst(i);
                removed += 1;
                changed = true;
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// Threads trivial forwarding blocks: a block whose entire body is a single
/// unconditional `br` is removed and every branch to it retargeted at its
/// destination. Entry blocks and self-loops are left alone. Only valid on
/// φ-free functions (the merged functions FMSA generates are φ-free by
/// construction); functions containing φs are returned unchanged.
///
/// Returns the number of blocks threaded away.
pub fn thread_trivial_blocks(func: &mut Function) -> usize {
    if func.is_declaration() {
        return 0;
    }
    let has_phi = func.inst_ids().iter().any(|&i| func.inst(i).opcode == Opcode::Phi);
    if has_phi {
        return 0;
    }
    let mut threaded = 0;
    loop {
        let entry = func.entry();
        let mut victim: Option<(crate::value::BlockId, crate::value::BlockId)> = None;
        for b in func.block_ids() {
            if b == entry {
                continue;
            }
            let insts = &func.block(b).insts;
            if insts.len() != 1 {
                continue;
            }
            let only = func.inst(insts[0]);
            if only.opcode != Opcode::Br {
                continue;
            }
            let Some(target) = only.operands[0].as_block() else { continue };
            if target == b || target == entry {
                // Self-loops stay; retargeting into the entry block would
                // give it predecessors, which the verifier forbids.
                continue;
            }
            victim = Some((b, target));
            break;
        }
        let Some((b, target)) = victim else { break };
        func.replace_all_uses(Value::Block(b), Value::Block(target));
        func.remove_block(b);
        threaded += 1;
    }
    threaded
}

/// Canonicalizes the instruction order inside every block of `func`
/// without changing semantics: instructions are re-emitted in a
/// dependency-respecting topological order with deterministic
/// (opcode, type, original position) tie-breaking.
///
/// This implements the FMSA paper's stated future work — "allowing
/// instruction reordering to maximize the number of matches": two
/// functions whose blocks compute the same operations in different
/// textual orders linearize to identical sequences after
/// canonicalization, so the aligner matches more columns.
///
/// Constraints preserved:
/// * data dependencies (an instruction follows its in-block operands);
/// * memory/side-effect order (loads, stores, calls, and other effectful
///   instructions keep their relative order via a fence chain);
/// * the terminator stays last; a leading `landingpad` stays first.
///
/// Returns the number of blocks whose order changed.
pub fn canonicalize_block_order(func: &mut Function) -> usize {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if func.is_declaration() {
        return 0;
    }
    let mut changed = 0;
    for b in func.block_ids().collect::<Vec<_>>() {
        let insts = func.block(b).insts.clone();
        if insts.len() <= 2 {
            continue;
        }
        let n = insts.len();
        let index_of: std::collections::HashMap<InstId, usize> =
            insts.iter().enumerate().map(|(k, &i)| (i, k)).collect();
        // Build the dependency edges: operand defs in the same block, plus
        // a chain through side-effecting instructions.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_effect: Option<usize> = None;
        for (k, &iid) in insts.iter().enumerate() {
            let inst = func.inst(iid);
            for op in &inst.operands {
                if let Value::Inst(d) = op {
                    if let Some(&dk) = index_of.get(d) {
                        if dk != k {
                            preds[k].push(dk);
                        }
                    }
                }
            }
            let effectful = inst.opcode.has_side_effects() || inst.opcode == Opcode::Load;
            if effectful {
                if let Some(prev) = last_effect {
                    preds[k].push(prev);
                }
                last_effect = Some(k);
            }
        }
        // Pin the boundaries: the terminator follows everything, and a
        // leading landingpad precedes everything.
        let term = n - 1;
        if func.inst(insts[term]).is_terminator() {
            preds[term].extend(0..term);
        }
        if func.inst(insts[0]).opcode == Opcode::LandingPad {
            for p in preds.iter_mut().skip(1) {
                p.push(0);
            }
        }
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(k);
                indegree[k] += 1;
            }
        }
        // Kahn with a deterministic priority: opcode, then result type,
        // then original position.
        let key = |k: usize| {
            let inst = func.inst(insts[k]);
            (inst.opcode.index(), inst.ty.index(), k)
        };
        let mut heap: BinaryHeap<Reverse<(usize, usize, usize, usize)>> = BinaryHeap::new();
        for (k, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                let (o, t, p) = key(k);
                heap.push(Reverse((o, t, p, k)));
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(n);
        while let Some(Reverse((_, _, _, k))) = heap.pop() {
            order.push(k);
            for &s in &succs[k] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    let (o, t, p) = key(s);
                    heap.push(Reverse((o, t, p, s)));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "dependency graph is acyclic");
        let new_insts: Vec<InstId> = order.iter().map(|&k| insts[k]).collect();
        if new_insts != insts {
            changed += 1;
            func.block_mut(b).insts = new_insts;
        }
    }
    changed
}

/// Runs [`canonicalize_block_order`] on every function of the module.
pub fn canonicalize_module(module: &mut Module) -> usize {
    module.func_ids().into_iter().map(|f| canonicalize_block_order(module.func_mut(f))).sum()
}

/// Runs [`remove_unreachable_blocks`] then [`dce`] on every function.
pub fn cleanup_module(module: &mut Module) {
    for id in module.func_ids() {
        let f = module.func_mut(id);
        if !f.is_declaration() {
            remove_unreachable_blocks(f);
            dce(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::IntPredicate;
    use crate::verifier::verify_module;

    /// Builds `f(n) = n > 0 ? n : -n` using an explicit phi at the join.
    fn phi_module() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("abs", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let neg = b.block("neg");
        let join = b.block("join");
        b.switch_to(entry);
        let c = b.icmp(IntPredicate::Sgt, Value::Param(0), b.const_i32(0));
        b.condbr(c, join, neg);
        b.switch_to(neg);
        let negated = b.sub(b.const_i32(0), Value::Param(0));
        b.br(join);
        b.switch_to(join);
        let phi = b.phi(i32t, vec![(Value::Param(0), entry), (negated, neg)]);
        b.ret(Some(phi));
        (m, f)
    }

    #[test]
    fn demote_phis_produces_valid_ir_without_phis() {
        let (mut m, f) = phi_module();
        let n = demote_phis(&mut m, f);
        assert_eq!(n, 1);
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
        let func = m.func(f);
        assert!(func.inst_ids().iter().all(|&i| func.inst(i).opcode != Opcode::Phi));
        // alloca + 2 stores + 1 load replaced 1 phi.
        let count =
            |op: Opcode| func.inst_ids().iter().filter(|&&i| func.inst(i).opcode == op).count();
        assert_eq!(count(Opcode::Alloca), 1);
        assert_eq!(count(Opcode::Store), 2);
        assert_eq!(count(Opcode::Load), 1);
    }

    #[test]
    fn demote_phis_is_idempotent() {
        let (mut m, f) = phi_module();
        demote_phis(&mut m, f);
        assert_eq!(demote_phis(&mut m, f), 0);
    }

    #[test]
    fn dce_removes_unused_chain() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let a = b.add(Value::Param(0), b.const_i32(1));
        let _unused = b.mul(a, b.const_i32(2)); // dead, and makes `a` dead too
        b.ret(Some(Value::Param(0)));
        let removed = dce(m.func_mut(f));
        assert_eq!(removed, 2);
        assert_eq!(m.func(f).inst_count(), 1);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(m.types.void(), vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let slot = b.alloca(i32t);
        b.store(b.const_i32(1), slot);
        b.ret(None);
        let removed = dce(m.func_mut(f));
        assert_eq!(removed, 0, "store keeps alloca alive");
    }

    #[test]
    fn threading_removes_forwarding_blocks() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![m.types.i1()]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let fwd = b.block("fwd");
        let dest = b.block("dest");
        let other = b.block("other");
        b.switch_to(entry);
        b.condbr(Value::Param(0), fwd, other);
        b.switch_to(fwd);
        b.br(dest);
        b.switch_to(dest);
        b.ret(Some(b.const_i32(1)));
        b.switch_to(other);
        b.ret(Some(b.const_i32(2)));
        let n = thread_trivial_blocks(m.func_mut(f));
        assert_eq!(n, 1);
        assert!(!m.func(f).is_live_block(fwd));
        assert_eq!(m.func(f).successors(entry), vec![dest, other]);
        assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
    }

    #[test]
    fn threading_skips_entry_and_self_loops() {
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let looper = b.block("looper");
        b.switch_to(entry);
        b.br(looper);
        b.switch_to(looper);
        b.br(looper); // self loop, must not be threaded
        assert_eq!(thread_trivial_blocks(m.func_mut(f)), 0);
        assert!(m.func(f).is_live_block(looper));
    }

    #[test]
    fn unreachable_blocks_removed_and_phis_pruned() {
        let (mut m, f) = phi_module();
        let i32t = m.types.i32();
        // Add a dead block that feeds the phi, then prune.
        let dead = m.func_mut(f).add_block("dead");
        let join = m
            .func(f)
            .block_ids()
            .find(|b| m.func(f).block(*b).name == "join")
            .expect("join exists");
        {
            let mut b = FuncBuilder::new(&mut m, f);
            b.switch_to(dead);
            b.br(join);
        }
        // Register the dead block as a phi input.
        let phi = m
            .func(f)
            .inst_ids()
            .into_iter()
            .find(|&i| m.func(f).inst(i).opcode == Opcode::Phi)
            .expect("phi exists");
        {
            let inst = m.func_mut(f).inst_mut(phi);
            inst.operands.push(Value::ConstInt { ty: i32t, bits: 9 });
            let ExtraData::Phi { incoming } = &mut inst.extra else { panic!("phi extra") };
            incoming.push(dead);
        }
        let removed = remove_unreachable_blocks(m.func_mut(f));
        assert_eq!(removed, 1);
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
        let inst = m.func(f).inst(phi);
        assert_eq!(inst.operands.len(), 2, "dead incoming edge pruned");
    }
}

#[cfg(test)]
mod reorder_tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::value::Value;
    use crate::verifier::verify_module;

    /// Two blocks computing the same thing with swapped independent
    /// instruction order canonicalize to the same order.
    #[test]
    fn canonicalization_is_confluent() {
        let build = |swap: bool| -> Module {
            let mut m = Module::new("m");
            let i32t = m.types.i32();
            let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
            let f = m.create_function("f", fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            // Two independent computations, emitted in either order.
            let (x, y) = if swap {
                let y = b.mul(Value::Param(1), b.const_i32(7));
                let x = b.add(Value::Param(0), b.const_i32(3));
                (x, y)
            } else {
                let x = b.add(Value::Param(0), b.const_i32(3));
                let y = b.mul(Value::Param(1), b.const_i32(7));
                (x, y)
            };
            let z = b.xor(x, y);
            b.ret(Some(z));
            m
        };
        let mut m1 = build(false);
        let mut m2 = build(true);
        canonicalize_module(&mut m1);
        canonicalize_module(&mut m2);
        let f1 = m1.func_ids()[0];
        let f2 = m2.func_ids()[0];
        let ops1: Vec<_> =
            m1.func(f1).inst_ids().iter().map(|&i| m1.func(f1).inst(i).opcode).collect();
        let ops2: Vec<_> =
            m2.func(f2).inst_ids().iter().map(|&i| m2.func(f2).inst(i).opcode).collect();
        assert_eq!(ops1, ops2, "canonical orders agree");
        assert!(verify_module(&m1).is_empty());
        assert!(verify_module(&m2).is_empty());
    }

    #[test]
    fn memory_order_is_preserved() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let slot = b.alloca(i32t);
        b.store(b.const_i32(1), slot);
        b.store(b.const_i32(2), slot);
        let v = b.load(slot);
        b.ret(Some(v));
        canonicalize_block_order(m.func_mut(f));
        assert!(verify_module(&m).is_empty());
        // Behaviour check: the second store must still win.
        use fmsa_ir_self_test::run_expect;
        run_expect(&m, "f", 2);
    }

    // Tiny local interpreter shim for the memory-order test (the real
    // interpreter lives in fmsa-interp, which fmsa-ir cannot depend on).
    mod fmsa_ir_self_test {
        use crate::inst::Opcode;
        use crate::module::Module;
        use crate::value::Value;

        /// Executes a single-block alloca/store/load/ret function well
        /// enough to observe store ordering.
        pub fn run_expect(m: &Module, name: &str, expect: u64) {
            let f = m.func_by_name(name).expect("exists");
            let func = m.func(f);
            let mut mem: std::collections::HashMap<crate::value::InstId, u64> =
                std::collections::HashMap::new();
            let mut vals: std::collections::HashMap<crate::value::InstId, u64> =
                std::collections::HashMap::new();
            for iid in func.inst_ids() {
                let inst = func.inst(iid);
                match inst.opcode {
                    Opcode::Alloca => {
                        mem.insert(iid, 0);
                    }
                    Opcode::Store => {
                        let Value::ConstInt { bits, .. } = inst.operands[0] else {
                            panic!("const store")
                        };
                        let Value::Inst(slot) = inst.operands[1] else { panic!("slot") };
                        mem.insert(slot, bits);
                    }
                    Opcode::Load => {
                        let Value::Inst(slot) = inst.operands[0] else { panic!("slot") };
                        vals.insert(iid, mem[&slot]);
                    }
                    Opcode::Ret => {
                        let Value::Inst(v) = inst.operands[0] else { panic!("ret") };
                        assert_eq!(vals[&v], expect);
                        return;
                    }
                    _ => {}
                }
            }
            panic!("no ret executed");
        }
    }

    #[test]
    fn terminator_stays_last_and_landingpad_first() {
        use crate::inst::LandingPadClause;
        let mut m = Module::new("m");
        let void = m.types.void();
        let i64t = m.types.i64();
        let throw_ty = m.types.func(void, vec![i64t]);
        let thrower = m.create_function("thrower", throw_ty);
        let fn_ty = m.types.func(void, vec![]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let normal = b.block("normal");
        let lpad = b.block("lpad");
        b.switch_to(entry);
        b.invoke(thrower, vec![b.const_i64(1)], normal, lpad);
        b.switch_to(normal);
        b.ret(None);
        b.switch_to(lpad);
        let pad = b.landingpad(vec![LandingPadClause::Catch("x".into())], false);
        b.resume(pad);
        canonicalize_block_order(m.func_mut(f));
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
        let func = m.func(f);
        assert!(func.is_landing_block(lpad), "pad still first");
    }
}
