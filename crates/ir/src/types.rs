//! The IR type system.
//!
//! Types are immutable and interned inside a [`TypeStore`] owned by a
//! [`crate::Module`]. Interning makes type equality a cheap [`TyId`]
//! comparison and keeps instructions small.
//!
//! The type system mirrors the subset of LLVM v8 types that the FMSA paper
//! touches: `void`, integers of arbitrary width, the three common floating
//! point widths, typed pointers, arrays, (optionally packed) structs, and
//! function types. `label` is the type of basic-block references.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned reference to a [`Type`] inside a [`TypeStore`].
///
/// `TyId`s are only meaningful together with the store that produced them;
/// all functions of one [`crate::Module`] share a single store, so types can
/// be compared across functions by comparing ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyId(pub(crate) u32);

impl TyId {
    /// Raw index of this type inside its store. Mostly useful for debugging.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A structural description of an IR type.
///
/// Obtain instances through a [`TypeStore`]; the variants are public so that
/// pattern matching on `store.get(ty)` stays ergonomic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The empty type of functions that return nothing.
    Void,
    /// The type of basic-block labels (branch targets).
    Label,
    /// An integer of the given bit width (`i1`, `i8`, ..., `i64`, `i128`).
    Int(u32),
    /// IEEE-754 half precision (16 bit).
    Half,
    /// IEEE-754 single precision (32 bit).
    Float,
    /// IEEE-754 double precision (64 bit).
    Double,
    /// A typed pointer to `pointee` (LLVM v8-era pointers carry a pointee).
    Ptr {
        /// Type this pointer points to.
        pointee: TyId,
    },
    /// A fixed-length homogeneous array.
    Array {
        /// Element type.
        elem: TyId,
        /// Number of elements.
        len: u64,
    },
    /// A struct, possibly packed (no padding between fields).
    Struct {
        /// Field types, in declaration order.
        fields: Vec<TyId>,
        /// If `true`, fields are laid out without padding.
        packed: bool,
    },
    /// A function signature.
    Func {
        /// Return type (`Void` for `void` functions).
        ret: TyId,
        /// Parameter types, in order.
        params: Vec<TyId>,
        /// Whether the function accepts variadic trailing arguments.
        varargs: bool,
    },
}

/// The immutable, `Arc`-shared prefix of a copy-on-write [`TypeStore`]:
/// every type interned before the store's last [`TypeStore::freeze`],
/// together with the interner entries resolving them. Stores cloned from
/// a frozen store share this allocation instead of copying it.
#[derive(Debug)]
struct FrozenTypes {
    types: Vec<Type>,
    interner: HashMap<Type, TyId>,
}

/// Interning arena for [`Type`]s.
///
/// A fresh store eagerly contains the common primitive types so the
/// convenience accessors ([`TypeStore::i32`], [`TypeStore::f64`], ...) never
/// allocate.
///
/// # Copy-on-write sharing
///
/// The store is split into a *frozen prefix* (an immutable,
/// [`Arc`]-shared table built by [`TypeStore::freeze`]) and a *local
/// suffix* owned by this store alone. Interning semantics are identical
/// to a monolithic store — ids are assigned in interning order and
/// structural duplicates dedupe across the prefix/suffix boundary — but
/// [`Clone`] only copies the suffix, so cloning a freshly frozen store is
/// `O(1)` in the number of interned types. The parallel merge pipeline
/// freezes the main module's store once per generation so that every
/// speculative [`crate::transplant::ScratchModule`] shares the prefix
/// instead of deep-copying thousands of types (and their interner
/// entries) per speculation. A store that is never frozen behaves exactly
/// like the historical implementation: everything lives in the suffix and
/// `Clone` copies it all.
#[derive(Debug, Clone)]
pub struct TypeStore {
    /// Frozen shared prefix; `None` until the first [`TypeStore::freeze`].
    frozen: Option<Arc<FrozenTypes>>,
    /// Types interned after the last freeze, owned by this store alone.
    /// Ids continue where the prefix ends.
    suffix: Vec<Type>,
    /// Interner over the suffix only; the frozen prefix carries its own.
    suffix_interner: HashMap<Type, TyId>,
    // Pre-interned primitives.
    void: TyId,
    label: TyId,
    i1: TyId,
    i8: TyId,
    i16: TyId,
    i32: TyId,
    i64: TyId,
    half: TyId,
    float: TyId,
    double: TyId,
}

impl Default for TypeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeStore {
    /// Creates a store pre-populated with the primitive types.
    pub fn new() -> Self {
        let mut store = TypeStore {
            frozen: None,
            suffix: Vec::new(),
            suffix_interner: HashMap::new(),
            void: TyId(0),
            label: TyId(0),
            i1: TyId(0),
            i8: TyId(0),
            i16: TyId(0),
            i32: TyId(0),
            i64: TyId(0),
            half: TyId(0),
            float: TyId(0),
            double: TyId(0),
        };
        store.void = store.intern(Type::Void);
        store.label = store.intern(Type::Label);
        store.i1 = store.intern(Type::Int(1));
        store.i8 = store.intern(Type::Int(8));
        store.i16 = store.intern(Type::Int(16));
        store.i32 = store.intern(Type::Int(32));
        store.i64 = store.intern(Type::Int(64));
        store.half = store.intern(Type::Half);
        store.float = store.intern(Type::Float);
        store.double = store.intern(Type::Double);
        store
    }

    /// Interns `ty`, returning the canonical id for it.
    pub fn intern(&mut self, ty: Type) -> TyId {
        if let Some(id) = self.lookup(&ty) {
            return id;
        }
        let id = TyId(self.len() as u32);
        self.suffix.push(ty.clone());
        self.suffix_interner.insert(ty, id);
        id
    }

    /// The canonical id of `ty` if it is already interned, without
    /// interning it. Lets read-only contexts (e.g. the partitioned
    /// call-site rewrite, which holds `&TypeStore` on worker threads)
    /// resolve types that a sequential planning step interned up front.
    pub fn lookup(&self, ty: &Type) -> Option<TyId> {
        if let Some(f) = &self.frozen {
            if let Some(&id) = f.interner.get(ty) {
                return Some(id);
            }
        }
        self.suffix_interner.get(ty).copied()
    }

    /// Returns the structural description of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different store.
    pub fn get(&self, id: TyId) -> &Type {
        let idx = id.0 as usize;
        let base = self.frozen_len();
        if idx < base {
            &self.frozen.as_ref().expect("non-zero prefix implies a frozen table").types[idx]
        } else {
            &self.suffix[idx - base]
        }
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.frozen_len() + self.suffix.len()
    }

    /// Length of the frozen shared prefix (`0` for a store that was never
    /// [frozen](TypeStore::freeze)). Cloning this store copies only the
    /// `len() - frozen_len()` suffix types.
    pub fn frozen_len(&self) -> usize {
        self.frozen.as_ref().map_or(0, |f| f.types.len())
    }

    /// Whether every interned type sits in the frozen shared prefix, i.e.
    /// a [`Clone`] of this store right now copies no type at all.
    pub fn is_fully_frozen(&self) -> bool {
        self.frozen.is_some() && self.suffix.is_empty()
    }

    /// Whether this store and `other` share the same frozen prefix
    /// allocation (both cloned from the same freeze point). Diagnostic
    /// hook for tests and benches of the copy-on-write path.
    pub fn shares_frozen_with(&self, other: &TypeStore) -> bool {
        match (&self.frozen, &other.frozen) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Freezes the current contents into an immutable, `Arc`-shared
    /// prefix. Interning behaviour is completely unchanged — ids keep
    /// their values, duplicates keep deduping against the prefix, new
    /// types append after it — but every subsequent [`Clone`] shares the
    /// prefix instead of copying it, until the next type is interned
    /// (clones then copy just that suffix). Re-freezing folds the suffix
    /// interned since the last freeze into a new prefix; a no-op when the
    /// store is already fully frozen.
    ///
    /// The parallel pipeline calls this once per generation, from the
    /// sequential schedule stage, so the speculative scratch modules
    /// built by the prepare stage share the main store by reference.
    pub fn freeze(&mut self) {
        if self.is_fully_frozen() {
            return;
        }
        let mut types = Vec::with_capacity(self.len());
        let mut interner = match &self.frozen {
            Some(f) => {
                types.extend(f.types.iter().cloned());
                f.interner.clone()
            }
            None => HashMap::new(),
        };
        types.append(&mut self.suffix);
        interner.extend(self.suffix_interner.drain());
        self.frozen = Some(Arc::new(FrozenTypes { types, interner }));
    }

    /// Whether `id` refers to a type interned in *this* store. Ids from a
    /// different store with a larger type table are out of range here;
    /// [`TypeStore::get`] would panic on them. The verifier uses this to
    /// report cross-module type ids instead of crashing.
    pub fn contains(&self, id: TyId) -> bool {
        (id.0 as usize) < self.len()
    }

    /// Whether the store contains only the pre-interned primitives.
    pub fn is_empty(&self) -> bool {
        false // primitives are always present
    }

    /// The `void` type.
    pub fn void(&self) -> TyId {
        self.void
    }

    /// The `label` type.
    pub fn label(&self) -> TyId {
        self.label
    }

    /// The `i1` (boolean) type.
    pub fn i1(&self) -> TyId {
        self.i1
    }

    /// The `i8` type.
    pub fn i8(&self) -> TyId {
        self.i8
    }

    /// The `i16` type.
    pub fn i16(&self) -> TyId {
        self.i16
    }

    /// The `i32` type.
    pub fn i32(&self) -> TyId {
        self.i32
    }

    /// The `i64` type.
    pub fn i64(&self) -> TyId {
        self.i64
    }

    /// The `half` type.
    pub fn half(&self) -> TyId {
        self.half
    }

    /// The `float` type.
    pub fn f32(&self) -> TyId {
        self.float
    }

    /// The `double` type.
    pub fn f64(&self) -> TyId {
        self.double
    }

    /// Interns an integer type of the given bit width.
    pub fn int(&mut self, bits: u32) -> TyId {
        self.intern(Type::Int(bits))
    }

    /// Interns a pointer to `pointee`.
    pub fn ptr(&mut self, pointee: TyId) -> TyId {
        self.intern(Type::Ptr { pointee })
    }

    /// Interns an array type.
    pub fn array(&mut self, elem: TyId, len: u64) -> TyId {
        self.intern(Type::Array { elem, len })
    }

    /// Interns a non-packed struct type.
    pub fn struct_(&mut self, fields: Vec<TyId>) -> TyId {
        self.intern(Type::Struct { fields, packed: false })
    }

    /// Interns a packed struct type.
    pub fn packed_struct(&mut self, fields: Vec<TyId>) -> TyId {
        self.intern(Type::Struct { fields, packed: true })
    }

    /// Interns a non-variadic function type.
    pub fn func(&mut self, ret: TyId, params: Vec<TyId>) -> TyId {
        self.intern(Type::Func { ret, params, varargs: false })
    }

    /// Interns a variadic function type.
    pub fn varargs_func(&mut self, ret: TyId, params: Vec<TyId>) -> TyId {
        self.intern(Type::Func { ret, params, varargs: true })
    }

    /// Whether `ty` is a first-class value type (can be produced by an
    /// instruction and passed around): everything except `void`, `label`
    /// and bare function types.
    pub fn is_first_class(&self, ty: TyId) -> bool {
        !matches!(self.get(ty), Type::Void | Type::Label | Type::Func { .. })
    }

    /// Whether `ty` is an integer type.
    pub fn is_int(&self, ty: TyId) -> bool {
        matches!(self.get(ty), Type::Int(_))
    }

    /// Whether `ty` is a floating-point type.
    pub fn is_float(&self, ty: TyId) -> bool {
        matches!(self.get(ty), Type::Half | Type::Float | Type::Double)
    }

    /// Whether `ty` is a pointer type.
    pub fn is_ptr(&self, ty: TyId) -> bool {
        matches!(self.get(ty), Type::Ptr { .. })
    }

    /// Whether `ty` is an aggregate (array or struct).
    pub fn is_aggregate(&self, ty: TyId) -> bool {
        matches!(self.get(ty), Type::Array { .. } | Type::Struct { .. })
    }

    /// Integer bit width, if `ty` is an integer.
    pub fn int_width(&self, ty: TyId) -> Option<u32> {
        match self.get(ty) {
            Type::Int(w) => Some(*w),
            _ => None,
        }
    }

    /// Pointee type, if `ty` is a pointer.
    pub fn pointee(&self, ty: TyId) -> Option<TyId> {
        match self.get(ty) {
            Type::Ptr { pointee } => Some(*pointee),
            _ => None,
        }
    }

    /// Return type of a function type.
    pub fn fn_ret(&self, fn_ty: TyId) -> Option<TyId> {
        match self.get(fn_ty) {
            Type::Func { ret, .. } => Some(*ret),
            _ => None,
        }
    }

    /// Parameter types of a function type.
    pub fn fn_params(&self, fn_ty: TyId) -> Option<&[TyId]> {
        match self.get(fn_ty) {
            Type::Func { params, .. } => Some(params),
            _ => None,
        }
    }

    /// Size of `ty` in bits when stored in a register, following a 64-bit
    /// data layout (pointers are 64 bits). Returns `None` for types without
    /// a size (`void`, `label`, function types).
    pub fn bit_size(&self, ty: TyId) -> Option<u64> {
        match self.get(ty) {
            Type::Void | Type::Label | Type::Func { .. } => None,
            Type::Int(w) => Some(*w as u64),
            Type::Half => Some(16),
            Type::Float => Some(32),
            Type::Double => Some(64),
            Type::Ptr { .. } => Some(64),
            Type::Array { elem, len } => Some(self.byte_size(*elem)? * 8 * len),
            Type::Struct { .. } => Some(self.byte_size(ty)? * 8),
        }
    }

    /// Size of `ty` in bytes when stored in memory (integers round up to
    /// whole bytes; structs account for field alignment unless packed).
    pub fn byte_size(&self, ty: TyId) -> Option<u64> {
        match self.get(ty) {
            Type::Void | Type::Label | Type::Func { .. } => None,
            Type::Int(w) => Some((*w as u64).div_ceil(8)),
            Type::Half => Some(2),
            Type::Float => Some(4),
            Type::Double => Some(8),
            Type::Ptr { .. } => Some(8),
            Type::Array { elem, len } => Some(self.byte_size(*elem)? * len),
            Type::Struct { fields, packed } => {
                let mut size = 0u64;
                let mut max_align = 1u64;
                for &f in fields {
                    let fsize = self.byte_size(f)?;
                    let falign = if *packed { 1 } else { self.align_of(f)? };
                    max_align = max_align.max(falign);
                    size = round_up(size, falign) + fsize;
                }
                Some(round_up(size, max_align))
            }
        }
    }

    /// ABI alignment of `ty` in bytes (64-bit data layout).
    pub fn align_of(&self, ty: TyId) -> Option<u64> {
        match self.get(ty) {
            Type::Void | Type::Label | Type::Func { .. } => None,
            Type::Int(w) => Some((*w as u64).div_ceil(8).next_power_of_two().min(8)),
            Type::Half => Some(2),
            Type::Float => Some(4),
            Type::Double => Some(8),
            Type::Ptr { .. } => Some(8),
            Type::Array { elem, .. } => self.align_of(*elem),
            Type::Struct { fields, packed } => {
                if *packed {
                    return Some(1);
                }
                let mut max_align = 1u64;
                for &f in fields {
                    max_align = max_align.max(self.align_of(f)?);
                }
                Some(max_align)
            }
        }
    }

    /// Byte offset of field `idx` inside struct `ty`.
    pub fn struct_field_offset(&self, ty: TyId, idx: usize) -> Option<u64> {
        match self.get(ty) {
            Type::Struct { fields, packed } => {
                let mut off = 0u64;
                for (i, &f) in fields.iter().enumerate() {
                    let falign = if *packed { 1 } else { self.align_of(f)? };
                    off = round_up(off, falign);
                    if i == idx {
                        return Some(off);
                    }
                    off += self.byte_size(f)?;
                }
                None
            }
            _ => None,
        }
    }

    /// Whether a value of type `a` can be converted to type `b` by a
    /// lossless `bitcast` — the equivalence the paper uses both for
    /// instruction-type equivalence (§III-D) and for the tolerance of
    /// LLVM's identical-function merging.
    ///
    /// Two first-class, non-aggregate types are losslessly bitcastable when
    /// they have the same bit width; any two pointers are interchangeable.
    pub fn can_lossless_bitcast(&self, a: TyId, b: TyId) -> bool {
        if a == b {
            return true;
        }
        let (ta, tb) = (self.get(a), self.get(b));
        match (ta, tb) {
            (Type::Ptr { .. }, Type::Ptr { .. }) => true,
            _ => {
                if self.is_aggregate(a) || self.is_aggregate(b) {
                    return false;
                }
                if !self.is_first_class(a) || !self.is_first_class(b) {
                    return false;
                }
                // Pointer <-> non-pointer bitcasts are not lossless (they
                // would be ptrtoint/inttoptr).
                if self.is_ptr(a) != self.is_ptr(b) {
                    return false;
                }
                match (self.bit_size(a), self.bit_size(b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                }
            }
        }
    }

    /// Renders `ty` using LLVM-like syntax (`i32`, `float*`, `{ i32, i8 }`).
    pub fn display(&self, ty: TyId) -> String {
        match self.get(ty) {
            Type::Void => "void".to_owned(),
            Type::Label => "label".to_owned(),
            Type::Int(w) => format!("i{w}"),
            Type::Half => "half".to_owned(),
            Type::Float => "float".to_owned(),
            Type::Double => "double".to_owned(),
            Type::Ptr { pointee } => format!("{}*", self.display(*pointee)),
            Type::Array { elem, len } => format!("[{} x {}]", len, self.display(*elem)),
            Type::Struct { fields, packed } => {
                let inner = fields.iter().map(|&f| self.display(f)).collect::<Vec<_>>().join(", ");
                if *packed {
                    format!("<{{ {inner} }}>")
                } else {
                    format!("{{ {inner} }}")
                }
            }
            Type::Func { ret, params, varargs } => {
                let mut inner =
                    params.iter().map(|&p| self.display(p)).collect::<Vec<_>>().join(", ");
                if *varargs {
                    if inner.is_empty() {
                        inner = "...".to_owned();
                    } else {
                        inner.push_str(", ...");
                    }
                }
                format!("{} ({})", self.display(*ret), inner)
            }
        }
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two() || align == 1);
    v.div_ceil(align) * align
}

impl fmt::Display for TyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut ts = TypeStore::new();
        let a = ts.int(32);
        let b = ts.int(32);
        assert_eq!(a, b);
        assert_eq!(a, ts.i32());
        let p1 = ts.ptr(a);
        let p2 = ts.ptr(b);
        assert_eq!(p1, p2);
        assert_ne!(p1, a);
    }

    #[test]
    fn primitive_sizes() {
        let ts = TypeStore::new();
        assert_eq!(ts.bit_size(ts.i1()), Some(1));
        assert_eq!(ts.byte_size(ts.i1()), Some(1));
        assert_eq!(ts.bit_size(ts.i32()), Some(32));
        assert_eq!(ts.byte_size(ts.f64()), Some(8));
        assert_eq!(ts.bit_size(ts.void()), None);
    }

    #[test]
    fn pointer_sizes_are_64_bit() {
        let mut ts = TypeStore::new();
        let p = ts.ptr(ts.i8());
        assert_eq!(ts.bit_size(p), Some(64));
        assert_eq!(ts.byte_size(p), Some(8));
        assert_eq!(ts.align_of(p), Some(8));
    }

    #[test]
    fn struct_layout_with_padding() {
        let mut ts = TypeStore::new();
        // { i8, i32 } -> i8 at 0, i32 at 4, total 8, align 4.
        let s = ts.struct_(vec![ts.i8(), ts.i32()]);
        assert_eq!(ts.byte_size(s), Some(8));
        assert_eq!(ts.align_of(s), Some(4));
        assert_eq!(ts.struct_field_offset(s, 0), Some(0));
        assert_eq!(ts.struct_field_offset(s, 1), Some(4));
    }

    #[test]
    fn packed_struct_layout() {
        let mut ts = TypeStore::new();
        let s = ts.packed_struct(vec![ts.i8(), ts.i32()]);
        assert_eq!(ts.byte_size(s), Some(5));
        assert_eq!(ts.struct_field_offset(s, 1), Some(1));
    }

    #[test]
    fn array_size() {
        let mut ts = TypeStore::new();
        let a = ts.array(ts.i32(), 10);
        assert_eq!(ts.byte_size(a), Some(40));
        assert_eq!(ts.bit_size(a), Some(320));
    }

    #[test]
    fn lossless_bitcast_rules() {
        let mut ts = TypeStore::new();
        let i32t = ts.i32();
        let f32t = ts.f32();
        let i64t = ts.i64();
        let f64t = ts.f64();
        let p8 = ts.ptr(ts.i8());
        let p32 = ts.ptr(i32t);
        assert!(ts.can_lossless_bitcast(i32t, f32t));
        assert!(ts.can_lossless_bitcast(i64t, f64t));
        assert!(!ts.can_lossless_bitcast(i32t, f64t));
        assert!(!ts.can_lossless_bitcast(f32t, f64t));
        assert!(ts.can_lossless_bitcast(p8, p32), "pointers are interchangeable");
        assert!(!ts.can_lossless_bitcast(p8, i64t), "ptr<->int is not a bitcast");
        // void<->void is unspecified; only require that the query is safe.
        let _ = ts.can_lossless_bitcast(ts.void(), ts.void());
    }

    #[test]
    fn display_forms() {
        let mut ts = TypeStore::new();
        let p = ts.ptr(ts.f32());
        assert_eq!(ts.display(p), "float*");
        let s = ts.struct_(vec![ts.i32(), p]);
        assert_eq!(ts.display(s), "{ i32, float* }");
        let f = ts.func(ts.void(), vec![ts.i32()]);
        assert_eq!(ts.display(f), "void (i32)");
        let a = ts.array(ts.i8(), 4);
        assert_eq!(ts.display(a), "[4 x i8]");
    }

    #[test]
    fn freeze_preserves_ids_and_dedupes_across_the_boundary() {
        let mut plain = TypeStore::new();
        let mut cow = TypeStore::new();
        let ops: Vec<fn(&mut TypeStore) -> TyId> = vec![
            |ts| ts.int(40),
            |ts| ts.ptr(ts.i32()),
            |ts| ts.int(40), // dedupe pre-freeze type
            |ts| {
                let p = ts.ptr(ts.i32());
                ts.array(p, 3)
            },
            |ts| ts.ptr(ts.i32()), // dedupe across the frozen boundary
            |ts| ts.func(ts.void(), vec![ts.i64()]),
        ];
        for (k, op) in ops.iter().enumerate() {
            if k == 2 || k == 4 {
                cow.freeze();
            }
            assert_eq!(op(&mut plain), op(&mut cow), "op {k} diverged");
        }
        assert_eq!(plain.len(), cow.len());
        for i in 0..plain.len() {
            let id = TyId(i as u32);
            assert_eq!(plain.get(id), cow.get(id), "type {i} diverged");
        }
    }

    #[test]
    fn clone_of_frozen_store_shares_the_prefix() {
        let mut ts = TypeStore::new();
        let p = ts.ptr(ts.i64());
        ts.freeze();
        assert!(ts.is_fully_frozen());
        let mut fork = ts.clone();
        assert!(fork.shares_frozen_with(&ts));
        assert_eq!(fork.frozen_len(), ts.len(), "clone copies no type");
        // The fork interns privately after the shared prefix; the donor
        // interning the same type independently gets the same id.
        let a = fork.ptr(p);
        assert_eq!(fork.len(), ts.len() + 1);
        assert_eq!(ts.ptr(p), a);
        assert_eq!(fork.display(a), "i64**");
        // Re-interning a prefix type still dedupes to the prefix id.
        assert_eq!(fork.ptr(fork.i64()), p);
    }

    #[test]
    fn refreeze_folds_the_suffix() {
        let mut ts = TypeStore::new();
        ts.freeze();
        let first = ts.frozen_len();
        let q = ts.ptr(ts.i8());
        assert_eq!(ts.frozen_len(), first, "interning never grows the prefix");
        ts.freeze();
        assert_eq!(ts.frozen_len(), first + 1);
        assert!(ts.is_fully_frozen());
        assert_eq!(ts.ptr(ts.i8()), q);
        assert_eq!(ts.lookup(&Type::Ptr { pointee: ts.i8() }), Some(q));
        assert_eq!(ts.lookup(&Type::Int(999)), None);
    }

    #[test]
    fn fn_accessors() {
        let mut ts = TypeStore::new();
        let f = ts.func(ts.i32(), vec![ts.f64(), ts.i1()]);
        assert_eq!(ts.fn_ret(f), Some(ts.i32()));
        assert_eq!(ts.fn_params(f).unwrap().len(), 2);
        assert_eq!(ts.fn_ret(ts.i32()), None);
    }
}
