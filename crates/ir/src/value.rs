//! Values: the operands of instructions.
//!
//! A [`Value`] is a small `Copy` enum. Instruction results and block labels
//! are referenced by id and are only meaningful within their owning
//! [`crate::Function`]; constants and function references are
//! self-contained.

use crate::types::TyId;
use std::fmt;

/// Identifies a function within a [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub(crate) u32);

/// Identifies a basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

/// Identifies an instruction within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) u32);

impl FuncId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Builds an id from a raw arena index.
    pub fn from_index(i: usize) -> Self {
        FuncId(i as u32)
    }
}

impl BlockId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Builds an id from a raw arena index.
    pub fn from_index(i: usize) -> Self {
        BlockId(i as u32)
    }
}

impl InstId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Builds an id from a raw arena index.
    pub fn from_index(i: usize) -> Self {
        InstId(i as u32)
    }
}

/// An SSA value usable as an instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Result of an instruction in the same function.
    Inst(InstId),
    /// The `n`-th formal parameter of the containing function.
    Param(u32),
    /// A basic-block label (branch target) in the same function.
    Block(BlockId),
    /// A reference to a function in the same module (callee or address).
    Func(FuncId),
    /// An integer constant; `bits` holds the zero-extended two's-complement
    /// representation truncated to the type's width.
    ConstInt {
        /// Integer type of the constant.
        ty: TyId,
        /// Raw bits, zero-extended to 64.
        bits: u64,
    },
    /// A floating-point constant stored as raw IEEE-754 bits.
    ConstFloat {
        /// Floating-point type of the constant.
        ty: TyId,
        /// Raw bits (f32 bits are zero-extended).
        bits: u64,
    },
    /// The null pointer of the given pointer type.
    ConstNull(TyId),
    /// An undefined value of the given type.
    Undef(TyId),
}

impl Value {
    /// Convenience constructor for boolean constants (`i1`).
    pub fn bool_const(i1: TyId, v: bool) -> Value {
        Value::ConstInt { ty: i1, bits: v as u64 }
    }

    /// Whether this value is any kind of constant (including `undef`).
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            Value::ConstInt { .. }
                | Value::ConstFloat { .. }
                | Value::ConstNull(_)
                | Value::Undef(_)
                | Value::Func(_)
        )
    }

    /// The instruction id, if this is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(i) => Some(*i),
            _ => None,
        }
    }

    /// The block id, if this is a label.
    pub fn as_block(&self) -> Option<BlockId> {
        match self {
            Value::Block(b) => Some(*b),
            _ => None,
        }
    }

    /// The function id, if this is a function reference.
    pub fn as_func(&self) -> Option<FuncId> {
        match self {
            Value::Func(f) => Some(*f),
            _ => None,
        }
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeStore;

    #[test]
    fn value_classification() {
        let ts = TypeStore::new();
        assert!(Value::ConstInt { ty: ts.i32(), bits: 7 }.is_const());
        assert!(Value::Undef(ts.i32()).is_const());
        assert!(!Value::Inst(InstId(0)).is_const());
        assert!(!Value::Param(0).is_const());
        assert_eq!(Value::Inst(InstId(3)).as_inst(), Some(InstId(3)));
        assert_eq!(Value::Block(BlockId(2)).as_block(), Some(BlockId(2)));
        assert_eq!(Value::Func(FuncId(1)).as_func(), Some(FuncId(1)));
        assert_eq!(Value::Param(0).as_inst(), None);
    }

    #[test]
    fn bool_const_roundtrip() {
        let ts = TypeStore::new();
        match Value::bool_const(ts.i1(), true) {
            Value::ConstInt { bits, .. } => assert_eq!(bits, 1),
            _ => panic!("expected const int"),
        }
    }
}
