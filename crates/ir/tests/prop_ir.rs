//! Property tests over the IR substrate itself: printer/parser round-trip,
//! verifier stability under clean-up passes, and CFG invariants — using
//! randomly built (but always structurally valid) functions.

use fmsa_ir::{
    cfg, parser, passes, printer, verify_module, FuncBuilder, IntPredicate, Module, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random valid function purely from a seed (kept simpler than the
/// workloads generator — this one exercises the IR plumbing, not merging).
fn random_module(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new("prop-ir");
    let i32t = m.types.i32();
    let n_params = rng.gen_range(1..4usize);
    let fn_ty = m.types.func(i32t, vec![i32t; n_params]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let mut pool: Vec<Value> = (0..n_params).map(|k| Value::Param(k as u32)).collect();
    let regions = rng.gen_range(1..5usize);
    for _ in 0..regions {
        match rng.gen_range(0..3) {
            0 => {
                // Straight-line arithmetic.
                for _ in 0..rng.gen_range(1..6usize) {
                    let a = pool[rng.gen_range(0..pool.len())];
                    let c = Value::ConstInt { ty: i32t, bits: rng.gen_range(0..100u64) };
                    let v = if rng.gen_bool(0.5) { b.add(a, c) } else { b.xor(a, c) };
                    pool.push(v);
                }
            }
            1 => {
                // Diamond communicating through memory.
                let cell = b.alloca(i32t);
                let init = pool[rng.gen_range(0..pool.len())];
                b.store(init, cell);
                let t = b.block("t");
                let e = b.block("e");
                let j = b.block("j");
                let x = pool[rng.gen_range(0..pool.len())];
                let c = b.icmp(IntPredicate::Sgt, x, b.const_i32(10));
                b.condbr(c, t, e);
                b.switch_to(t);
                let tv = b.mul(x, b.const_i32(3));
                b.store(tv, cell);
                b.br(j);
                b.switch_to(e);
                b.br(j);
                b.switch_to(j);
                let out = b.load(cell);
                pool.push(out);
            }
            _ => {
                // Bounded loop.
                let i = b.alloca(i32t);
                b.store(b.const_i32(0), i);
                let h = b.block("h");
                let body = b.block("body");
                let exit = b.block("exit");
                b.br(h);
                b.switch_to(h);
                let iv = b.load(i);
                let c = b.icmp(IntPredicate::Slt, iv, b.const_i32(rng.gen_range(1..6)));
                b.condbr(c, body, exit);
                b.switch_to(body);
                let inc = b.add(iv, b.const_i32(1));
                b.store(inc, i);
                b.br(h);
                b.switch_to(exit);
                pool.push(b.load(i));
            }
        }
    }
    let r = pool[rng.gen_range(0..pool.len())];
    b.ret(Some(r));
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_modules_verify(seed in 0u64..100_000) {
        let m = random_module(seed);
        let errs = verify_module(&m);
        prop_assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn printer_parser_roundtrip(seed in 0u64..100_000) {
        let m = random_module(seed);
        let text1 = printer::print_module(&m);
        let m2 = parser::parse_module(&text1)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text1}")))?;
        let text2 = printer::print_module(&m2);
        prop_assert_eq!(text1, text2);
        prop_assert!(verify_module(&m2).is_empty());
    }

    #[test]
    fn dce_preserves_validity(seed in 0u64..100_000) {
        let mut m = random_module(seed);
        let f = m.func_ids()[0];
        passes::dce(m.func_mut(f));
        prop_assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn threading_preserves_validity_and_reachability(seed in 0u64..100_000) {
        let mut m = random_module(seed);
        let f = m.func_ids()[0];
        let before_reachable = cfg::reverse_post_order(m.func(f)).len();
        passes::thread_trivial_blocks(m.func_mut(f));
        prop_assert!(verify_module(&m).is_empty());
        let after_reachable = cfg::reverse_post_order(m.func(f)).len();
        prop_assert!(after_reachable <= before_reachable);
    }

    #[test]
    fn rpo_covers_reachable_blocks_exactly_once(seed in 0u64..100_000) {
        let m = random_module(seed);
        let f = m.func_ids()[0];
        let rpo = cfg::reverse_post_order(m.func(f));
        let mut sorted = rpo.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), rpo.len(), "no duplicates in RPO");
        let unreachable = cfg::unreachable_blocks(m.func(f));
        prop_assert_eq!(
            rpo.len() + unreachable.len(),
            m.func(f).block_count(),
            "rpo + unreachable = all blocks"
        );
    }

    #[test]
    fn dominators_entry_dominates_all(seed in 0u64..100_000) {
        let m = random_module(seed);
        let f = m.func_ids()[0];
        let dom = cfg::Dominators::compute(m.func(f));
        let entry = m.func(f).entry();
        for b in cfg::reverse_post_order(m.func(f)) {
            prop_assert!(dom.dominates(entry, b));
        }
    }

    /// The copy-on-write type store is interning-order invisible: for any
    /// sequence of type constructions interleaved with freeze points (and
    /// clone-forks at every freeze, the scratch-module pattern), every
    /// intern returns exactly the id a plain never-frozen store assigns,
    /// and both stores resolve every produced id to the same structure.
    #[test]
    fn cow_store_interns_identically_under_arbitrary_interleavings(
        seed in 0u64..100_000,
        op_count in 1usize..60,
        freeze_mask in 0u64..u64::MAX,
    ) {
        use fmsa_ir::types::{TyId, TypeStore};
        fn apply(
            ts: &mut TypeStore,
            seen: &[TyId],
            (kind, pick, bits, len): (u8, usize, u32, u64),
        ) -> TyId {
            let at = |p: usize| seen[p % seen.len()];
            match kind {
                0 => ts.int(bits),
                1 => ts.ptr(at(pick)),
                2 => ts.array(at(pick), len),
                3 => ts.struct_(vec![at(pick), at(pick / 2)]),
                _ => ts.func(at(pick), vec![at(pick / 3)]),
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let ops: Vec<(u8, usize, u32, u64)> = (0..op_count)
            .map(|_| {
                (
                    rng.gen_range(0..5u8),
                    rng.gen_range(0..64usize),
                    rng.gen_range(1..64u32),
                    rng.gen_range(1..5u64),
                )
            })
            .collect();
        let mut plain = TypeStore::new();
        let mut cow = TypeStore::new();
        // Every id either store has handed out so far (primitives first);
        // both stores must agree on all of them, so one list suffices.
        let mut seen: Vec<TyId> = vec![
            plain.void(), plain.label(), plain.i1(), plain.i8(), plain.i16(),
            plain.i32(), plain.i64(), plain.half(), plain.f32(), plain.f64(),
        ];
        for (k, &op) in ops.iter().enumerate() {
            if freeze_mask & (1 << (k % 64)) != 0 {
                cow.freeze();
                // Fork-and-continue, as a scratch module would: the fork
                // shares the frozen prefix; dropping the original proves
                // the fork is self-sufficient.
                cow = cow.clone();
            }
            let a = apply(&mut plain, &seen, op);
            let b = apply(&mut cow, &seen, op);
            prop_assert_eq!(a, b, "op {} diverged", k);
            seen.push(a);
        }
        prop_assert_eq!(plain.len(), cow.len());
        for &id in &seen {
            prop_assert_eq!(plain.get(id), cow.get(id));
            prop_assert_eq!(plain.display(id), cow.display(id));
        }
    }
}
