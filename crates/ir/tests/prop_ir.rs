//! Property tests over the IR substrate itself: printer/parser round-trip,
//! verifier stability under clean-up passes, and CFG invariants — using
//! randomly built (but always structurally valid) functions.

use fmsa_ir::{
    cfg, parser, passes, printer, verify_module, FuncBuilder, IntPredicate, Module, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random valid function purely from a seed (kept simpler than the
/// workloads generator — this one exercises the IR plumbing, not merging).
fn random_module(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new("prop-ir");
    let i32t = m.types.i32();
    let n_params = rng.gen_range(1..4usize);
    let fn_ty = m.types.func(i32t, vec![i32t; n_params]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let mut pool: Vec<Value> = (0..n_params).map(|k| Value::Param(k as u32)).collect();
    let regions = rng.gen_range(1..5usize);
    for _ in 0..regions {
        match rng.gen_range(0..3) {
            0 => {
                // Straight-line arithmetic.
                for _ in 0..rng.gen_range(1..6usize) {
                    let a = pool[rng.gen_range(0..pool.len())];
                    let c = Value::ConstInt { ty: i32t, bits: rng.gen_range(0..100u64) };
                    let v = if rng.gen_bool(0.5) { b.add(a, c) } else { b.xor(a, c) };
                    pool.push(v);
                }
            }
            1 => {
                // Diamond communicating through memory.
                let cell = b.alloca(i32t);
                let init = pool[rng.gen_range(0..pool.len())];
                b.store(init, cell);
                let t = b.block("t");
                let e = b.block("e");
                let j = b.block("j");
                let x = pool[rng.gen_range(0..pool.len())];
                let c = b.icmp(IntPredicate::Sgt, x, b.const_i32(10));
                b.condbr(c, t, e);
                b.switch_to(t);
                let tv = b.mul(x, b.const_i32(3));
                b.store(tv, cell);
                b.br(j);
                b.switch_to(e);
                b.br(j);
                b.switch_to(j);
                let out = b.load(cell);
                pool.push(out);
            }
            _ => {
                // Bounded loop.
                let i = b.alloca(i32t);
                b.store(b.const_i32(0), i);
                let h = b.block("h");
                let body = b.block("body");
                let exit = b.block("exit");
                b.br(h);
                b.switch_to(h);
                let iv = b.load(i);
                let c = b.icmp(IntPredicate::Slt, iv, b.const_i32(rng.gen_range(1..6)));
                b.condbr(c, body, exit);
                b.switch_to(body);
                let inc = b.add(iv, b.const_i32(1));
                b.store(inc, i);
                b.br(h);
                b.switch_to(exit);
                pool.push(b.load(i));
            }
        }
    }
    let r = pool[rng.gen_range(0..pool.len())];
    b.ret(Some(r));
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_modules_verify(seed in 0u64..100_000) {
        let m = random_module(seed);
        let errs = verify_module(&m);
        prop_assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn printer_parser_roundtrip(seed in 0u64..100_000) {
        let m = random_module(seed);
        let text1 = printer::print_module(&m);
        let m2 = parser::parse_module(&text1)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text1}")))?;
        let text2 = printer::print_module(&m2);
        prop_assert_eq!(text1, text2);
        prop_assert!(verify_module(&m2).is_empty());
    }

    #[test]
    fn dce_preserves_validity(seed in 0u64..100_000) {
        let mut m = random_module(seed);
        let f = m.func_ids()[0];
        passes::dce(m.func_mut(f));
        prop_assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn threading_preserves_validity_and_reachability(seed in 0u64..100_000) {
        let mut m = random_module(seed);
        let f = m.func_ids()[0];
        let before_reachable = cfg::reverse_post_order(m.func(f)).len();
        passes::thread_trivial_blocks(m.func_mut(f));
        prop_assert!(verify_module(&m).is_empty());
        let after_reachable = cfg::reverse_post_order(m.func(f)).len();
        prop_assert!(after_reachable <= before_reachable);
    }

    #[test]
    fn rpo_covers_reachable_blocks_exactly_once(seed in 0u64..100_000) {
        let m = random_module(seed);
        let f = m.func_ids()[0];
        let rpo = cfg::reverse_post_order(m.func(f));
        let mut sorted = rpo.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), rpo.len(), "no duplicates in RPO");
        let unreachable = cfg::unreachable_blocks(m.func(f));
        prop_assert_eq!(
            rpo.len() + unreachable.len(),
            m.func(f).block_count(),
            "rpo + unreachable = all blocks"
        );
    }

    #[test]
    fn dominators_entry_dominates_all(seed in 0u64..100_000) {
        let m = random_module(seed);
        let f = m.func_ids()[0];
        let dom = cfg::Dominators::compute(m.func(f));
        let entry = m.func(f).entry();
        for b in cfg::reverse_post_order(m.func(f)) {
            prop_assert!(dom.dominates(entry, b));
        }
    }
}
