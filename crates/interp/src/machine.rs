//! The execution engine.

use crate::host::{HostCtx, HostRegistry, HostResult};
use crate::memory::Memory;
use crate::profile::Profile;
use crate::value::{sign_extend, truncate, Val};
use crate::Trap;
use fmsa_ir::{
    BlockId, ExtraData, FloatPredicate, FuncId, Inst, IntPredicate, Module, Opcode, Type, Value,
};
use std::collections::HashMap;

/// Maximum call depth before [`Trap::StackOverflow`].
const MAX_DEPTH: usize = 256;

/// What a function invocation did.
#[derive(Debug, Clone, PartialEq)]
enum CallOutcome {
    Return(Option<Val>),
    Unwind(u64),
}

/// Result of a completed top-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The function's return value (`None` for `void`).
    pub value: Option<Val>,
    /// Output captured from `print_*` host calls, in order.
    pub output: Vec<String>,
    /// Dynamic instructions executed during this run.
    pub steps: u64,
}

/// An IR interpreter over one module.
///
/// # Examples
///
/// ```
/// use fmsa_ir::{Module, FuncBuilder, Value};
/// use fmsa_interp::{Interpreter, Val};
///
/// let mut m = Module::new("demo");
/// let i32t = m.types.i32();
/// let fn_ty = m.types.func(i32t, vec![i32t]);
/// let f = m.create_function("double", fn_ty);
/// let mut b = FuncBuilder::new(&mut m, f);
/// let entry = b.block("entry");
/// b.switch_to(entry);
/// let two = b.const_i32(2);
/// let r = b.mul(Value::Param(0), two);
/// b.ret(Some(r));
///
/// let mut interp = Interpreter::new(&m);
/// let out = interp.run("double", vec![Val::i32(21)]).unwrap();
/// assert_eq!(out.value, Some(Val::i32(42)));
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    mem: Memory,
    host: HostRegistry,
    profile: Profile,
    fuel: u64,
    steps: u64,
    output: Vec<String>,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with the default host registry and a fuel
    /// budget of 10 million instructions.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter {
            module,
            mem: Memory::new(),
            host: HostRegistry::with_defaults(),
            profile: Profile::new(),
            fuel: 10_000_000,
            steps: 0,
            output: Vec::new(),
        }
    }

    /// Replaces the host registry.
    pub fn with_host(mut self, host: HostRegistry) -> Interpreter<'m> {
        self.host = host;
        self
    }

    /// Sets the fuel budget (dynamic instruction limit per interpreter).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The profile accumulated over all runs of this interpreter.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Runs function `name` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any runtime error, including an uncaught
    /// exception ([`Trap::UncaughtException`]).
    pub fn run(&mut self, name: &str, args: Vec<Val>) -> Result<RunResult, Trap> {
        let f =
            self.module.func_by_name(name).ok_or_else(|| Trap::UnknownFunction(name.to_owned()))?;
        self.run_func(f, args)
    }

    /// Runs function `f` with `args`. See [`Interpreter::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any runtime error.
    pub fn run_func(&mut self, f: FuncId, args: Vec<Val>) -> Result<RunResult, Trap> {
        let start_steps = self.steps;
        let start_out = self.output.len();
        match self.call(f, args, 0)? {
            CallOutcome::Return(v) => Ok(RunResult {
                value: v,
                output: self.output[start_out..].to_vec(),
                steps: self.steps - start_steps,
            }),
            CallOutcome::Unwind(payload) => Err(Trap::UncaughtException(payload)),
        }
    }

    fn call(&mut self, fid: FuncId, args: Vec<Val>, depth: usize) -> Result<CallOutcome, Trap> {
        if depth >= MAX_DEPTH {
            return Err(Trap::StackOverflow);
        }
        let f = self.module.func(fid);
        let fname = f.name.clone();
        self.profile.record_call(&fname);
        if f.is_declaration() {
            let mut ctx = HostCtx { mem: &mut self.mem, output: &mut self.output };
            return match self.host.call(&fname, &mut ctx, &args)? {
                HostResult::Return(v) => Ok(CallOutcome::Return(Some(v))),
                HostResult::Unwind(p) => Ok(CallOutcome::Unwind(p)),
            };
        }
        let stack_mark = self.mem.stack_mark();
        let result = self.exec_body(fid, &fname, args, depth);
        self.mem.pop_to(stack_mark);
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec_body(
        &mut self,
        fid: FuncId,
        fname: &str,
        args: Vec<Val>,
        depth: usize,
    ) -> Result<CallOutcome, Trap> {
        let module = self.module;
        let ts = &module.types;
        let f = module.func(fid);
        let mut locals: HashMap<fmsa_ir::InstId, Val> = HashMap::new();
        let mut block = f.entry();
        let mut idx = 0usize;
        let mut pending_exn: Option<u64> = None;
        self.profile.record_block(fname, block.index());

        'outer: loop {
            let insts = &f.block(block).insts;
            if idx >= insts.len() {
                return Err(Trap::FellOffBlock);
            }
            let iid = insts[idx];
            let inst = f.inst(iid);
            self.steps += 1;
            if self.steps > self.fuel {
                return Err(Trap::OutOfFuel);
            }
            self.profile.record_step(fname);

            macro_rules! eval {
                ($v:expr) => {
                    self.eval_value(f, &locals, &args, $v)?
                };
            }

            match inst.opcode {
                Opcode::Ret => {
                    let v = match inst.operands.first() {
                        Some(&op) => Some(eval!(op)),
                        None => None,
                    };
                    return Ok(CallOutcome::Return(v));
                }
                Opcode::Br => {
                    let target = inst.operands[0].as_block().ok_or(Trap::Malformed)?;
                    self.enter_block(f, fname, &mut locals, &args, block, target)?;
                    block = target;
                    idx = 0;
                    continue 'outer;
                }
                Opcode::CondBr => {
                    let c = eval!(inst.operands[0]).as_bool().ok_or(Trap::TypeMismatch)?;
                    let target =
                        inst.operands[if c { 1 } else { 2 }].as_block().ok_or(Trap::Malformed)?;
                    self.enter_block(f, fname, &mut locals, &args, block, target)?;
                    block = target;
                    idx = 0;
                    continue 'outer;
                }
                Opcode::Switch => {
                    let c = eval!(inst.operands[0]).as_u64().ok_or(Trap::TypeMismatch)?;
                    let mut target = inst.operands[1].as_block().ok_or(Trap::Malformed)?;
                    for pair in inst.operands[2..].chunks(2) {
                        let Value::ConstInt { bits, .. } = pair[0] else {
                            return Err(Trap::Malformed);
                        };
                        if bits == c {
                            target = pair[1].as_block().ok_or(Trap::Malformed)?;
                            break;
                        }
                    }
                    self.enter_block(f, fname, &mut locals, &args, block, target)?;
                    block = target;
                    idx = 0;
                    continue 'outer;
                }
                Opcode::Unreachable => return Err(Trap::UnreachableExecuted),
                Opcode::Resume => {
                    let p = eval!(inst.operands[0]);
                    let payload = match p {
                        Val::Agg(items) => items.first().and_then(Val::as_u64).unwrap_or(0),
                        other => other.as_u64().unwrap_or(0),
                    };
                    return Ok(CallOutcome::Unwind(payload));
                }
                Opcode::Call | Opcode::Invoke => {
                    let is_invoke = inst.opcode == Opcode::Invoke;
                    let arg_end =
                        if is_invoke { inst.operands.len() - 2 } else { inst.operands.len() };
                    let callee = match inst.operands[0] {
                        Value::Func(g) => g,
                        _ => return Err(Trap::IndirectCallUnsupported),
                    };
                    let mut call_args = Vec::with_capacity(arg_end - 1);
                    for &a in &inst.operands[1..arg_end] {
                        call_args.push(eval!(a));
                    }
                    match self.call(callee, call_args, depth + 1)? {
                        CallOutcome::Return(v) => {
                            if let Some(v) = v {
                                locals.insert(iid, v);
                            }
                            if is_invoke {
                                let normal = inst.operands[inst.operands.len() - 2]
                                    .as_block()
                                    .ok_or(Trap::Malformed)?;
                                self.enter_block(f, fname, &mut locals, &args, block, normal)?;
                                block = normal;
                                idx = 0;
                                continue 'outer;
                            }
                        }
                        CallOutcome::Unwind(payload) => {
                            if is_invoke {
                                let unwind = inst.operands[inst.operands.len() - 1]
                                    .as_block()
                                    .ok_or(Trap::Malformed)?;
                                pending_exn = Some(payload);
                                self.enter_block(f, fname, &mut locals, &args, block, unwind)?;
                                block = unwind;
                                idx = 0;
                                continue 'outer;
                            }
                            // Plain call: propagate unwinding to our caller.
                            return Ok(CallOutcome::Unwind(payload));
                        }
                    }
                }
                Opcode::LandingPad => {
                    let payload = pending_exn.take().unwrap_or(0);
                    locals.insert(iid, Val::Agg(vec![Val::Ptr(payload), Val::i32(1)]));
                }
                Opcode::Phi => {
                    // Leading φs are resolved by enter_block; if control
                    // reaches one directly (entry block), zero it.
                    locals.entry(iid).or_insert_with(|| Val::zero_of(inst.ty, ts));
                }
                Opcode::Alloca => {
                    let ExtraData::Alloca { allocated } = inst.extra else {
                        return Err(Trap::Malformed);
                    };
                    let unit = ts.byte_size(allocated).ok_or(Trap::UnsizedAccess)?;
                    let count = match inst.operands.first() {
                        Some(&c) => eval!(c).as_u64().ok_or(Trap::TypeMismatch)?,
                        None => 1,
                    };
                    let addr = self.mem.alloca(unit * count.max(1));
                    locals.insert(iid, Val::Ptr(addr));
                }
                Opcode::Load => {
                    let addr = eval!(inst.operands[0]).as_u64().ok_or(Trap::TypeMismatch)?;
                    let v = self.mem.load(addr, inst.ty, ts)?;
                    locals.insert(iid, v);
                }
                Opcode::Store => {
                    let v = eval!(inst.operands[0]);
                    let addr = eval!(inst.operands[1]).as_u64().ok_or(Trap::TypeMismatch)?;
                    let vty = f.value_ty(inst.operands[0], ts);
                    self.mem.store(addr, &v, vty, ts)?;
                }
                Opcode::Gep => {
                    let ExtraData::Gep { source_elem } = inst.extra else {
                        return Err(Trap::Malformed);
                    };
                    let base = eval!(inst.operands[0]).as_u64().ok_or(Trap::TypeMismatch)?;
                    let addr = self.eval_gep(f, &locals, &args, base, source_elem, inst)?;
                    locals.insert(iid, Val::Ptr(addr));
                }
                Opcode::Select => {
                    let c = eval!(inst.operands[0]).as_bool().ok_or(Trap::TypeMismatch)?;
                    let v = if c { eval!(inst.operands[1]) } else { eval!(inst.operands[2]) };
                    locals.insert(iid, v);
                }
                Opcode::ExtractValue => {
                    let ExtraData::AggIndices(ref idxs) = inst.extra else {
                        return Err(Trap::Malformed);
                    };
                    let mut v = eval!(inst.operands[0]);
                    for &k in idxs {
                        let Val::Agg(items) = v else { return Err(Trap::TypeMismatch) };
                        v = items.get(k as usize).cloned().ok_or(Trap::TypeMismatch)?;
                    }
                    locals.insert(iid, v);
                }
                Opcode::InsertValue => {
                    let ExtraData::AggIndices(ref idxs) = inst.extra else {
                        return Err(Trap::Malformed);
                    };
                    let mut agg = eval!(inst.operands[0]);
                    let v = eval!(inst.operands[1]);
                    insert_into(&mut agg, idxs, v)?;
                    locals.insert(iid, agg);
                }
                Opcode::ICmp => {
                    let p = inst.int_predicate().ok_or(Trap::Malformed)?;
                    let a = eval!(inst.operands[0]);
                    let b = eval!(inst.operands[1]);
                    locals.insert(iid, Val::bool(icmp(p, &a, &b)?));
                }
                Opcode::FCmp => {
                    let p = inst.float_predicate().ok_or(Trap::Malformed)?;
                    let a = eval!(inst.operands[0]).as_f64().ok_or(Trap::TypeMismatch)?;
                    let b = eval!(inst.operands[1]).as_f64().ok_or(Trap::TypeMismatch)?;
                    locals.insert(iid, Val::bool(fcmp(p, a, b)));
                }
                op if op.is_binary() => {
                    let a = eval!(inst.operands[0]);
                    let b = eval!(inst.operands[1]);
                    let v = binary(op, &a, &b, inst, ts)?;
                    locals.insert(iid, v);
                }
                op if op.is_cast() => {
                    let v = eval!(inst.operands[0]);
                    let out = cast(op, &v, inst.ty, ts)?;
                    locals.insert(iid, out);
                }
                _ => return Err(Trap::Malformed),
            }
            idx += 1;
        }
    }

    /// Evaluates leading φ-nodes of `target` given the edge `from → target`
    /// (batch semantics: all φs read pre-transfer values).
    fn enter_block(
        &mut self,
        f: &fmsa_ir::Function,
        fname: &str,
        locals: &mut HashMap<fmsa_ir::InstId, Val>,
        args: &[Val],
        from: BlockId,
        target: BlockId,
    ) -> Result<(), Trap> {
        self.profile.record_block(fname, target.index());
        let mut updates: Vec<(fmsa_ir::InstId, Val)> = Vec::new();
        for &iid in &f.block(target).insts {
            let inst = f.inst(iid);
            if inst.opcode != Opcode::Phi {
                break;
            }
            let ExtraData::Phi { ref incoming } = inst.extra else {
                return Err(Trap::Malformed);
            };
            let pos = incoming.iter().position(|&b| b == from).ok_or(Trap::Malformed)?;
            let v = self.eval_value(f, locals, args, inst.operands[pos])?;
            updates.push((iid, v));
        }
        for (iid, v) in updates {
            locals.insert(iid, v);
        }
        Ok(())
    }

    fn eval_value(
        &self,
        _f: &fmsa_ir::Function,
        locals: &HashMap<fmsa_ir::InstId, Val>,
        args: &[Val],
        v: Value,
    ) -> Result<Val, Trap> {
        let ts = &self.module.types;
        match v {
            Value::Inst(i) => locals.get(&i).cloned().ok_or(Trap::UseBeforeDef),
            Value::Param(p) => args.get(p as usize).cloned().ok_or(Trap::TypeMismatch),
            Value::ConstInt { ty, bits } => {
                let w = ts.int_width(ty).unwrap_or(64).min(64);
                Ok(Val::Int { bits: truncate(bits, w), width: w })
            }
            Value::ConstFloat { ty, bits } => {
                if matches!(ts.get(ty), Type::Double) {
                    Ok(Val::F64(f64::from_bits(bits)))
                } else {
                    Ok(Val::F32(f32::from_bits(bits as u32)))
                }
            }
            Value::ConstNull(_) => Ok(Val::Ptr(0)),
            Value::Undef(ty) => Ok(Val::zero_of(ty, ts)),
            Value::Block(_) => Err(Trap::Malformed),
            Value::Func(_) => Err(Trap::IndirectCallUnsupported),
        }
    }

    fn eval_gep(
        &self,
        f: &fmsa_ir::Function,
        locals: &HashMap<fmsa_ir::InstId, Val>,
        args: &[Val],
        base: u64,
        source_elem: fmsa_ir::TyId,
        inst: &Inst,
    ) -> Result<u64, Trap> {
        let ts = &self.module.types;
        let mut addr = base as i64;
        // First index scales the source element type.
        let first = self
            .eval_value(f, locals, args, inst.operands[1])?
            .as_i64()
            .ok_or(Trap::TypeMismatch)?;
        let esz = ts.byte_size(source_elem).ok_or(Trap::UnsizedAccess)? as i64;
        addr += first * esz;
        let mut cur = source_elem;
        for &op in &inst.operands[2..] {
            let k = self.eval_value(f, locals, args, op)?.as_i64().ok_or(Trap::TypeMismatch)?;
            match ts.get(cur) {
                Type::Array { elem, .. } => {
                    let sz = ts.byte_size(*elem).ok_or(Trap::UnsizedAccess)? as i64;
                    addr += k * sz;
                    cur = *elem;
                }
                Type::Struct { fields, .. } => {
                    let idx = k as usize;
                    let off = ts.struct_field_offset(cur, idx).ok_or(Trap::TypeMismatch)? as i64;
                    addr += off;
                    cur = *fields.get(idx).ok_or(Trap::TypeMismatch)?;
                }
                _ => return Err(Trap::TypeMismatch),
            }
        }
        Ok(addr as u64)
    }
}

fn insert_into(agg: &mut Val, idxs: &[u32], v: Val) -> Result<(), Trap> {
    let mut cur = agg;
    for &k in &idxs[..idxs.len() - 1] {
        let Val::Agg(items) = cur else { return Err(Trap::TypeMismatch) };
        cur = items.get_mut(k as usize).ok_or(Trap::TypeMismatch)?;
    }
    let last = *idxs.last().ok_or(Trap::Malformed)? as usize;
    let Val::Agg(items) = cur else { return Err(Trap::TypeMismatch) };
    *items.get_mut(last).ok_or(Trap::TypeMismatch)? = v;
    Ok(())
}

fn icmp(p: IntPredicate, a: &Val, b: &Val) -> Result<bool, Trap> {
    let (ub, vb) = (a.as_u64().ok_or(Trap::TypeMismatch)?, b.as_u64().ok_or(Trap::TypeMismatch)?);
    let (is_, js) = match (a, b) {
        (Val::Int { width, .. }, Val::Int { width: w2, .. }) => {
            (sign_extend(ub, *width), sign_extend(vb, *w2))
        }
        _ => (ub as i64, vb as i64),
    };
    Ok(match p {
        IntPredicate::Eq => ub == vb,
        IntPredicate::Ne => ub != vb,
        IntPredicate::Ugt => ub > vb,
        IntPredicate::Uge => ub >= vb,
        IntPredicate::Ult => ub < vb,
        IntPredicate::Ule => ub <= vb,
        IntPredicate::Sgt => is_ > js,
        IntPredicate::Sge => is_ >= js,
        IntPredicate::Slt => is_ < js,
        IntPredicate::Sle => is_ <= js,
    })
}

fn fcmp(p: FloatPredicate, a: f64, b: f64) -> bool {
    let ord = !a.is_nan() && !b.is_nan();
    match p {
        FloatPredicate::Oeq => ord && a == b,
        FloatPredicate::One => ord && a != b,
        FloatPredicate::Ogt => ord && a > b,
        FloatPredicate::Oge => ord && a >= b,
        FloatPredicate::Olt => ord && a < b,
        FloatPredicate::Ole => ord && a <= b,
        FloatPredicate::Ord => ord,
        FloatPredicate::Uno => !ord,
        FloatPredicate::Ueq => !ord || a == b,
        FloatPredicate::Une => !ord || a != b,
    }
}

fn binary(op: Opcode, a: &Val, b: &Val, inst: &Inst, ts: &fmsa_ir::TypeStore) -> Result<Val, Trap> {
    // Float ops.
    if matches!(op, Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FRem) {
        let is_f32 = matches!(ts.get(inst.ty), Type::Half | Type::Float);
        let (x, y) = (a.as_f64().ok_or(Trap::TypeMismatch)?, b.as_f64().ok_or(Trap::TypeMismatch)?);
        let r = match op {
            Opcode::FAdd => x + y,
            Opcode::FSub => x - y,
            Opcode::FMul => x * y,
            Opcode::FDiv => x / y,
            Opcode::FRem => x % y,
            _ => unreachable!(),
        };
        return Ok(if is_f32 {
            // Re-round through f32 for single precision semantics.
            let (xf, yf) = (x as f32, y as f32);
            let rf = match op {
                Opcode::FAdd => xf + yf,
                Opcode::FSub => xf - yf,
                Opcode::FMul => xf * yf,
                Opcode::FDiv => xf / yf,
                Opcode::FRem => xf % yf,
                _ => unreachable!(),
            };
            Val::F32(rf)
        } else {
            Val::F64(r)
        });
    }
    let w = ts.int_width(inst.ty).unwrap_or(64).min(64);
    let x = a.as_u64().ok_or(Trap::TypeMismatch)?;
    let y = b.as_u64().ok_or(Trap::TypeMismatch)?;
    let xs = sign_extend(x, w);
    let ys = sign_extend(y, w);
    let r: u64 = match op {
        Opcode::Add => x.wrapping_add(y),
        Opcode::Sub => x.wrapping_sub(y),
        Opcode::Mul => x.wrapping_mul(y),
        Opcode::UDiv => {
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            x / y
        }
        Opcode::SDiv => {
            if ys == 0 {
                return Err(Trap::DivisionByZero);
            }
            xs.wrapping_div(ys) as u64
        }
        Opcode::URem => {
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            x % y
        }
        Opcode::SRem => {
            if ys == 0 {
                return Err(Trap::DivisionByZero);
            }
            xs.wrapping_rem(ys) as u64
        }
        Opcode::Shl => x.wrapping_shl((y % w as u64) as u32),
        Opcode::LShr => truncate(x, w).wrapping_shr((y % w as u64) as u32),
        Opcode::AShr => (sign_extend(x, w) >> (y % w as u64)) as u64,
        Opcode::And => x & y,
        Opcode::Or => x | y,
        Opcode::Xor => x ^ y,
        _ => return Err(Trap::Malformed),
    };
    Ok(Val::Int { bits: truncate(r, w), width: w })
}

fn cast(op: Opcode, v: &Val, to: fmsa_ir::TyId, ts: &fmsa_ir::TypeStore) -> Result<Val, Trap> {
    let w_to = ts.int_width(to).unwrap_or(64).min(64);
    let is_f32_to = matches!(ts.get(to), Type::Half | Type::Float);
    Ok(match op {
        Opcode::Trunc => {
            let x = v.as_u64().ok_or(Trap::TypeMismatch)?;
            Val::Int { bits: truncate(x, w_to), width: w_to }
        }
        Opcode::ZExt => {
            let x = v.as_u64().ok_or(Trap::TypeMismatch)?;
            Val::Int { bits: x, width: w_to }
        }
        Opcode::SExt => {
            let Val::Int { bits, width } = *v else { return Err(Trap::TypeMismatch) };
            Val::Int { bits: truncate(sign_extend(bits, width) as u64, w_to), width: w_to }
        }
        Opcode::FPTrunc => Val::F32(v.as_f64().ok_or(Trap::TypeMismatch)? as f32),
        Opcode::FPExt => Val::F64(v.as_f64().ok_or(Trap::TypeMismatch)?),
        Opcode::FPToUI => {
            let x = v.as_f64().ok_or(Trap::TypeMismatch)?;
            Val::Int { bits: truncate(x as u64, w_to), width: w_to }
        }
        Opcode::FPToSI => {
            let x = v.as_f64().ok_or(Trap::TypeMismatch)?;
            Val::Int { bits: truncate(x as i64 as u64, w_to), width: w_to }
        }
        Opcode::UIToFP => {
            let x = v.as_u64().ok_or(Trap::TypeMismatch)?;
            if is_f32_to {
                Val::F32(x as f32)
            } else {
                Val::F64(x as f64)
            }
        }
        Opcode::SIToFP => {
            let Val::Int { bits, width } = *v else { return Err(Trap::TypeMismatch) };
            let x = sign_extend(bits, width);
            if is_f32_to {
                Val::F32(x as f32)
            } else {
                Val::F64(x as f64)
            }
        }
        Opcode::PtrToInt => {
            let x = v.as_u64().ok_or(Trap::TypeMismatch)?;
            Val::Int { bits: truncate(x, w_to), width: w_to }
        }
        Opcode::IntToPtr => Val::Ptr(v.as_u64().ok_or(Trap::TypeMismatch)?),
        Opcode::BitCast => bitcast(v, to, ts)?,
        _ => return Err(Trap::Malformed),
    })
}

fn bitcast(v: &Val, to: fmsa_ir::TyId, ts: &fmsa_ir::TypeStore) -> Result<Val, Trap> {
    let bits = match *v {
        Val::Int { bits, .. } => bits,
        Val::F32(x) => x.to_bits() as u64,
        Val::F64(x) => x.to_bits(),
        Val::Ptr(p) => p,
        Val::Agg(_) => return Err(Trap::TypeMismatch),
    };
    Ok(match ts.get(to) {
        Type::Int(w) => Val::Int { bits: truncate(bits, (*w).min(64)), width: (*w).min(64) },
        Type::Half | Type::Float => Val::F32(f32::from_bits(bits as u32)),
        Type::Double => Val::F64(f64::from_bits(bits)),
        Type::Ptr { .. } => Val::Ptr(bits),
        _ => return Err(Trap::TypeMismatch),
    })
}
