//! # fmsa-interp — an interpreter for the FMSA IR
//!
//! Executes [`fmsa_ir`] modules directly. In the reproduction of *Function
//! Merging by Sequence Alignment* (CGO 2019) the interpreter plays two
//! roles:
//!
//! 1. **Correctness oracle** — differential tests run original and merged
//!    modules on the same inputs and require bit-identical observable
//!    behaviour (return values and `print_*` output).
//! 2. **Runtime-overhead measurement** (paper Fig. 14) — dynamic
//!    instruction counts expose exactly the extra `func_id` branches and
//!    `select`s merged code executes; the per-function/per-block
//!    [`Profile`] doubles as the profiling information used to exclude hot
//!    functions from merging (§V-D).
//!
//! The machine model: flat little-endian memory with stack/heap regions,
//! direct calls only, Itanium-style unwinding (`invoke`/`landingpad`/
//! `resume`), and a host registry for external functions.

#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
mod host;
mod machine;
mod memory;
mod profile;
mod value;

pub use batch::{run_differential_batch, BatchConfig, BatchOutcome, BatchTarget, Mismatch};
pub use corpus::{harvest_seeds, seeded_args, CorpusSeeds};
pub use host::{HostCtx, HostRegistry, HostResult};
pub use machine::{Interpreter, RunResult};
pub use memory::Memory;
pub use profile::Profile;
pub use value::{sign_extend, truncate, Val};

use std::error::Error;
use std::fmt;

/// A runtime error that aborts execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// The dynamic instruction budget was exhausted.
    OutOfFuel,
    /// Call depth exceeded the limit.
    StackOverflow,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Load/store through the null pointer.
    NullDeref,
    /// Memory access outside any allocation.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        len: usize,
    },
    /// A value's runtime shape did not match the expected type.
    TypeMismatch,
    /// Access to a type without a size (`void`, `label`, function).
    UnsizedAccess,
    /// An `unreachable` instruction was executed.
    UnreachableExecuted,
    /// An instruction result was read before being computed.
    UseBeforeDef,
    /// Structurally malformed IR reached the interpreter.
    Malformed,
    /// Execution ran past the end of a block without a terminator.
    FellOffBlock,
    /// Indirect calls are not supported by this machine.
    IndirectCallUnsupported,
    /// A call to an unknown function name.
    UnknownFunction(String),
    /// A declaration had no registered host implementation.
    UnknownHost(String),
    /// An exception unwound out of the top-level call (payload attached).
    UncaughtException(u64),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::DivisionByZero => write!(f, "division by zero"),
            Trap::NullDeref => write!(f, "null pointer dereference"),
            Trap::OutOfBounds { addr, len } => {
                write!(f, "out-of-bounds access of {len} bytes at {addr:#x}")
            }
            Trap::TypeMismatch => write!(f, "runtime type mismatch"),
            Trap::UnsizedAccess => write!(f, "access to unsized type"),
            Trap::UnreachableExecuted => write!(f, "unreachable executed"),
            Trap::UseBeforeDef => write!(f, "use of undefined instruction result"),
            Trap::Malformed => write!(f, "malformed IR"),
            Trap::FellOffBlock => write!(f, "control fell off the end of a block"),
            Trap::IndirectCallUnsupported => write!(f, "indirect calls unsupported"),
            Trap::UnknownFunction(n) => write!(f, "unknown function @{n}"),
            Trap::UnknownHost(n) => write!(f, "no host implementation for @{n}"),
            Trap::UncaughtException(p) => write!(f, "uncaught exception (payload {p})"),
        }
    }
}

impl Error for Trap {}

/// One-shot convenience: interpret `name` in `module` with `args` using
/// default hosts and fuel.
///
/// # Errors
///
/// Propagates any [`Trap`].
pub fn execute(module: &fmsa_ir::Module, name: &str, args: Vec<Val>) -> Result<RunResult, Trap> {
    Interpreter::new(module).run(name, args)
}
