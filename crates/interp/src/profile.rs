//! Execution profiles.
//!
//! The paper's §V-D case study relies on "profiling information to identify
//! blocks of hot code": preventing hot functions from merging removes all
//! runtime overhead. The interpreter collects exactly that information —
//! per-function dynamic instruction counts, call counts, and per-block
//! execution counts — keyed by *function name* so profiles remain valid
//! across merging transformations.

use std::collections::HashMap;

/// Execution counters accumulated over one or more runs.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Total dynamic instructions executed.
    pub total_steps: u64,
    fn_steps: HashMap<String, u64>,
    fn_calls: HashMap<String, u64>,
    block_counts: HashMap<(String, usize), u64>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    pub(crate) fn record_step(&mut self, func: &str) {
        self.total_steps += 1;
        *self.fn_steps.entry(func.to_owned()).or_insert(0) += 1;
    }

    pub(crate) fn record_call(&mut self, func: &str) {
        *self.fn_calls.entry(func.to_owned()).or_insert(0) += 1;
    }

    pub(crate) fn record_block(&mut self, func: &str, block: usize) {
        *self.block_counts.entry((func.to_owned(), block)).or_insert(0) += 1;
    }

    /// Dynamic instructions attributed to `func`.
    pub fn steps_of(&self, func: &str) -> u64 {
        self.fn_steps.get(func).copied().unwrap_or(0)
    }

    /// Number of times `func` was entered.
    pub fn calls_of(&self, func: &str) -> u64 {
        self.fn_calls.get(func).copied().unwrap_or(0)
    }

    /// Execution count of a block (by arena index) inside `func`.
    pub fn block_count(&self, func: &str, block: usize) -> u64 {
        self.block_counts.get(&(func.to_owned(), block)).copied().unwrap_or(0)
    }

    /// Functions sorted hottest-first by dynamic instruction count.
    pub fn hottest(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.fn_steps.iter().map(|(k, &n)| (k.as_str(), n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Names of functions whose dynamic instruction share exceeds
    /// `fraction` of the total — the "hot functions" the paper excludes
    /// from merging to remove runtime overhead (§V-D).
    pub fn hot_functions(&self, fraction: f64) -> Vec<String> {
        if self.total_steps == 0 {
            return Vec::new();
        }
        let cutoff = self.total_steps as f64 * fraction;
        let mut v: Vec<String> = self
            .fn_steps
            .iter()
            .filter(|(_, &n)| n as f64 >= cutoff)
            .map(|(k, _)| k.clone())
            .collect();
        v.sort();
        v
    }

    /// Iterates over the `(function, block)` pairs that executed at
    /// least once — the path-coverage surface the differential fuzz farm
    /// aggregates across a batch.
    pub fn covered_blocks(&self) -> impl Iterator<Item = (&str, usize)> {
        self.block_counts.keys().map(|(f, b)| (f.as_str(), *b))
    }

    /// Merges another profile into this one (for aggregating runs).
    pub fn merge(&mut self, other: &Profile) {
        self.total_steps += other.total_steps;
        for (k, v) in &other.fn_steps {
            *self.fn_steps.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.fn_calls {
            *self.fn_calls.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.block_counts {
            *self.block_counts.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut p = Profile::new();
        p.record_call("f");
        p.record_step("f");
        p.record_step("f");
        p.record_step("g");
        p.record_block("f", 0);
        p.record_block("f", 0);
        assert_eq!(p.total_steps, 3);
        assert_eq!(p.steps_of("f"), 2);
        assert_eq!(p.calls_of("f"), 1);
        assert_eq!(p.block_count("f", 0), 2);
        assert_eq!(p.steps_of("missing"), 0);
    }

    #[test]
    fn hottest_is_sorted() {
        let mut p = Profile::new();
        for _ in 0..10 {
            p.record_step("hot");
        }
        p.record_step("cold");
        let h = p.hottest();
        assert_eq!(h[0].0, "hot");
        assert_eq!(h[1].0, "cold");
    }

    #[test]
    fn hot_function_threshold() {
        let mut p = Profile::new();
        for _ in 0..90 {
            p.record_step("hot");
        }
        for _ in 0..10 {
            p.record_step("cold");
        }
        assert_eq!(p.hot_functions(0.5), vec!["hot".to_owned()]);
        assert!(p.hot_functions(0.05).contains(&"cold".to_owned()));
        assert!(Profile::new().hot_functions(0.5).is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Profile::new();
        a.record_step("f");
        let mut b = Profile::new();
        b.record_step("f");
        b.record_step("g");
        a.merge(&b);
        assert_eq!(a.total_steps, 3);
        assert_eq!(a.steps_of("f"), 2);
        assert_eq!(a.steps_of("g"), 1);
    }
}
