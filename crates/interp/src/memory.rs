//! Flat little-endian memory for the interpreter.
//!
//! Two disjoint regions share one 64-bit address space:
//!
//! * **stack** — `alloca` storage, bump-allocated and rolled back when the
//!   owning frame returns;
//! * **heap** — `malloc`-style storage, bump-allocated, never freed (the
//!   interpreter runs bounded workloads).
//!
//! Address 0 is the null pointer; dereferencing it traps.

use crate::value::{truncate, Val};
use crate::Trap;
use fmsa_ir::{TyId, Type, TypeStore};

const STACK_BASE: u64 = 0x1000;
const HEAP_BASE: u64 = 0x8000_0000;

/// Byte-addressable memory with stack and heap regions.
#[derive(Debug, Default)]
pub struct Memory {
    stack: Vec<u8>,
    heap: Vec<u8>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Current stack watermark (pass to [`Memory::pop_to`] on frame exit).
    pub fn stack_mark(&self) -> usize {
        self.stack.len()
    }

    /// Rolls the stack back to a previous watermark.
    pub fn pop_to(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }

    /// Allocates `size` bytes on the stack, 8-byte aligned; returns the
    /// address.
    pub fn alloca(&mut self, size: u64) -> u64 {
        let aligned = self.stack.len().div_ceil(8) * 8;
        self.stack.resize(aligned + size as usize, 0);
        STACK_BASE + aligned as u64
    }

    /// Allocates `size` bytes on the heap; returns the address.
    pub fn malloc(&mut self, size: u64) -> u64 {
        let aligned = self.heap.len().div_ceil(8) * 8;
        self.heap.resize(aligned + size as usize, 0);
        HEAP_BASE + aligned as u64
    }

    fn slice_mut(&mut self, addr: u64, len: usize) -> Result<&mut [u8], Trap> {
        if addr == 0 {
            return Err(Trap::NullDeref);
        }
        if addr >= HEAP_BASE {
            let off = (addr - HEAP_BASE) as usize;
            if off + len > self.heap.len() {
                return Err(Trap::OutOfBounds { addr, len });
            }
            Ok(&mut self.heap[off..off + len])
        } else if addr >= STACK_BASE {
            let off = (addr - STACK_BASE) as usize;
            if off + len > self.stack.len() {
                return Err(Trap::OutOfBounds { addr, len });
            }
            Ok(&mut self.stack[off..off + len])
        } else {
            Err(Trap::OutOfBounds { addr, len })
        }
    }

    fn slice(&self, addr: u64, len: usize) -> Result<&[u8], Trap> {
        if addr == 0 {
            return Err(Trap::NullDeref);
        }
        if addr >= HEAP_BASE {
            let off = (addr - HEAP_BASE) as usize;
            if off + len > self.heap.len() {
                return Err(Trap::OutOfBounds { addr, len });
            }
            Ok(&self.heap[off..off + len])
        } else if addr >= STACK_BASE {
            let off = (addr - STACK_BASE) as usize;
            if off + len > self.stack.len() {
                return Err(Trap::OutOfBounds { addr, len });
            }
            Ok(&self.stack[off..off + len])
        } else {
            Err(Trap::OutOfBounds { addr, len })
        }
    }

    /// Reads raw little-endian bytes as a u64 (len ≤ 8).
    pub fn read_uint(&self, addr: u64, len: usize) -> Result<u64, Trap> {
        let bytes = self.slice(addr, len)?;
        let mut buf = [0u8; 8];
        buf[..len].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `len` bytes of `v` little-endian.
    pub fn write_uint(&mut self, addr: u64, v: u64, len: usize) -> Result<(), Trap> {
        let bytes = self.slice_mut(addr, len)?;
        bytes.copy_from_slice(&v.to_le_bytes()[..len]);
        Ok(())
    }

    /// Loads a typed value from `addr`.
    ///
    /// # Errors
    ///
    /// Traps on null/out-of-bounds access or unsized types.
    pub fn load(&self, addr: u64, ty: TyId, ts: &TypeStore) -> Result<Val, Trap> {
        match ts.get(ty) {
            Type::Int(w) => {
                let len = ts.byte_size(ty).expect("sized") as usize;
                let bits = self.read_uint(addr, len.min(8))?;
                Ok(Val::Int { bits: truncate(bits, (*w).min(64)), width: (*w).min(64) })
            }
            Type::Half | Type::Float => {
                let bits = self.read_uint(addr, 4)?;
                Ok(Val::F32(f32::from_bits(bits as u32)))
            }
            Type::Double => {
                let bits = self.read_uint(addr, 8)?;
                Ok(Val::F64(f64::from_bits(bits)))
            }
            Type::Ptr { .. } => Ok(Val::Ptr(self.read_uint(addr, 8)?)),
            Type::Array { elem, len } => {
                let esz = ts.byte_size(*elem).ok_or(Trap::UnsizedAccess)?;
                let mut out = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    out.push(self.load(addr + i * esz, *elem, ts)?);
                }
                Ok(Val::Agg(out))
            }
            Type::Struct { fields, .. } => {
                let mut out = Vec::with_capacity(fields.len());
                for (i, &f) in fields.iter().enumerate() {
                    let off = ts.struct_field_offset(ty, i).ok_or(Trap::UnsizedAccess)?;
                    out.push(self.load(addr + off, f, ts)?);
                }
                Ok(Val::Agg(out))
            }
            _ => Err(Trap::UnsizedAccess),
        }
    }

    /// Stores a typed value to `addr`.
    ///
    /// # Errors
    ///
    /// Traps on null/out-of-bounds access, unsized types, or a value whose
    /// shape does not match `ty`.
    pub fn store(&mut self, addr: u64, v: &Val, ty: TyId, ts: &TypeStore) -> Result<(), Trap> {
        match (ts.get(ty), v) {
            (Type::Int(_), Val::Int { bits, .. }) => {
                let len = ts.byte_size(ty).expect("sized") as usize;
                self.write_uint(addr, *bits, len.min(8))
            }
            (Type::Half | Type::Float, Val::F32(x)) => self.write_uint(addr, x.to_bits() as u64, 4),
            (Type::Double, Val::F64(x)) => self.write_uint(addr, x.to_bits(), 8),
            (Type::Ptr { .. }, Val::Ptr(p)) => self.write_uint(addr, *p, 8),
            // Tolerate int<->ptr shape mismatches that arise from bitcasts.
            (Type::Ptr { .. }, Val::Int { bits, .. }) => self.write_uint(addr, *bits, 8),
            (Type::Int(_), Val::Ptr(p)) => {
                let len = ts.byte_size(ty).expect("sized") as usize;
                self.write_uint(addr, *p, len.min(8))
            }
            (Type::Array { elem, .. }, Val::Agg(items)) => {
                let esz = ts.byte_size(*elem).ok_or(Trap::UnsizedAccess)?;
                for (i, item) in items.iter().enumerate() {
                    self.store(addr + i as u64 * esz, item, *elem, ts)?;
                }
                Ok(())
            }
            (Type::Struct { fields, .. }, Val::Agg(items)) => {
                let fields = fields.clone();
                for (i, (item, &f)) in items.iter().zip(fields.iter()).enumerate() {
                    let off = ts.struct_field_offset(ty, i).ok_or(Trap::UnsizedAccess)?;
                    self.store(addr + off, item, f, ts)?;
                }
                Ok(())
            }
            _ => Err(Trap::TypeMismatch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let ts = TypeStore::new();
        let mut mem = Memory::new();
        let a = mem.alloca(8);
        mem.store(a, &Val::i32(-7), ts.i32(), &ts).expect("store");
        assert_eq!(mem.load(a, ts.i32(), &ts).expect("load"), Val::i32(-7));
        mem.store(a, &Val::F64(3.25), ts.f64(), &ts).expect("store");
        assert_eq!(mem.load(a, ts.f64(), &ts).expect("load"), Val::F64(3.25));
    }

    #[test]
    fn roundtrip_struct() {
        let mut ts = TypeStore::new();
        let s = ts.struct_(vec![ts.i8(), ts.i32()]);
        let mut mem = Memory::new();
        let a = mem.alloca(ts.byte_size(s).expect("sized"));
        let v = Val::Agg(vec![Val::Int { bits: 0xab, width: 8 }, Val::i32(123)]);
        mem.store(a, &v, s, &ts).expect("store");
        assert!(mem.load(a, s, &ts).expect("load").bit_eq(&v));
    }

    #[test]
    fn null_deref_traps() {
        let ts = TypeStore::new();
        let mem = Memory::new();
        assert_eq!(mem.load(0, ts.i32(), &ts).unwrap_err(), Trap::NullDeref);
    }

    #[test]
    fn out_of_bounds_traps() {
        let ts = TypeStore::new();
        let mut mem = Memory::new();
        let a = mem.alloca(4);
        assert!(matches!(mem.load(a + 1024, ts.i32(), &ts), Err(Trap::OutOfBounds { .. })));
    }

    #[test]
    fn stack_rollback() {
        let mut mem = Memory::new();
        let mark = mem.stack_mark();
        let a1 = mem.alloca(64);
        mem.pop_to(mark);
        let a2 = mem.alloca(64);
        assert_eq!(a1, a2, "rolled-back stack reuses addresses");
    }

    #[test]
    fn heap_is_separate_from_stack() {
        let mut mem = Memory::new();
        let s = mem.alloca(16);
        let h = mem.malloc(16);
        assert!(h > s);
        assert!(h >= HEAP_BASE);
    }
}
