//! Host (external) functions.
//!
//! Declarations — functions without a body — are dispatched by name to a
//! [`HostRegistry`]. The default registry provides the small libc/libm-like
//! surface the synthetic workloads use (allocation, math, output, and an
//! exception-throwing helper for exercising the `invoke`/`landingpad`
//! merging paths).

use crate::memory::Memory;
use crate::value::Val;
use crate::Trap;
use std::collections::HashMap;

/// Mutable machine state visible to host functions.
#[derive(Debug)]
pub struct HostCtx<'a> {
    /// The machine memory (hosts may allocate).
    pub mem: &'a mut Memory,
    /// Captured program output (`print_*` hosts append here).
    pub output: &'a mut Vec<String>,
}

/// What a host call did.
#[derive(Debug, Clone, PartialEq)]
pub enum HostResult {
    /// Normal return with a value (`Val::Int{bits:0,width:1}`-like dummies
    /// are fine for `void` hosts; the machine ignores the value then).
    Return(Val),
    /// Begin unwinding with the given exception payload.
    Unwind(u64),
}

type HostFn = Box<dyn Fn(&mut HostCtx<'_>, &[Val]) -> Result<HostResult, Trap>>;

/// Named host functions callable from IR declarations.
#[derive(Default)]
pub struct HostRegistry {
    fns: HashMap<String, HostFn>,
}

impl std::fmt::Debug for HostRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.fns.keys().collect();
        names.sort();
        f.debug_struct("HostRegistry").field("fns", &names).finish()
    }
}

impl HostRegistry {
    /// An empty registry.
    pub fn empty() -> HostRegistry {
        HostRegistry::default()
    }

    /// Registry pre-populated with the default host surface:
    ///
    /// | name | behaviour |
    /// |---|---|
    /// | `malloc`, `mymalloc` | heap allocation, returns pointer |
    /// | `free` | no-op |
    /// | `sqrt`, `sin`, `cos`, `exp`, `log` | f64 math |
    /// | `sqrtf` | f32 math |
    /// | `print_i32`, `print_i64`, `print_f32`, `print_f64` | append to output |
    /// | `host_id` | returns its first argument (opaque identity) |
    /// | `throw_exn` | unwinds with its argument as payload when non-zero; returns otherwise |
    pub fn with_defaults() -> HostRegistry {
        let mut reg = HostRegistry::empty();
        reg.register("malloc", |ctx, args| {
            let size = args.first().and_then(Val::as_u64).ok_or(Trap::TypeMismatch)?;
            Ok(HostResult::Return(Val::Ptr(ctx.mem.malloc(size))))
        });
        reg.register("mymalloc", |ctx, args| {
            let size = args.first().and_then(Val::as_u64).ok_or(Trap::TypeMismatch)?;
            Ok(HostResult::Return(Val::Ptr(ctx.mem.malloc(size))))
        });
        reg.register("free", |_, _| Ok(HostResult::Return(Val::bool(false))));
        for (name, f) in [
            ("sqrt", f64::sqrt as fn(f64) -> f64),
            ("sin", f64::sin),
            ("cos", f64::cos),
            ("exp", f64::exp),
            ("log", f64::ln),
        ] {
            reg.register(name, move |_, args| {
                let x = args.first().and_then(Val::as_f64).ok_or(Trap::TypeMismatch)?;
                Ok(HostResult::Return(Val::F64(f(x))))
            });
        }
        reg.register("sqrtf", |_, args| {
            let x = args.first().and_then(Val::as_f64).ok_or(Trap::TypeMismatch)?;
            Ok(HostResult::Return(Val::F32((x as f32).sqrt())))
        });
        reg.register("print_i32", |ctx, args| {
            let x = args.first().and_then(Val::as_i64).ok_or(Trap::TypeMismatch)?;
            ctx.output.push(format!("{}", x as i32));
            Ok(HostResult::Return(Val::bool(false)))
        });
        reg.register("print_i64", |ctx, args| {
            let x = args.first().and_then(Val::as_i64).ok_or(Trap::TypeMismatch)?;
            ctx.output.push(format!("{x}"));
            Ok(HostResult::Return(Val::bool(false)))
        });
        reg.register("print_f32", |ctx, args| {
            let x = args.first().and_then(Val::as_f64).ok_or(Trap::TypeMismatch)?;
            ctx.output.push(format!("{:?}", x as f32));
            Ok(HostResult::Return(Val::bool(false)))
        });
        reg.register("print_f64", |ctx, args| {
            let x = args.first().and_then(Val::as_f64).ok_or(Trap::TypeMismatch)?;
            ctx.output.push(format!("{x:?}"));
            Ok(HostResult::Return(Val::bool(false)))
        });
        reg.register("host_id", |_, args| {
            Ok(HostResult::Return(args.first().cloned().unwrap_or(Val::bool(false))))
        });
        reg.register("throw_exn", |_, args| {
            // Throws when the payload is non-zero; returns normally
            // otherwise, so tests can drive both paths from an argument.
            let payload = args.first().and_then(Val::as_u64).unwrap_or(1);
            if payload == 0 {
                Ok(HostResult::Return(Val::bool(false)))
            } else {
                Ok(HostResult::Unwind(payload))
            }
        });
        reg
    }

    /// Registers (or replaces) a host function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut HostCtx<'_>, &[Val]) -> Result<HostResult, Trap> + 'static,
    ) {
        self.fns.insert(name.into(), Box::new(f));
    }

    /// Calls host function `name`.
    ///
    /// # Errors
    ///
    /// [`Trap::UnknownHost`] if no such host is registered; otherwise
    /// whatever the host returns.
    pub fn call(
        &self,
        name: &str,
        ctx: &mut HostCtx<'_>,
        args: &[Val],
    ) -> Result<HostResult, Trap> {
        match self.fns.get(name) {
            Some(f) => f(ctx, args),
            None => Err(Trap::UnknownHost(name.to_owned())),
        }
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (Memory, Vec<String>) {
        (Memory::new(), Vec::new())
    }

    #[test]
    fn default_registry_has_core_surface() {
        let reg = HostRegistry::with_defaults();
        for name in ["malloc", "mymalloc", "free", "sqrt", "print_i32", "throw_exn"] {
            assert!(reg.contains(name), "{name} missing");
        }
        assert!(!reg.contains("nonexistent"));
    }

    #[test]
    fn malloc_returns_valid_pointer() {
        let reg = HostRegistry::with_defaults();
        let (mut mem, mut out) = ctx_parts();
        let mut ctx = HostCtx { mem: &mut mem, output: &mut out };
        let r = reg.call("malloc", &mut ctx, &[Val::i64(16)]).expect("ok");
        let HostResult::Return(Val::Ptr(p)) = r else { panic!("expected ptr") };
        assert_ne!(p, 0);
    }

    #[test]
    fn print_appends_output() {
        let reg = HostRegistry::with_defaults();
        let (mut mem, mut out) = ctx_parts();
        let mut ctx = HostCtx { mem: &mut mem, output: &mut out };
        reg.call("print_i32", &mut ctx, &[Val::i32(-5)]).expect("ok");
        assert_eq!(out, vec!["-5".to_owned()]);
    }

    #[test]
    fn throw_unwinds() {
        let reg = HostRegistry::with_defaults();
        let (mut mem, mut out) = ctx_parts();
        let mut ctx = HostCtx { mem: &mut mem, output: &mut out };
        let r = reg.call("throw_exn", &mut ctx, &[Val::i64(42)]).expect("ok");
        assert_eq!(r, HostResult::Unwind(42));
    }

    #[test]
    fn unknown_host_traps() {
        let reg = HostRegistry::empty();
        let (mut mem, mut out) = ctx_parts();
        let mut ctx = HostCtx { mem: &mut mem, output: &mut out };
        assert!(matches!(reg.call("nope", &mut ctx, &[]), Err(Trap::UnknownHost(_))));
    }
}
