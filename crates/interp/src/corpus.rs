//! Coverage-seeded input corpus for the differential fuzz farm.
//!
//! Uniform random inputs exercise merged bodies poorly: the interesting
//! control decisions a merge introduces — the `func_id` selector, the
//! `select`s over merged operands, the `switch` arms and `phi` joins the
//! codegen stitched together — branch on *specific constants* from the
//! original bodies. This module harvests those constants from the
//! post-merge module's branchy instructions (`select`, `switch`, `icmp`,
//! `fcmp`, `phi`, `condbr`) and mixes them (plus their off-by-one
//! neighbours and classic boundary values) into argument synthesis, so
//! both sides of every merged body get driven through their comparisons
//! rather than only the statistically likely one.

use fmsa_ir::{Module, Opcode, TyId, Value};
use rand::rngs::StdRng;
use rand::Rng;

use crate::Val;

/// Constants harvested from a module's branch-feeding instructions.
#[derive(Debug, Clone, Default)]
pub struct CorpusSeeds {
    /// Integer seed values (sign-agnostic bit patterns, widened to 64
    /// bits), deduplicated and sorted for determinism.
    pub ints: Vec<i64>,
    /// Float seed values.
    pub floats: Vec<f64>,
}

impl CorpusSeeds {
    /// Whether the harvest found nothing (argument synthesis then falls
    /// back to pure random).
    pub fn is_empty(&self) -> bool {
        self.ints.is_empty() && self.floats.is_empty()
    }
}

/// Opcodes whose constant operands steer control flow in merged bodies.
fn is_branchy(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Select
            | Opcode::Switch
            | Opcode::ICmp
            | Opcode::FCmp
            | Opcode::Phi
            | Opcode::CondBr
    )
}

/// Harvests branch-steering constants from every live function of
/// `module`, adding ±1 neighbours (comparison boundaries are where
/// behaviour flips) and the classic integer boundary values.
pub fn harvest_seeds(module: &Module) -> CorpusSeeds {
    let mut ints: Vec<i64> = vec![0, 1, -1, i32::MIN as i64, i32::MAX as i64, i64::MIN, i64::MAX];
    let mut floats: Vec<f64> = vec![0.0, 1.0, -1.0];
    for f in module.func_ids() {
        let func = module.func(f);
        if func.is_declaration() {
            continue;
        }
        for b in func.block_ids() {
            for &i in &func.block(b).insts {
                let inst = func.inst(i);
                if !is_branchy(inst.opcode) {
                    continue;
                }
                for operand in &inst.operands {
                    match *operand {
                        Value::ConstInt { bits, .. } => {
                            let v = bits as i64;
                            ints.push(v);
                            ints.push(v.wrapping_add(1));
                            ints.push(v.wrapping_sub(1));
                        }
                        Value::ConstFloat { ty, bits } => {
                            let x = if module.types.display(ty) == "float" {
                                f32::from_bits(bits as u32) as f64
                            } else {
                                f64::from_bits(bits)
                            };
                            if x.is_finite() {
                                floats.push(x);
                                floats.push(x + 1.0);
                                floats.push(x - 1.0);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    ints.sort_unstable();
    ints.dedup();
    floats.sort_by(f64::total_cmp);
    floats.dedup_by(|a, b| a.to_bits() == b.to_bits());
    CorpusSeeds { ints, floats }
}

/// Synthesizes one argument vector for a function of type `fn_ty`:
/// roughly half the scalars are drawn from the seed pool, the rest are
/// uniform random. `skip_mem` drops the first parameter (the threaded
/// linear-memory base a driver supplies).
pub fn seeded_args(
    rng: &mut StdRng,
    module: &Module,
    fn_ty: TyId,
    seeds: &CorpusSeeds,
    skip_mem: bool,
) -> Vec<Val> {
    let params = module.types.fn_params(fn_ty).expect("function type");
    let params = if skip_mem { &params[1..] } else { params };
    params
        .iter()
        .map(|&p| {
            let from_pool = !seeds.is_empty() && rng.gen_bool(0.5);
            if module.types.is_float(p) {
                let x = if from_pool && !seeds.floats.is_empty() {
                    seeds.floats[rng.gen_range(0..seeds.floats.len())]
                } else {
                    rng.gen_range(-8000i64..8000) as f64 / 8.0
                };
                if module.types.display(p) == "float" {
                    Val::F32(x as f32)
                } else {
                    Val::F64(x)
                }
            } else {
                let v = if from_pool && !seeds.ints.is_empty() {
                    seeds.ints[rng.gen_range(0..seeds.ints.len())]
                } else {
                    rng.gen::<i64>()
                };
                if module.types.int_width(p) == Some(64) {
                    Val::i64(v)
                } else {
                    Val::i32(v as i32)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::FuncBuilder;
    use rand::SeedableRng;

    fn switchy_module() -> Module {
        let mut m = Module::new("c");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("sw", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let a0 = b.block("a0");
        let a1 = b.block("a1");
        b.switch_to(entry);
        let c7 = b.const_i32(7);
        let cmp = b.icmp(fmsa_ir::IntPredicate::Eq, Value::Param(0), c7);
        b.condbr(cmp, a0, a1);
        b.switch_to(a0);
        b.ret(Some(b.const_i32(1)));
        b.switch_to(a1);
        b.ret(Some(b.const_i32(0)));
        m
    }

    #[test]
    fn harvest_finds_comparison_constants() {
        let m = switchy_module();
        let seeds = harvest_seeds(&m);
        assert!(seeds.ints.contains(&7), "icmp operand harvested: {:?}", seeds.ints);
        assert!(seeds.ints.contains(&8) && seeds.ints.contains(&6), "neighbours included");
        assert!(seeds.ints.contains(&i64::MAX), "boundary values included");
    }

    #[test]
    fn seeded_args_hit_harvested_values() {
        let m = switchy_module();
        let seeds = harvest_seeds(&m);
        let fn_ty = m.func(m.func_by_name("sw").expect("sw")).fn_ty();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hit = false;
        for _ in 0..200 {
            let args = seeded_args(&mut rng, &m, fn_ty, &seeds, false);
            assert_eq!(args.len(), 1);
            if args[0] == Val::i32(7) {
                hit = true;
            }
        }
        assert!(hit, "the pool must surface the branch constant within 200 draws");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let m = switchy_module();
        let seeds = harvest_seeds(&m);
        let fn_ty = m.func(m.func_by_name("sw").expect("sw")).fn_ty();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| seeded_args(&mut rng, &m, fn_ty, &seeds, false)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| seeded_args(&mut rng, &m, fn_ty, &seeds, false)).collect()
        };
        assert_eq!(a, b);
    }
}
