//! Batched differential execution — the fuzz farm's engine.
//!
//! Runs thousands of pre/post-merge input pairs across the worker pool:
//! each job draws a coverage-seeded argument vector (see
//! [`crate::corpus`]), executes the same exported function in the
//! original and the merged module under a fuel limit, and compares the
//! canonicalized outcomes — return value bits, `print_*` output, and
//! trap kind alike. Any divergence is a [`Mismatch`] carrying the input
//! seed that reproduces it; any interpreter panic is caught at the job
//! boundary and counted instead of killing the batch.
//!
//! Modules whose functions thread a linear-memory base pointer (lowered
//! wasm) are driven through [`add_memory_driver`] wrappers appended to
//! *both* modules: the driver allocates the 64 KiB buffer before
//! anything else, so even out-of-bounds trap addresses match between the
//! pre- and post-merge runs.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fmsa_ir::{FuncBuilder, Linkage, Module, TyId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::corpus::{harvest_seeds, seeded_args};
use crate::{Interpreter, RunResult, Trap, Val};

/// One function compared by the batch: what to call and how to
/// synthesize its inputs.
#[derive(Debug, Clone)]
pub struct BatchTarget {
    /// Function name invoked in both modules (the original export, or
    /// its memory driver).
    pub call: String,
    /// Type of the original exported function — drives argument
    /// synthesis.
    pub fn_ty: TyId,
    /// Whether the first parameter is the threaded memory base, supplied
    /// by the driver rather than synthesized.
    pub skip_mem: bool,
}

/// Configuration of one differential batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Worker threads (`1` runs inline).
    pub threads: usize,
    /// Master seed; every job's input seed derives from it, so a batch
    /// is reproducible end to end.
    pub seed: u64,
    /// Input vectors per target.
    pub per_target: usize,
    /// Fuel limit per interpreter run (both sides get the same limit, so
    /// an out-of-fuel trap can never diverge).
    pub fuel: u64,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { threads: 1, seed: 0, per_target: 16, fuel: 2_000_000 }
    }
}

/// A semantic divergence between the pre- and post-merge module.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The diverging target (driver name when memory is threaded).
    pub function: String,
    /// Input seed that reproduces the divergence: re-synthesize the
    /// arguments with `StdRng::seed_from_u64(seed)` via
    /// [`crate::corpus::seeded_args`].
    pub seed: u64,
    /// Canonicalized pre-merge outcome.
    pub pre: String,
    /// Canonicalized post-merge outcome.
    pub post: String,
}

/// Aggregate result of one batch.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Input pairs executed (each ran once on both modules).
    pub pairs_run: usize,
    /// Semantic divergences found.
    pub mismatches: Vec<Mismatch>,
    /// Jobs whose execution panicked (caught at the job boundary).
    pub panics_caught: usize,
    /// Distinct `(function, block)` pairs executed in the post-merge
    /// module — the batch's path-coverage measure.
    pub paths_covered: usize,
}

/// Comparable form of an interpreter outcome: traps by rendered kind and
/// payload, integers by bit pattern, floats by `to_bits` (so `NaN ==
/// NaN` holds where the bits match).
pub fn canon_outcome(r: &Result<RunResult, Trap>) -> String {
    match r {
        Err(t) => format!("trap: {t}"),
        Ok(out) => {
            let v = match &out.value {
                None => "void".to_owned(),
                Some(Val::Int { bits, width }) => format!("i{width}:{bits:#x}"),
                Some(Val::F32(x)) => format!("f32:{:#x}", x.to_bits()),
                Some(Val::F64(x)) => format!("f64:{:#x}", x.to_bits()),
                Some(other) => format!("{other:?}"),
            };
            format!("{v} out={:?}", out.output)
        }
    }
}

/// Appends a driver that materializes the 64 KiB linear memory on the
/// interpreter stack and forwards to `callee` — the host-instantiation
/// step for lowered modules whose functions take the threaded `i8* %mem`.
/// The buffer is the driver's *first* allocation, so its base address is
/// identical in the pre- and post-merge modules and out-of-bounds trap
/// addresses stay comparable.
pub fn add_memory_driver(m: &mut Module, callee: &str) -> String {
    let callee_id = m.func_by_name(callee).expect("callee exists");
    let callee_ty = m.func(callee_id).fn_ty();
    let ret = m.types.fn_ret(callee_ty).expect("fn ty");
    let params: Vec<_> = m.types.fn_params(callee_ty).expect("fn ty")[1..].to_vec();
    let n_args = params.len();
    let driver_ty = m.types.func(ret, params);
    let name = format!("__drive_{callee}");
    let f = m.create_function(name.clone(), driver_ty);
    let mut b = FuncBuilder::new(m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let i8t = b.module().types.i8();
    let buf_ty = b.module_mut().types.array(i8t, 65536);
    let buf = b.alloca(buf_ty);
    let zero = b.const_i64(0);
    let mem = b.gep(buf_ty, buf, vec![zero, zero], i8t);
    let mut args = vec![mem];
    args.extend((0..n_args).map(|k| Value::Param(k as u32)));
    let r = b.call(callee_id, args);
    if b.module().types.fn_ret(callee_ty) == Some(b.module().types.void()) {
        b.ret(None);
    } else {
        b.ret(Some(r));
    }
    name
}

/// Builds the target list for a pre/post module pair: every exported
/// (external, defined) function of `pre` that survives in `post` under
/// its name, wrapped in memory drivers on both sides when `with_memory`.
pub fn wire_targets(pre: &mut Module, post: &mut Module, with_memory: bool) -> Vec<BatchTarget> {
    let exported: Vec<String> = pre
        .func_ids()
        .into_iter()
        .filter(|&f| pre.func(f).linkage == Linkage::External && !pre.func(f).is_declaration())
        .map(|f| pre.func(f).name.clone())
        .collect();
    let mut targets = Vec::new();
    for name in exported {
        let Some(post_id) = post.func_by_name(&name) else { continue };
        let fn_ty = post.func(post_id).fn_ty();
        let call = if with_memory {
            let a = add_memory_driver(pre, &name);
            let b = add_memory_driver(post, &name);
            debug_assert_eq!(a, b);
            a
        } else {
            name
        };
        targets.push(BatchTarget { call, fn_ty, skip_mem: with_memory });
    }
    targets
}

/// SplitMix64 step — derives per-job input seeds from the master seed.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `cfg.per_target` differential input pairs for every target
/// across the worker pool. Inputs are seeded from the post-merge
/// module's harvested branch constants; outcomes are compared via
/// [`canon_outcome`]; panics are caught per job.
pub fn run_differential_batch(
    pre: &Module,
    post: &Module,
    targets: &[BatchTarget],
    cfg: &BatchConfig,
) -> BatchOutcome {
    let seeds = harvest_seeds(post);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cfg.threads.max(1))
        .build()
        .expect("thread pool");
    let mut jobs: Vec<(usize, u64)> = Vec::with_capacity(targets.len() * cfg.per_target);
    for (ti, _) in targets.iter().enumerate() {
        for k in 0..cfg.per_target {
            jobs.push((ti, splitmix(cfg.seed ^ ((ti as u64) << 32) ^ k as u64)));
        }
    }
    // One job = one input vector run on both modules; the panic boundary
    // keeps a crashing run from taking down the batch (the pool rethrows
    // worker panics at join).
    let results = pool.par_map(&jobs, |_, &(ti, input_seed)| {
        catch_unwind(AssertUnwindSafe(|| {
            let target = &targets[ti];
            let mut rng = StdRng::seed_from_u64(input_seed);
            let args = seeded_args(&mut rng, post, target.fn_ty, &seeds, target.skip_mem);
            let mut pre_interp = Interpreter::new(pre);
            pre_interp.set_fuel(cfg.fuel);
            let r_pre = canon_outcome(&pre_interp.run(&target.call, args.clone()));
            let mut post_interp = Interpreter::new(post);
            post_interp.set_fuel(cfg.fuel);
            let r_post = canon_outcome(&post_interp.run(&target.call, args));
            let covered: Vec<(String, usize)> =
                post_interp.profile().covered_blocks().map(|(f, b)| (f.to_owned(), b)).collect();
            (r_pre, r_post, covered)
        }))
        .ok()
    });
    let mut outcome = BatchOutcome::default();
    let mut paths: HashSet<(String, usize)> = HashSet::new();
    for ((ti, input_seed), result) in jobs.into_iter().zip(results) {
        let Some((pre_out, post_out, covered)) = result else {
            outcome.panics_caught += 1;
            continue;
        };
        outcome.pairs_run += 1;
        paths.extend(covered);
        if pre_out != post_out {
            outcome.mismatches.push(Mismatch {
                function: targets[ti].call.clone(),
                seed: input_seed,
                pre: pre_out,
                post: post_out,
            });
        }
    }
    outcome.paths_covered = paths.len();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two modules that agree everywhere except `diverge(3)`.
    fn pair_with_planted_bug() -> (Module, Module) {
        let build = |bug: bool| {
            let mut m = Module::new("m");
            let i32t = m.types.i32();
            let fn_ty = m.types.func(i32t, vec![i32t]);
            let f = m.create_function("diverge", fn_ty);
            m.func_mut(f).linkage = Linkage::External;
            let mut b = FuncBuilder::new(&mut m, f);
            let entry = b.block("entry");
            let hit = b.block("hit");
            let miss = b.block("miss");
            b.switch_to(entry);
            let three = b.const_i32(3);
            let cmp = b.icmp(fmsa_ir::IntPredicate::Eq, Value::Param(0), three);
            b.condbr(cmp, hit, miss);
            b.switch_to(hit);
            let r = b.const_i32(if bug { 999 } else { 100 });
            b.ret(Some(r));
            b.switch_to(miss);
            b.ret(Some(Value::Param(0)));
            m
        };
        (build(false), build(true))
    }

    #[test]
    fn corpus_seeding_finds_the_planted_divergence() {
        let (mut pre, mut post) = pair_with_planted_bug();
        let targets = wire_targets(&mut pre, &mut post, false);
        assert_eq!(targets.len(), 1);
        // Uniform random i32 inputs would hit x == 3 once per 4 billion
        // draws; the harvested corpus finds it in a small batch.
        let cfg = BatchConfig { threads: 2, seed: 9, per_target: 256, ..BatchConfig::default() };
        let out = run_differential_batch(&pre, &post, &targets, &cfg);
        assert_eq!(out.pairs_run, 256);
        assert_eq!(out.panics_caught, 0);
        assert!(!out.mismatches.is_empty(), "seeded corpus must hit x == 3");
        let m = &out.mismatches[0];
        assert_eq!(m.function, "diverge");
        assert_ne!(m.pre, m.post);
        assert!(out.paths_covered >= 2, "both arms covered: {}", out.paths_covered);
    }

    #[test]
    fn mismatch_seed_replays() {
        let (mut pre, mut post) = pair_with_planted_bug();
        let targets = wire_targets(&mut pre, &mut post, false);
        let cfg = BatchConfig { threads: 1, seed: 9, per_target: 256, ..BatchConfig::default() };
        let out = run_differential_batch(&pre, &post, &targets, &cfg);
        let m = out.mismatches.first().expect("planted bug found");
        // Replay: the recorded seed re-synthesizes the diverging input.
        let seeds = harvest_seeds(&post);
        let mut rng = StdRng::seed_from_u64(m.seed);
        let args = seeded_args(&mut rng, &post, targets[0].fn_ty, &seeds, false);
        let r_pre = canon_outcome(&Interpreter::new(&pre).run(&m.function, args.clone()));
        let r_post = canon_outcome(&Interpreter::new(&post).run(&m.function, args));
        assert_eq!(r_pre, m.pre);
        assert_eq!(r_post, m.post);
        assert_ne!(r_pre, r_post);
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let (mut pre, mut post) = pair_with_planted_bug();
        let targets = wire_targets(&mut pre, &mut post, false);
        let run = |threads| {
            let cfg = BatchConfig { threads, seed: 5, per_target: 48, ..BatchConfig::default() };
            let out = run_differential_batch(&pre, &post, &targets, &cfg);
            let mut seeds: Vec<u64> = out.mismatches.iter().map(|m| m.seed).collect();
            seeds.sort_unstable();
            (out.pairs_run, out.paths_covered, seeds)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn identical_modules_never_mismatch() {
        let (mut pre, _) = pair_with_planted_bug();
        let mut post = pre.clone();
        let targets = wire_targets(&mut pre, &mut post, false);
        let cfg = BatchConfig { threads: 2, seed: 1, per_target: 32, ..BatchConfig::default() };
        let out = run_differential_batch(&pre, &post, &targets, &cfg);
        assert_eq!(out.pairs_run, 32);
        assert!(out.mismatches.is_empty());
        assert_eq!(out.panics_caught, 0);
    }
}
