//! Runtime values of the interpreter.

use fmsa_ir::{TyId, Type, TypeStore};

/// A dynamic value produced during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// An integer of the given bit width; `bits` is zero-extended.
    Int {
        /// Raw bits, truncated to `width` and zero-extended to 64.
        bits: u64,
        /// Bit width (1..=64).
        width: u32,
    },
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// A pointer (numeric address in the machine's address space; 0 = null).
    Ptr(u64),
    /// An aggregate (struct or array) of field values.
    Agg(Vec<Val>),
}

impl Val {
    /// Boolean constructor (`i1`).
    pub fn bool(v: bool) -> Val {
        Val::Int { bits: v as u64, width: 1 }
    }

    /// `i32` constructor.
    pub fn i32(v: i32) -> Val {
        Val::Int { bits: v as u32 as u64, width: 32 }
    }

    /// `i64` constructor.
    pub fn i64(v: i64) -> Val {
        Val::Int { bits: v as u64, width: 64 }
    }

    /// Truthiness of an `i1`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Int { bits, width: 1 } => Some(*bits != 0),
            _ => None,
        }
    }

    /// Unsigned integer interpretation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Int { bits, .. } => Some(*bits),
            Val::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Signed integer interpretation (sign-extended from its width).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Val::Int { bits, width } => Some(sign_extend(*bits, *width)),
            _ => None,
        }
    }

    /// Floating interpretation (f32 widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::F32(x) => Some(*x as f64),
            Val::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The zero/default value of `ty` (used for `undef`, which the
    /// interpreter makes deterministic by zeroing).
    pub fn zero_of(ty: TyId, ts: &TypeStore) -> Val {
        match ts.get(ty) {
            Type::Int(w) => Val::Int { bits: 0, width: (*w).min(64) },
            Type::Half | Type::Float => Val::F32(0.0),
            Type::Double => Val::F64(0.0),
            Type::Ptr { .. } => Val::Ptr(0),
            Type::Array { elem, len } => {
                Val::Agg((0..*len).map(|_| Val::zero_of(*elem, ts)).collect())
            }
            Type::Struct { fields, .. } => {
                Val::Agg(fields.iter().map(|&f| Val::zero_of(f, ts)).collect())
            }
            // void/label/function values never materialize; default to null.
            _ => Val::Ptr(0),
        }
    }

    /// Semantic equality used by differential tests: floats compare by
    /// bit pattern so NaNs are equal to themselves.
    pub fn bit_eq(&self, other: &Val) -> bool {
        match (self, other) {
            (Val::F32(a), Val::F32(b)) => a.to_bits() == b.to_bits(),
            (Val::F64(a), Val::F64(b)) => a.to_bits() == b.to_bits(),
            (Val::Agg(a), Val::Agg(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bit_eq(y))
            }
            _ => self == other,
        }
    }
}

/// Sign-extends the low `width` bits of `bits` to 64 bits.
pub fn sign_extend(bits: u64, width: u32) -> i64 {
    if width == 0 || width >= 64 {
        return bits as i64;
    }
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

/// Truncates `bits` to `width` bits.
pub fn truncate(bits: u64, width: u32) -> u64 {
    if width >= 64 {
        bits
    } else {
        bits & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xff, 8), -1);
        assert_eq!(sign_extend(0x7f, 8), 127);
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(0x8000_0000, 32), i32::MIN as i64);
        assert_eq!(sign_extend(5, 64), 5);
    }

    #[test]
    fn truncation() {
        assert_eq!(truncate(0x1ff, 8), 0xff);
        assert_eq!(truncate(u64::MAX, 32), 0xffff_ffff);
        assert_eq!(truncate(7, 64), 7);
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(Val::bool(true).as_bool(), Some(true));
        assert_eq!(Val::bool(false).as_bool(), Some(false));
        assert_eq!(Val::i32(1).as_bool(), None, "i32 is not i1");
    }

    #[test]
    fn bit_eq_handles_nan() {
        let nan1 = Val::F64(f64::NAN);
        let nan2 = Val::F64(f64::NAN);
        assert!(nan1.bit_eq(&nan2));
        assert!(nan1 != nan2, "PartialEq keeps IEEE semantics");
    }

    #[test]
    fn zero_of_aggregate() {
        let mut ts = TypeStore::new();
        let s = ts.struct_(vec![ts.i32(), ts.f64()]);
        let z = Val::zero_of(s, &ts);
        assert_eq!(z, Val::Agg(vec![Val::i32(0), Val::F64(0.0)]));
    }
}
