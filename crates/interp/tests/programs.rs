//! End-to-end interpreter tests on small programs built with the IR
//! builder: loops, recursion, memory, switches, φ-nodes, and exception
//! handling — every machine feature the merger's differential tests rely
//! on.

use fmsa_interp::{execute, Interpreter, Trap, Val};
use fmsa_ir::{FuncBuilder, IntPredicate, LandingPadClause, Module, Value};

/// Builds `fact(n)` with an explicit loop and memory-based accumulator.
fn build_fact(m: &mut Module) {
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    let f = m.create_function("fact", fn_ty);
    let mut b = FuncBuilder::new(m, f);
    let entry = b.block("entry");
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    let acc = b.alloca(i32t);
    let i = b.alloca(i32t);
    b.store(b.const_i32(1), acc);
    b.store(b.const_i32(1), i);
    b.br(header);
    b.switch_to(header);
    let iv = b.load(i);
    let c = b.icmp(IntPredicate::Sle, iv, Value::Param(0));
    b.condbr(c, body, exit);
    b.switch_to(body);
    let av = b.load(acc);
    let prod = b.mul(av, iv);
    b.store(prod, acc);
    let inc = b.add(iv, b.const_i32(1));
    b.store(inc, i);
    b.br(header);
    b.switch_to(exit);
    let r = b.load(acc);
    b.ret(Some(r));
}

#[test]
fn factorial_loop() {
    let mut m = Module::new("m");
    build_fact(&mut m);
    assert!(fmsa_ir::verify_module(&m).is_empty());
    let out = execute(&m, "fact", vec![Val::i32(6)]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(720)));
    assert!(out.steps > 20, "loop actually iterated");
}

#[test]
fn recursive_fibonacci() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    let f = m.create_function("fib", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    let base = b.block("base");
    let rec = b.block("rec");
    b.switch_to(entry);
    let c = b.icmp(IntPredicate::Slt, Value::Param(0), b.const_i32(2));
    b.condbr(c, base, rec);
    b.switch_to(base);
    b.ret(Some(Value::Param(0)));
    b.switch_to(rec);
    let n1 = b.sub(Value::Param(0), b.const_i32(1));
    let n2 = b.sub(Value::Param(0), b.const_i32(2));
    let f1 = b.call(f, vec![n1]);
    let f2 = b.call(f, vec![n2]);
    let s = b.add(f1, f2);
    b.ret(Some(s));
    let out = execute(&m, "fib", vec![Val::i32(10)]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(55)));
}

#[test]
fn switch_dispatch() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    let f = m.create_function("classify", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    let one = b.block("one");
    let two = b.block("two");
    let other = b.block("other");
    b.switch_to(entry);
    b.switch(Value::Param(0), other, vec![(b.const_i32(1), one), (b.const_i32(2), two)]);
    b.switch_to(one);
    b.ret(Some(b.const_i32(100)));
    b.switch_to(two);
    b.ret(Some(b.const_i32(200)));
    b.switch_to(other);
    b.ret(Some(b.const_i32(-1)));
    assert_eq!(execute(&m, "classify", vec![Val::i32(1)]).unwrap().value, Some(Val::i32(100)));
    assert_eq!(execute(&m, "classify", vec![Val::i32(2)]).unwrap().value, Some(Val::i32(200)));
    assert_eq!(execute(&m, "classify", vec![Val::i32(9)]).unwrap().value, Some(Val::i32(-1)));
}

#[test]
fn phi_merge_of_branches() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let i1t = m.types.i1();
    let fn_ty = m.types.func(i32t, vec![i1t]);
    let f = m.create_function("pick", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    let a = b.block("a");
    let c = b.block("c");
    let join = b.block("join");
    b.switch_to(entry);
    b.condbr(Value::Param(0), a, c);
    b.switch_to(a);
    b.br(join);
    b.switch_to(c);
    b.br(join);
    b.switch_to(join);
    let phi = b.phi(i32t, vec![(b.const_i32(10), a), (b.const_i32(20), c)]);
    b.ret(Some(phi));
    assert_eq!(execute(&m, "pick", vec![Val::bool(true)]).unwrap().value, Some(Val::i32(10)));
    assert_eq!(execute(&m, "pick", vec![Val::bool(false)]).unwrap().value, Some(Val::i32(20)));
}

#[test]
fn heap_allocation_via_host_malloc() {
    let mut m = Module::new("m");
    let i64t = m.types.i64();
    let i32t = m.types.i32();
    let p32 = m.types.ptr(i32t);
    let p8 = m.types.ptr(m.types.i8());
    let malloc_ty = m.types.func(p8, vec![i64t]);
    let malloc = m.create_function("malloc", malloc_ty); // declaration
    let fn_ty = m.types.func(i32t, vec![]);
    let f = m.create_function("use_heap", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let raw = b.call(malloc, vec![b.const_i64(4)]);
    let typed = b.bitcast(raw, p32);
    b.store(b.const_i32(77), typed);
    let v = b.load(typed);
    b.ret(Some(v));
    let out = execute(&m, "use_heap", vec![]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(77)));
}

#[test]
fn exception_caught_by_invoke() {
    let mut m = Module::new("m");
    let i64t = m.types.i64();
    let void = m.types.void();
    let i32t = m.types.i32();
    let throw_ty = m.types.func(void, vec![i64t]);
    let thrower = m.create_function("throw_exn", throw_ty); // host that unwinds
    let fn_ty = m.types.func(i32t, vec![m.types.i1()]);
    let f = m.create_function("try_it", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    let do_throw = b.block("do_throw");
    let normal = b.block("normal");
    let lpad = b.block("lpad");
    b.switch_to(entry);
    b.condbr(Value::Param(0), do_throw, normal);
    b.switch_to(do_throw);
    b.invoke(thrower, vec![b.const_i64(7)], normal, lpad);
    b.switch_to(normal);
    b.ret(Some(b.const_i32(0)));
    b.switch_to(lpad);
    b.landingpad(vec![LandingPadClause::Catch("any".into())], false);
    b.ret(Some(b.const_i32(1)));
    assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    assert_eq!(execute(&m, "try_it", vec![Val::bool(true)]).unwrap().value, Some(Val::i32(1)));
    assert_eq!(execute(&m, "try_it", vec![Val::bool(false)]).unwrap().value, Some(Val::i32(0)));
}

#[test]
fn uncaught_exception_traps() {
    let mut m = Module::new("m");
    let i64t = m.types.i64();
    let void = m.types.void();
    let throw_ty = m.types.func(void, vec![i64t]);
    let thrower = m.create_function("throw_exn", throw_ty);
    let fn_ty = m.types.func(void, vec![]);
    let f = m.create_function("boom", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    b.call(thrower, vec![b.const_i64(9)]);
    b.ret(None);
    let err = execute(&m, "boom", vec![]).unwrap_err();
    assert_eq!(err, Trap::UncaughtException(9));
}

#[test]
fn division_by_zero_traps() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    let f = m.create_function("div", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let q = b.sdiv(b.const_i32(10), Value::Param(0));
    b.ret(Some(q));
    assert_eq!(execute(&m, "div", vec![Val::i32(0)]).unwrap_err(), Trap::DivisionByZero);
    assert_eq!(execute(&m, "div", vec![Val::i32(2)]).unwrap().value, Some(Val::i32(5)));
}

#[test]
fn fuel_limit_stops_infinite_loop() {
    let mut m = Module::new("m");
    let void = m.types.void();
    let fn_ty = m.types.func(void, vec![]);
    let f = m.create_function("spin", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    let looping = b.block("looping");
    b.switch_to(entry);
    b.br(looping);
    b.switch_to(looping);
    b.br(looping);
    let mut interp = Interpreter::new(&m);
    interp.set_fuel(1000);
    assert_eq!(interp.run("spin", vec![]).unwrap_err(), Trap::OutOfFuel);
}

#[test]
fn profile_counts_calls_and_hotness() {
    let mut m = Module::new("m");
    build_fact(&mut m);
    let mut interp = Interpreter::new(&m);
    for n in 1..=8 {
        interp.run("fact", vec![Val::i32(n)]).expect("runs");
    }
    let p = interp.profile();
    assert_eq!(p.calls_of("fact"), 8);
    assert!(p.steps_of("fact") > 100);
    assert_eq!(p.hottest()[0].0, "fact");
    assert_eq!(p.hot_functions(0.9), vec!["fact".to_owned()]);
}

#[test]
fn gep_struct_and_array_addressing() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    // struct Node { i32 head; [3 x i32] tail; }
    let arr = m.types.array(i32t, 3);
    let node = m.types.struct_(vec![i32t, arr]);
    let fn_ty = m.types.func(i32t, vec![]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let slot = b.alloca(node);
    // &slot->tail[2]
    let zero = b.const_i64(0);
    let one = Value::ConstInt { ty: i32t, bits: 1 };
    let two = Value::ConstInt { ty: i32t, bits: 2 };
    let p = b.gep(node, slot, vec![zero, one, two], i32t);
    b.store(b.const_i32(42), p);
    // &slot->head
    let zero2 = b.const_i64(0);
    let zero3 = Value::ConstInt { ty: i32t, bits: 0 };
    let ph = b.gep(node, slot, vec![zero2, zero3], i32t);
    b.store(b.const_i32(7), ph);
    let v1 = b.load(p);
    let v2 = b.load(ph);
    let s = b.add(v1, v2);
    b.ret(Some(s));
    let _ = i64t;
    let out = execute(&m, "f", vec![]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(49)));
}

#[test]
fn output_capture_in_order() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let void = m.types.void();
    let print_ty = m.types.func(void, vec![i32t]);
    let print = m.create_function("print_i32", print_ty);
    let fn_ty = m.types.func(void, vec![]);
    let f = m.create_function("main", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    for k in [3, 1, 2] {
        b.call(print, vec![b.const_i32(k)]);
    }
    b.ret(None);
    let out = execute(&m, "main", vec![]).expect("runs");
    assert_eq!(out.output, vec!["3", "1", "2"]);
}
