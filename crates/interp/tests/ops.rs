//! Instruction-level semantics tests: aggregates, casts, shifts, and the
//! bit-exact behaviours the differential tests rely on.

use fmsa_interp::{execute, Val};
use fmsa_ir::{FuncBuilder, Module, Opcode, Value};

#[test]
fn extract_and_insert_value() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let f64t = m.types.f64();
    let pair = m.types.struct_(vec![i32t, f64t]);
    let fn_ty = m.types.func(i32t, vec![]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.block("entry");
    b.switch_to(e);
    let agg0 = Value::Undef(pair);
    let agg1 = b.insert_value(agg0, b.const_i32(41), vec![0]);
    let agg2 = b.insert_value(agg1, b.const_f64(2.5), vec![1]);
    let x = b.extract_value(agg2, vec![0], i32t);
    let y = b.extract_value(agg2, vec![1], f64t);
    let yi = b.fptosi(y, i32t);
    let s = b.add(x, yi);
    b.ret(Some(s));
    let out = execute(&m, "f", vec![]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(43)));
}

#[test]
fn nested_aggregate_memory_roundtrip() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let inner = m.types.array(i32t, 2);
    let outer = m.types.struct_(vec![i32t, inner]);
    let fn_ty = m.types.func(i32t, vec![]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.block("entry");
    b.switch_to(e);
    let slot = b.alloca(outer);
    let a0 = Value::Undef(outer);
    let a1 = b.insert_value(a0, b.const_i32(7), vec![0]);
    let a2 = b.insert_value(a1, b.const_i32(10), vec![1, 0]);
    let a3 = b.insert_value(a2, b.const_i32(20), vec![1, 1]);
    b.store(a3, slot);
    let back = b.load(slot);
    let x = b.extract_value(back, vec![0], i32t);
    let y = b.extract_value(back, vec![1, 1], i32t);
    let s = b.add(x, y);
    b.ret(Some(s));
    let out = execute(&m, "f", vec![]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(27)));
}

#[test]
fn cast_semantics() {
    let mut m = Module::new("m");
    let i8t = m.types.i8();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let f32t = m.types.f32();
    let fn_ty = m.types.func(i64t, vec![i32t]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.block("entry");
    b.switch_to(e);
    // trunc -128 -> i8, sext back: sign preserved.
    let t = b.trunc(Value::Param(0), i8t);
    let s = b.sext(t, i64t);
    b.ret(Some(s));
    let out = execute(&m, "f", vec![Val::i32(-128)]).expect("runs");
    assert_eq!(out.value, Some(Val::i64(-128)));
    let out = execute(&m, "f", vec![Val::i32(0x17f)]).expect("runs");
    assert_eq!(out.value, Some(Val::i64(127)), "trunc keeps low bits");
    let _ = f32t;
}

#[test]
fn bitcast_float_int_roundtrip() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let f32t = m.types.f32();
    let fn_ty = m.types.func(f32t, vec![f32t]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.block("entry");
    b.switch_to(e);
    let as_int = b.bitcast(Value::Param(0), i32t);
    let back = b.bitcast(as_int, f32t);
    b.ret(Some(back));
    for v in [1.5f32, -0.0, f32::INFINITY] {
        let out = execute(&m, "f", vec![Val::F32(v)]).expect("runs");
        let Some(Val::F32(r)) = out.value else { panic!("f32 out") };
        assert_eq!(r.to_bits(), v.to_bits());
    }
}

#[test]
fn shift_semantics_mask_by_width() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.block("entry");
    b.switch_to(e);
    let v = b.ashr(Value::Param(0), Value::Param(1));
    b.ret(Some(v));
    let out = execute(&m, "f", vec![Val::i32(-16), Val::i32(2)]).expect("runs");
    assert_eq!(out.value, Some(Val::i32(-4)), "ashr is arithmetic");
}

#[test]
fn unsigned_vs_signed_division() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
    for (name, op) in [("sdiv", Opcode::SDiv), ("udiv", Opcode::UDiv)] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = b.binary(op, Value::Param(0), Value::Param(1));
        b.ret(Some(v));
    }
    let s = execute(&m, "sdiv", vec![Val::i32(-8), Val::i32(2)]).expect("runs");
    assert_eq!(s.value, Some(Val::i32(-4)));
    let u = execute(&m, "udiv", vec![Val::i32(-8), Val::i32(2)]).expect("runs");
    assert_eq!(u.value, Some(Val::i32(((-8i32 as u32) / 2) as i32)));
}

#[test]
fn f32_arithmetic_rounds_through_single_precision() {
    let mut m = Module::new("m");
    let f32t = m.types.f32();
    let fn_ty = m.types.func(f32t, vec![f32t, f32t]);
    let f = m.create_function("f", fn_ty);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.block("entry");
    b.switch_to(e);
    let v = b.fadd(Value::Param(0), Value::Param(1));
    b.ret(Some(v));
    let a = 16_777_216.0f32; // 2^24: adding 1.0 is lost in f32
    let out = execute(&m, "f", vec![Val::F32(a), Val::F32(1.0)]).expect("runs");
    assert_eq!(out.value, Some(Val::F32(a)), "single-precision rounding");
}
