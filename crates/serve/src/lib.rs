//! # fmsa-serve — the FMSA merge daemon
//!
//! A long-running merge service over the [`fmsa`] session API
//! ([`fmsa::MergeSession`]): a content-addressed function store with a
//! durable LSH index (persisted under `--store`, reloaded on restart)
//! behind a dependency-free std-TCP HTTP/JSON layer. Uploads are wasm
//! binaries or textual IR (`fmsa_opt`'s auto-detection, via
//! [`fmsa::load_module_bytes`]); responses stream the merged module back
//! with per-request statistics in `X-Fmsa-*` headers. Because requests
//! run through the same [`fmsa::optimize`] entry point as the batch CLI,
//! a daemon response is byte-identical to `fmsa_opt` output for the same
//! input and configuration.
//!
//! ## Endpoints
//!
//! | Method | Path                | Purpose                                    |
//! |--------|---------------------|--------------------------------------------|
//! | GET    | `/healthz`          | liveness probe (`ok`)                      |
//! | GET    | `/v1/stats`         | session totals + store/queue gauges (JSON) |
//! | POST   | `/v1/modules`       | merge an uploaded module (body = wasm/IR)  |
//! | POST   | `/v1/admin/compact` | compact the store log now                  |
//! | GET    | `/v1/store`         | store summary (JSON)                       |
//! | GET    | `/v1/store/:hash`   | canonical text of one stored function      |
//! | GET    | `/v1/similar/:hash` | cross-module similar functions (`?k=N`)    |
//! | GET    | `/metrics`          | Prometheus text exposition (flight recorder) |
//! | GET    | `/v1/merges/recent` | most recent merge decision records (`?n=K`)|
//!
//! ## Observability
//!
//! The daemon carries the [`fmsa::telemetry`] flight recorder: every
//! request is timed into per-route/status latency histograms, merges
//! into a merge-duration histogram, and the store/session/queue
//! counters are mirrored into gauges at scrape time — all rendered as
//! Prometheus text on `GET /metrics`. The per-attempt merge decision
//! log is queryable at `GET /v1/merges/recent?n=K`. An optional access
//! log ([`ServerConfig::log_level`], `FMSA_LOG` on the binary) writes
//! one line per request to stderr, as text or JSON lines
//! ([`ServerConfig::log_format`]). See `docs/observability.md`.
//!
//! ## Resilience
//!
//! The daemon is built to degrade loudly rather than fall over:
//!
//! * **Graceful shutdown** — [`RunningServer::stop`] (and SIGTERM/ctrl-c
//!   in the binary) stops accepting, drains in-flight connections up to
//!   [`ServerConfig::shutdown_deadline`], then flushes and compacts the
//!   store. [`RunningServer::kill`] skips all of that — the crash path
//!   the chaos harness exercises.
//! * **Backpressure** — connections beyond
//!   [`ServerConfig::max_connections`] get `503`, merges beyond
//!   [`ServerConfig::max_pending_merges`] get `429`; both carry a
//!   `Retry-After` header and a structured JSON body, and both are
//!   counted in `/v1/stats` under `queue`.
//! * **Deadlines** — [`ServerConfig::request_timeout`] bounds each merge;
//!   a timed-out request gets `503` + `Retry-After` while the merge
//!   finishes into the response cache in the background, so the client's
//!   retry is served from cache rather than recomputed.
//!
//! See `docs/service.md` for the protocol details, the store format, and
//! the replay workflow; `docs/robustness.md` for the durability story.

use fmsa::core::store::SimilarEntry;
use fmsa::telemetry::metrics::latency_buckets;
use fmsa::telemetry::{json_escape, trace, DecisionOutcome, Registry};
use fmsa::{Config, ContentHash, Error, MergeOutcome, MergeSession, StoreOptions};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

pub mod client;
pub mod http;
pub mod json;

use http::{Request, RequestError};
use json::Json;

/// Access-log verbosity on stderr. `Off` by default so the daemon
/// stays quiet under load tests; `Info` writes one line per request;
/// `Debug` adds connection accept/close events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No access logging.
    Off,
    /// One line per request (method, path, status, duration, bytes, peer).
    Info,
    /// Request lines plus connection accept/close events.
    Debug,
}

impl LogLevel {
    /// Parses `off` / `info` / `debug` (the `FMSA_LOG` vocabulary).
    pub fn parse(s: &str) -> Result<LogLevel, String> {
        match s {
            "off" => Ok(LogLevel::Off),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!("unknown log level {other:?} (expected off | info | debug)")),
        }
    }
}

/// Access-log line format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable single line.
    Text,
    /// One JSON object per line (machine-ingestible).
    Json,
}

impl LogFormat {
    /// Parses `text` / `json` (the `FMSA_LOG_FORMAT` vocabulary).
    pub fn parse(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (expected text | json)")),
        }
    }
}

/// How the daemon is set up — address, limits, store location, and the
/// merge [`Config`] every request runs under.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Store directory; `None` keeps the store in memory only (nothing
    /// survives a restart).
    pub store_dir: Option<PathBuf>,
    /// Store durability/compaction/fault options (only meaningful with a
    /// persistent `store_dir`).
    pub store: StoreOptions,
    /// Maximum accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum concurrent connections; excess connections get a 503
    /// with `Retry-After`.
    pub max_connections: usize,
    /// Maximum merges in flight (including backgrounded timed-out
    /// ones); excess merge requests get a 429 with `Retry-After`.
    pub max_pending_merges: usize,
    /// Wall-clock budget for one merge request; a request past it gets
    /// a 503 while the merge completes into the response cache in the
    /// background. `None` = unbounded.
    pub request_timeout: Option<Duration>,
    /// How long a graceful shutdown waits for in-flight connections to
    /// drain before flushing and compacting the store anyway.
    pub shutdown_deadline: Duration,
    /// Value of the `Retry-After` header on 429/503 shed responses.
    pub retry_after_secs: u64,
    /// Access-log verbosity on stderr (default [`LogLevel::Off`]).
    pub log_level: LogLevel,
    /// Access-log format (default [`LogFormat::Text`]).
    pub log_format: LogFormat,
    /// The merge configuration applied to every upload.
    pub merge: Config,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            store_dir: None,
            store: StoreOptions::default(),
            max_body: 32 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            max_connections: 32,
            max_pending_merges: 8,
            request_timeout: None,
            shutdown_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            log_level: LogLevel::Off,
            log_format: LogFormat::Text,
            merge: Config::new(),
        }
    }
}

/// Load/shed counters surfaced under `queue` in `/v1/stats`.
#[derive(Debug, Default)]
struct Gauges {
    active: AtomicUsize,
    pending_merges: AtomicUsize,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
    timed_out: AtomicU64,
}

/// Everything a connection handler needs, cheaply cloneable.
#[derive(Clone)]
struct Ctx {
    session: Arc<Mutex<MergeSession>>,
    cfg: Arc<ServerConfig>,
    gauges: Arc<Gauges>,
    metrics: Arc<Registry>,
    stop: Arc<AtomicBool>,
    started: Instant,
    started_unix: u64,
}

/// A bound (but not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    session: Arc<Mutex<MergeSession>>,
    cfg: Arc<ServerConfig>,
    metrics: Arc<Registry>,
    stop: Arc<AtomicBool>,
    hard: Arc<AtomicBool>,
    started: Instant,
    started_unix: u64,
}

/// Handle to a daemon running on a background thread (see
/// [`Server::spawn`]); stopping joins the accept loop.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hard: Arc<AtomicBool>,
    join: Option<JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections
    /// up to the configured deadline, flush and compact the store, then
    /// join the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Hard stop: no drain, no flush, no compaction — the closest an
    /// in-process harness gets to `kill -9`. What survives is whatever
    /// the store's write-ahead log already holds; the chaos experiment
    /// additionally truncates the log tail to simulate dying mid-write.
    pub fn kill(&mut self) {
        self.hard.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Server {
    /// Binds the listener and opens (or creates) the session store.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let session = match &cfg.store_dir {
            Some(dir) => MergeSession::open_with(cfg.merge.clone(), dir, cfg.store.clone())
                .map_err(|e| std::io::Error::other(format!("opening store: {e}")))?,
            None => MergeSession::new(cfg.merge.clone()),
        };
        let started_unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Ok(Server {
            listener,
            session: Arc::new(Mutex::new(session)),
            cfg: Arc::new(cfg),
            metrics: Arc::new(Registry::new()),
            stop: Arc::new(AtomicBool::new(false)),
            hard: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            started_unix,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until stopped, then —
    /// unless hard-killed — drains in-flight connections and flushes +
    /// compacts the store.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let ctx = Ctx {
            session: Arc::clone(&self.session),
            cfg: Arc::clone(&self.cfg),
            gauges: Arc::new(Gauges::default()),
            metrics: Arc::clone(&self.metrics),
            stop: Arc::clone(&self.stop),
            started: self.started,
            started_unix: self.started_unix,
        };
        while !self.stop.load(Ordering::SeqCst) {
            let (mut stream, peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(_) => continue,
            };
            let t0 = Instant::now();
            if ctx.gauges.active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                ctx.gauges.shed_connections.fetch_add(1, Ordering::SeqCst);
                let _ = stream.set_nonblocking(false);
                let body = Json::obj([
                    ("error", Json::s("too many connections")),
                    ("limit", Json::i(self.cfg.max_connections as i128)),
                    ("retry_after_secs", Json::i(self.cfg.retry_after_secs as i128)),
                ])
                .0;
                let _ = http::write_response(
                    &mut stream,
                    503,
                    &retry_after(&self.cfg),
                    "application/json",
                    body.as_bytes(),
                );
                record_request(&ctx, peer, "-", "-", "shed", 503, body.len() as u64, t0.elapsed());
                continue;
            }
            ctx.gauges.active.fetch_add(1, Ordering::SeqCst);
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                let _ = stream.set_nonblocking(false);
                let _ = handle_connection(stream, peer, &ctx);
                ctx.gauges.active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if self.hard.load(Ordering::SeqCst) {
            return Ok(()); // simulated crash: leave the log exactly as-is
        }
        // Drain: connection handlers see the stop flag and close after
        // their in-flight response, so active falls to zero unless a
        // client stalls past the deadline.
        let deadline = Instant::now() + self.cfg.shutdown_deadline;
        while ctx.gauges.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut session = lock_session(&self.session);
        let _ = session.flush();
        let _ = session.compact();
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a stop
    /// handle — how tests and the in-process load generator boot the
    /// daemon.
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let hard = Arc::clone(&self.hard);
        let join = std::thread::spawn(move || self.run());
        Ok(RunningServer { addr, stop, hard, join: Some(join) })
    }
}

fn lock_session(session: &Mutex<MergeSession>) -> std::sync::MutexGuard<'_, MergeSession> {
    // optimize() catches merge panics, so poisoning is unreachable in
    // practice; recover rather than wedge the daemon if it ever happens.
    session.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn retry_after(cfg: &ServerConfig) -> Vec<(&'static str, String)> {
    vec![("Retry-After", cfg.retry_after_secs.to_string())]
}

fn handle_connection(mut stream: TcpStream, peer: SocketAddr, ctx: &Ctx) -> std::io::Result<()> {
    let _conn_span = trace::span("serve", "connection");
    debug_log(ctx, peer, "accept");
    let result = serve_requests(&mut stream, peer, ctx);
    debug_log(ctx, peer, "close");
    result
}

fn serve_requests(stream: &mut TcpStream, peer: SocketAddr, ctx: &Ctx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(ctx.cfg.read_timeout))?;
    loop {
        let t0 = Instant::now();
        let request = {
            let mut reader = BufReader::new(&*stream);
            http::read_request(&mut reader, ctx.cfg.max_body)
        };
        let request = match request {
            Ok(r) => r,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Malformed(msg)) => {
                let body = Json::obj([("error", Json::s(&msg))]).0;
                let r = http::write_response(stream, 400, &[], "application/json", body.as_bytes());
                record_request(ctx, peer, "-", "-", "error", 400, body.len() as u64, t0.elapsed());
                return r;
            }
            Err(RequestError::TooLarge { declared, limit }) => {
                let body = Json::obj([
                    ("error", Json::s("request body too large")),
                    ("declared", Json::i(declared as i128)),
                    ("limit", Json::i(limit as i128)),
                ])
                .0;
                let r = http::write_response(stream, 413, &[], "application/json", body.as_bytes());
                record_request(ctx, peer, "-", "-", "error", 413, body.len() as u64, t0.elapsed());
                return r;
            }
        };
        let keep_alive = request.keep_alive();
        let route = route_label(request.path_query().0);
        let (status, bytes) = {
            let _req_span = trace::span_with("serve", "request", || {
                vec![("method", request.method.clone()), ("path", request.target.clone())]
            });
            respond(stream, &request, ctx)?
        };
        record_request(
            ctx,
            peer,
            &request.method,
            request.path_query().0,
            route,
            status,
            bytes,
            t0.elapsed(),
        );
        // A stopping daemon finishes the in-flight response, then closes
        // even a keep-alive connection so the drain can complete.
        if !keep_alive || ctx.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Normalizes a request path onto a bounded route label so hostile
/// paths can't mint unbounded metric series.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/v1/stats" => "/v1/stats",
        "/v1/modules" => "/v1/modules",
        "/v1/admin/compact" => "/v1/admin/compact",
        "/v1/store" => "/v1/store",
        "/v1/merges/recent" => "/v1/merges/recent",
        "/metrics" => "/metrics",
        p if p.starts_with("/v1/store/") => "/v1/store/:hash",
        p if p.starts_with("/v1/similar/") => "/v1/similar/:hash",
        _ => "other",
    }
}

/// Records one finished request: the route/status counter and latency
/// histogram, the per-route response-byte counter, and the access log.
#[allow(clippy::too_many_arguments)]
fn record_request(
    ctx: &Ctx,
    peer: SocketAddr,
    method: &str,
    path: &str,
    route: &'static str,
    status: u16,
    bytes: u64,
    dur: Duration,
) {
    let status_s = status.to_string();
    ctx.metrics
        .counter_with(
            "fmsa_http_requests_total",
            "HTTP requests served, by route and status.",
            &[("route", route), ("status", &status_s)],
        )
        .inc();
    ctx.metrics
        .histogram_with(
            "fmsa_http_request_duration_seconds",
            "HTTP request latency in seconds, by route and status.",
            &latency_buckets(),
            &[("route", route), ("status", &status_s)],
        )
        .observe(dur.as_secs_f64());
    ctx.metrics
        .counter_with(
            "fmsa_http_response_bytes_total",
            "HTTP response body bytes written, by route.",
            &[("route", route)],
        )
        .add(bytes);
    if ctx.cfg.log_level >= LogLevel::Info {
        let ms = dur.as_secs_f64() * 1e3;
        match ctx.cfg.log_format {
            LogFormat::Text => {
                eprintln!("fmsa_serve: {peer} \"{method} {path}\" {status} {ms:.3}ms {bytes}B");
            }
            LogFormat::Json => eprintln!(
                "{{\"ts\":{},\"peer\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\
                 \"status\":{},\"duration_ms\":{:.3},\"bytes\":{}}}",
                unix_now_secs(),
                json_escape(&peer.to_string()),
                json_escape(method),
                json_escape(path),
                status,
                ms,
                bytes
            ),
        }
    }
}

/// Connection lifecycle events, logged only at [`LogLevel::Debug`].
fn debug_log(ctx: &Ctx, peer: SocketAddr, event: &str) {
    if ctx.cfg.log_level < LogLevel::Debug {
        return;
    }
    match ctx.cfg.log_format {
        LogFormat::Text => eprintln!("fmsa_serve: {peer} connection {event}"),
        LogFormat::Json => eprintln!(
            "{{\"ts\":{},\"peer\":\"{}\",\"event\":\"connection-{}\"}}",
            unix_now_secs(),
            json_escape(&peer.to_string()),
            json_escape(event)
        ),
    }
}

fn unix_now_secs() -> u64 {
    SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// `debug` or `release` — surfaced as build metadata in `/v1/stats`
/// and the `fmsa_build_info` metric.
fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// Writes a fixed-length response and reports `(status, body bytes)`
/// so the caller can record metrics and the access log.
fn send(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<(u16, u64)> {
    http::write_response(stream, status, headers, content_type, body)?;
    Ok((status, body.len() as u64))
}

/// Routes one request, writes its response, and returns the status and
/// body size for the request record.
fn respond(stream: &mut TcpStream, request: &Request, ctx: &Ctx) -> std::io::Result<(u16, u64)> {
    let (path, query) = request.path_query();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => send(stream, 200, &[], "text/plain", b"ok\n"),
        ("GET", "/v1/stats") => {
            let body = stats_json(ctx);
            send(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("GET", "/metrics") => {
            let body = render_metrics(ctx);
            send(stream, 200, &[], "text/plain; version=0.0.4; charset=utf-8", body.as_bytes())
        }
        ("GET", "/v1/merges/recent") => {
            let n = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("n="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(50usize)
                .min(1000);
            let session = lock_session(&ctx.session);
            let log = session.decisions();
            let records: Vec<String> = log.recent(n).iter().map(|r| r.to_json()).collect();
            let body = format!(
                "{{\"total\":{},\"retained\":{},\"dropped\":{},\"records\":[{}]}}",
                log.total(),
                log.len(),
                log.dropped(),
                records.join(",")
            );
            send(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("POST", "/v1/modules") => serve_merge(stream, request, ctx),
        ("POST", "/v1/admin/compact") => {
            let mut session = lock_session(&ctx.session);
            match session.compact() {
                Ok(c) => {
                    let body = Json::obj([
                        ("entries", Json::i(c.entries as i128)),
                        ("bytes_before", Json::i(c.bytes_before as i128)),
                        ("bytes_after", Json::i(c.bytes_after as i128)),
                    ])
                    .0;
                    send(stream, 200, &[], "application/json", body.as_bytes())
                }
                Err(e) => {
                    let body = Json::obj([
                        ("error", Json::s(&e.to_string())),
                        ("stage", Json::s(e.stage())),
                    ])
                    .0;
                    send(stream, 500, &[], "application/json", body.as_bytes())
                }
            }
        }
        ("GET", "/v1/store") => {
            let session = lock_session(&ctx.session);
            let store = session.store();
            let entries = store.entries().take(100).map(|e| {
                Json::obj([
                    ("hash", Json::s(&e.hash.to_string())),
                    ("name", Json::s(&e.name)),
                    ("seen", Json::i(e.seen as i128)),
                    ("bytes", Json::i(e.text.len() as i128)),
                ])
            });
            let body = Json::obj([
                ("functions", Json::i(store.len() as i128)),
                ("hits", Json::i(store.hits() as i128)),
                ("misses", Json::i(store.misses() as i128)),
                ("hit_rate", Json::f(store.hit_rate())),
                ("entries", Json::arr(entries)),
            ])
            .0;
            send(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("GET", p) if p.starts_with("/v1/store/") => {
            let hash = p.trim_start_matches("/v1/store/");
            let Some(hash) = ContentHash::from_hex(hash) else {
                let body = Json::obj([("error", Json::s("bad hash"))]).0;
                return send(stream, 400, &[], "application/json", body.as_bytes());
            };
            let session = lock_session(&ctx.session);
            match session.store().get(hash) {
                Some(entry) => {
                    let headers = vec![
                        ("X-Fmsa-Name", entry.name.clone()),
                        ("X-Fmsa-Seen", entry.seen.to_string()),
                    ];
                    send(stream, 200, &headers, "text/plain; charset=utf-8", entry.text.as_bytes())
                }
                None => {
                    let body = Json::obj([("error", Json::s("unknown hash"))]).0;
                    send(stream, 404, &[], "application/json", body.as_bytes())
                }
            }
        }
        ("GET", p) if p.starts_with("/v1/similar/") => {
            let hash = p.trim_start_matches("/v1/similar/");
            let Some(hash) = ContentHash::from_hex(hash) else {
                let body = Json::obj([("error", Json::s("bad hash"))]).0;
                return send(stream, 400, &[], "application/json", body.as_bytes());
            };
            let k = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("k="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(5usize)
                .min(100);
            let session = lock_session(&ctx.session);
            let similar: Vec<SimilarEntry> = session.store().similar(hash, k);
            let body = Json::arr(similar.iter().map(|s| {
                Json::obj([
                    ("hash", Json::s(&s.hash.to_string())),
                    ("name", Json::s(&s.name)),
                    ("score", Json::f(s.score)),
                ])
            }))
            .0;
            send(stream, 200, &[], "application/json", body.as_bytes())
        }
        (
            _,
            "/healthz" | "/v1/stats" | "/v1/modules" | "/v1/store" | "/v1/admin/compact"
            | "/metrics" | "/v1/merges/recent",
        ) => {
            let body = Json::obj([("error", Json::s("method not allowed"))]).0;
            send(stream, 405, &[], "application/json", body.as_bytes())
        }
        _ => {
            let body = Json::obj([("error", Json::s("not found"))]).0;
            send(stream, 404, &[], "application/json", body.as_bytes())
        }
    }
}

/// `POST /v1/modules`: merge-queue admission, the optional request
/// deadline, and the success/error responses.
fn serve_merge(
    stream: &mut TcpStream,
    request: &Request,
    ctx: &Ctx,
) -> std::io::Result<(u16, u64)> {
    // Admission control first: shedding is the one thing the daemon must
    // still do quickly when it is saturated.
    let pending = ctx.gauges.pending_merges.fetch_add(1, Ordering::SeqCst);
    if pending >= ctx.cfg.max_pending_merges {
        ctx.gauges.pending_merges.fetch_sub(1, Ordering::SeqCst);
        ctx.gauges.shed_requests.fetch_add(1, Ordering::SeqCst);
        let body = Json::obj([
            ("error", Json::s("merge queue full")),
            ("pending", Json::i(pending as i128)),
            ("limit", Json::i(ctx.cfg.max_pending_merges as i128)),
            ("retry_after_secs", Json::i(ctx.cfg.retry_after_secs as i128)),
        ])
        .0;
        return send(stream, 429, &retry_after(&ctx.cfg), "application/json", body.as_bytes());
    }
    let name = request.header("x-fmsa-name").unwrap_or("upload").to_owned();
    let outcome = match ctx.cfg.request_timeout {
        None => {
            let out = merge_upload(ctx, &request.body, &name);
            ctx.gauges.pending_merges.fetch_sub(1, Ordering::SeqCst);
            out
        }
        Some(limit) => {
            // Run the merge on a worker so this handler can give up at
            // the deadline. The worker owns the gauge decrement: a
            // timed-out merge is still pending work until it finishes
            // (into the response cache, making the client's retry a
            // cache hit).
            let (tx, rx) = mpsc::channel();
            let worker_ctx = ctx.clone();
            let body = request.body.clone();
            std::thread::spawn(move || {
                let out = merge_upload(&worker_ctx, &body, &name);
                worker_ctx.gauges.pending_merges.fetch_sub(1, Ordering::SeqCst);
                let _ = tx.send(out);
            });
            match rx.recv_timeout(limit) {
                Ok(out) => out,
                Err(_) => {
                    ctx.gauges.timed_out.fetch_add(1, Ordering::SeqCst);
                    let body = Json::obj([
                        ("error", Json::s("request deadline exceeded")),
                        ("timeout_ms", Json::i(limit.as_millis() as i128)),
                        ("retry_after_secs", Json::i(ctx.cfg.retry_after_secs as i128)),
                    ])
                    .0;
                    return send(
                        stream,
                        503,
                        &retry_after(&ctx.cfg),
                        "application/json",
                        body.as_bytes(),
                    );
                }
            }
        }
    };
    match outcome {
        Ok(out) => {
            let headers = stats_headers(&out);
            http::write_chunked_response(
                stream,
                200,
                &headers,
                "text/plain; charset=utf-8",
                out.output.as_bytes(),
            )?;
            Ok((200, out.output.len() as u64))
        }
        Err(e) => {
            let status = error_status(&e);
            let mut pairs = vec![("error", Json::s(&e.to_string())), ("stage", Json::s(e.stage()))];
            if let Some(f) = e.function() {
                pairs.push(("function", Json::s(f)));
            }
            let body = Json::obj(pairs).0;
            send(stream, status, &[], "application/json", body.as_bytes())
        }
    }
}

/// The `/v1/stats` document: session totals, store counters (including
/// durability/recovery state), and the load-shedding gauges.
fn stats_json(ctx: &Ctx) -> String {
    let session = lock_session(&ctx.session);
    let totals = *session.totals();
    let store = session.store();
    let recovery = *store.recovery();
    Json::obj([
        ("version", Json::s(env!("CARGO_PKG_VERSION"))),
        ("profile", Json::s(build_profile())),
        ("started_at", Json::i(ctx.started_unix as i128)),
        ("uptime_ms", Json::i(ctx.started.elapsed().as_millis() as i128)),
        ("requests", Json::i(totals.requests as i128)),
        ("merges", Json::i(totals.merges as i128)),
        ("functions", Json::i(totals.functions as i128)),
        ("cache_hits", Json::i(totals.cache_hits as i128)),
        ("wall_ms", Json::i(totals.wall.as_millis() as i128)),
        (
            "store",
            Json::obj([
                ("functions", Json::i(store.len() as i128)),
                ("hits", Json::i(store.hits() as i128)),
                ("misses", Json::i(store.misses() as i128)),
                ("hit_rate", Json::f(store.hit_rate())),
                ("persistent", Json::b(store.dir().is_some())),
                ("format_version", Json::i(store.format_version() as i128)),
                ("fsync", Json::s(&store.fsync_policy().to_string())),
                ("total_bytes", Json::i(store.total_bytes() as i128)),
                ("dead_bytes", Json::i(store.dead_bytes() as i128)),
                ("dead_ratio", Json::f(store.dead_ratio())),
                ("compactions", Json::i(store.compactions() as i128)),
                ("compact_failures", Json::i(store.compact_failures() as i128)),
                (
                    "recovery",
                    Json::obj([
                        ("entries", Json::i(recovery.entries as i128)),
                        ("seen_records", Json::i(recovery.seen_records as i128)),
                        ("skipped_records", Json::i(recovery.skipped_records as i128)),
                        ("bytes_dropped", Json::i(recovery.bytes_dropped as i128)),
                        ("from_v1", Json::b(recovery.from_v1)),
                    ]),
                ),
            ]),
        ),
        (
            "queue",
            Json::obj([
                ("active_connections", Json::i(ctx.gauges.active.load(Ordering::SeqCst) as i128)),
                (
                    "pending_merges",
                    Json::i(ctx.gauges.pending_merges.load(Ordering::SeqCst) as i128),
                ),
                (
                    "shed_connections",
                    Json::i(ctx.gauges.shed_connections.load(Ordering::SeqCst) as i128),
                ),
                ("shed_requests", Json::i(ctx.gauges.shed_requests.load(Ordering::SeqCst) as i128)),
                ("timed_out", Json::i(ctx.gauges.timed_out.load(Ordering::SeqCst) as i128)),
            ]),
        ),
    ])
    .0
}

/// The full merge path for one upload: response-cache probe on the raw
/// bytes, format auto-detection, session merge. Actual merges (cache
/// misses) are timed into the `fmsa_merge_duration_seconds` histogram.
fn merge_upload(ctx: &Ctx, body: &[u8], name: &str) -> Result<MergeOutcome, Error> {
    if body.is_empty() {
        return Err(Error::config("empty request body (expected wasm or textual IR)"));
    }
    let cache_result = |r: &'static str| {
        ctx.metrics
            .counter_with(
                "fmsa_merge_cache_total",
                "Response-cache probes on merge uploads, by result.",
                &[("result", r)],
            )
            .inc();
    };
    let key = ContentHash::of_bytes(body);
    let mut session = lock_session(&ctx.session);
    if let Some(out) = session.merge_cached(key) {
        cache_result("hit");
        return Ok(out);
    }
    cache_result("miss");
    let module = fmsa::load_module_bytes(body, name)?;
    let t0 = Instant::now();
    let out = session.merge_module(module, Some(key));
    ctx.metrics
        .histogram(
            "fmsa_merge_duration_seconds",
            "Wall-clock duration of one merge request (cache misses only).",
            &latency_buckets(),
        )
        .observe(t0.elapsed().as_secs_f64());
    out
}

/// `GET /metrics`: mirrors the store/session/queue/decision counters
/// into gauges at scrape time (request-path metrics are recorded live),
/// then renders the registry as Prometheus text exposition.
fn render_metrics(ctx: &Ctx) -> String {
    let m = &ctx.metrics;
    let g = |name: &str, help: &str, v: f64| m.gauge(name, help).set(v);
    {
        let session = lock_session(&ctx.session);
        let totals = *session.totals();
        let store = session.store();
        g("fmsa_store_functions", "Functions in the content-addressed store.", store.len() as f64);
        g(
            "fmsa_store_total_bytes",
            "Bytes in the store log, live and dead.",
            store.total_bytes() as f64,
        );
        g("fmsa_store_dead_bytes", "Dead bytes awaiting compaction.", store.dead_bytes() as f64);
        g("fmsa_store_dead_ratio", "Dead-byte fraction of the store log.", store.dead_ratio());
        g("fmsa_store_hits", "Store lookups that hit.", store.hits() as f64);
        g("fmsa_store_misses", "Store lookups that missed.", store.misses() as f64);
        g("fmsa_store_compactions", "Completed store compactions.", store.compactions() as f64);
        g(
            "fmsa_session_requests",
            "Merge requests the session has processed.",
            totals.requests as f64,
        );
        g("fmsa_session_merges", "Function merges committed by the session.", totals.merges as f64);
        g(
            "fmsa_session_functions",
            "Functions processed across the session.",
            totals.functions as f64,
        );
        g(
            "fmsa_session_cache_hits",
            "Response-cache hits across the session.",
            totals.cache_hits as f64,
        );
        g(
            "fmsa_session_wall_seconds",
            "Wall-clock seconds the session has spent merging.",
            totals.wall.as_secs_f64(),
        );
        let log = session.decisions();
        for outcome in DecisionOutcome::ALL {
            m.gauge_with(
                "fmsa_merge_decisions",
                "Merge attempts by outcome (see docs/observability.md).",
                &[("outcome", outcome.as_str())],
            )
            .set(log.count(outcome) as f64);
        }
        let store_format = store.format_version().to_string();
        m.gauge_with(
            "fmsa_build_info",
            "Build metadata carried in labels; value is always 1.",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("profile", build_profile()),
                ("store_format", &store_format),
            ],
        )
        .set(1.0);
    }
    g(
        "fmsa_queue_active_connections",
        "Open client connections.",
        ctx.gauges.active.load(Ordering::SeqCst) as f64,
    );
    g(
        "fmsa_queue_pending_merges",
        "Merges in flight (including backgrounded timed-out ones).",
        ctx.gauges.pending_merges.load(Ordering::SeqCst) as f64,
    );
    g(
        "fmsa_queue_shed_connections",
        "Connections shed with 503 at the connection limit.",
        ctx.gauges.shed_connections.load(Ordering::SeqCst) as f64,
    );
    g(
        "fmsa_queue_shed_requests",
        "Merge requests shed with 429 at the queue limit.",
        ctx.gauges.shed_requests.load(Ordering::SeqCst) as f64,
    );
    g(
        "fmsa_queue_timed_out",
        "Merge requests that hit the request deadline.",
        ctx.gauges.timed_out.load(Ordering::SeqCst) as f64,
    );
    g("fmsa_started_at_seconds", "Unix time the daemon started.", ctx.started_unix as f64);
    g(
        "fmsa_uptime_seconds",
        "Seconds since the daemon started.",
        ctx.started.elapsed().as_secs_f64(),
    );
    m.snapshot().render_prometheus()
}

fn stats_headers(out: &MergeOutcome) -> Vec<(&'static str, String)> {
    let s = &out.stats;
    vec![
        ("X-Fmsa-Functions", s.functions.to_string()),
        ("X-Fmsa-Merges", s.merges.to_string()),
        ("X-Fmsa-Size-Before", s.size_before.to_string()),
        ("X-Fmsa-Size-After", s.size_after.to_string()),
        ("X-Fmsa-Reduction-Percent", format!("{:.4}", s.reduction_percent)),
        ("X-Fmsa-Store-Hits", s.store_hits.to_string()),
        ("X-Fmsa-Store-Misses", s.store_misses.to_string()),
        ("X-Fmsa-Store-Size", s.store_size.to_string()),
        ("X-Fmsa-Quarantined", s.quarantined.to_string()),
        ("X-Fmsa-Wall-Micros", s.wall.as_micros().to_string()),
        ("X-Fmsa-Cache", if s.from_cache { "hit" } else { "miss" }.to_string()),
    ]
}

/// Maps a library [`Error`] onto an HTTP status: caller faults are 4xx
/// (bad uploads stay the client's problem), internal failures are 5xx.
fn error_status(e: &Error) -> u16 {
    match e.stage() {
        "parse" | "decode" | "config" => 400,
        "verify-input" => 422,
        _ => 500,
    }
}
