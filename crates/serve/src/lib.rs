//! # fmsa-serve — the FMSA merge daemon
//!
//! A long-running merge service over the [`fmsa`] session API
//! ([`fmsa::MergeSession`]): a content-addressed function store with a
//! durable LSH index (persisted under `--store`, reloaded on restart)
//! behind a dependency-free std-TCP HTTP/JSON layer. Uploads are wasm
//! binaries or textual IR (`fmsa_opt`'s auto-detection, via
//! [`fmsa::load_module_bytes`]); responses stream the merged module back
//! with per-request statistics in `X-Fmsa-*` headers. Because requests
//! run through the same [`fmsa::optimize`] entry point as the batch CLI,
//! a daemon response is byte-identical to `fmsa_opt` output for the same
//! input and configuration.
//!
//! ## Endpoints
//!
//! | Method | Path                | Purpose                                    |
//! |--------|---------------------|--------------------------------------------|
//! | GET    | `/healthz`          | liveness probe (`ok`)                      |
//! | GET    | `/v1/stats`         | session totals + store counters (JSON)     |
//! | POST   | `/v1/modules`       | merge an uploaded module (body = wasm/IR)  |
//! | GET    | `/v1/store`         | store summary (JSON)                       |
//! | GET    | `/v1/store/:hash`   | canonical text of one stored function      |
//! | GET    | `/v1/similar/:hash` | cross-module similar functions (`?k=N`)    |
//!
//! See `docs/service.md` for the protocol details, the store format, and
//! the replay workflow.

use fmsa::core::store::SimilarEntry;
use fmsa::{Config, ContentHash, Error, MergeOutcome, MergeSession};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod client;
pub mod http;
pub mod json;

use http::{Request, RequestError};
use json::Json;

/// How the daemon is set up — address, limits, store location, and the
/// merge [`Config`] every request runs under.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Store directory; `None` keeps the store in memory only (nothing
    /// survives a restart).
    pub store_dir: Option<PathBuf>,
    /// Maximum accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum concurrent connections; excess connections get a 503.
    pub max_connections: usize,
    /// The merge configuration applied to every upload.
    pub merge: Config,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            store_dir: None,
            max_body: 32 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            max_connections: 32,
            merge: Config::new(),
        }
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    session: Arc<Mutex<MergeSession>>,
    cfg: Arc<ServerConfig>,
    stop: Arc<AtomicBool>,
    started: Instant,
}

/// Handle to a daemon running on a background thread (see
/// [`Server::spawn`]); stopping joins the accept loop.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Server {
    /// Binds the listener and opens (or creates) the session store.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let session = match &cfg.store_dir {
            Some(dir) => MergeSession::open(cfg.merge.clone(), dir)
                .map_err(|e| std::io::Error::other(format!("opening store: {e}")))?,
            None => MergeSession::new(cfg.merge.clone()),
        };
        Ok(Server {
            listener,
            session: Arc::new(Mutex::new(session)),
            cfg: Arc::new(cfg),
            stop: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until stopped.
    pub fn run(self) -> std::io::Result<()> {
        let active = Arc::new(AtomicUsize::new(0));
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                let mut stream = stream;
                let _ = http::write_response(
                    &mut stream,
                    503,
                    &[],
                    "application/json",
                    Json::obj([("error", Json::s("too many connections"))]).0.as_bytes(),
                );
                continue;
            }
            active.fetch_add(1, Ordering::SeqCst);
            let session = Arc::clone(&self.session);
            let cfg = Arc::clone(&self.cfg);
            let active = Arc::clone(&active);
            let started = self.started;
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &session, &cfg, started);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a stop
    /// handle — how tests and the in-process load generator boot the
    /// daemon.
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let join = std::thread::spawn(move || self.run());
        Ok(RunningServer { addr, stop, join: Some(join) })
    }
}

fn lock_session(session: &Mutex<MergeSession>) -> std::sync::MutexGuard<'_, MergeSession> {
    // optimize() catches merge panics, so poisoning is unreachable in
    // practice; recover rather than wedge the daemon if it ever happens.
    session.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn handle_connection(
    mut stream: TcpStream,
    session: &Mutex<MergeSession>,
    cfg: &ServerConfig,
    started: Instant,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    loop {
        let request = {
            let mut reader = BufReader::new(&stream);
            http::read_request(&mut reader, cfg.max_body)
        };
        let request = match request {
            Ok(r) => r,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Malformed(msg)) => {
                let body = Json::obj([("error", Json::s(&msg))]).0;
                return http::write_response(
                    &mut stream,
                    400,
                    &[],
                    "application/json",
                    body.as_bytes(),
                );
            }
            Err(RequestError::TooLarge { declared, limit }) => {
                let body = Json::obj([
                    ("error", Json::s("request body too large")),
                    ("declared", Json::i(declared as i128)),
                    ("limit", Json::i(limit as i128)),
                ])
                .0;
                return http::write_response(
                    &mut stream,
                    413,
                    &[],
                    "application/json",
                    body.as_bytes(),
                );
            }
        };
        let keep_alive = request.keep_alive();
        respond(&mut stream, &request, session, started)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Routes one request and writes its response.
fn respond(
    stream: &mut TcpStream,
    request: &Request,
    session: &Mutex<MergeSession>,
    started: Instant,
) -> std::io::Result<()> {
    let (path, query) = request.path_query();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => http::write_response(stream, 200, &[], "text/plain", b"ok\n"),
        ("GET", "/v1/stats") => {
            let session = lock_session(session);
            let totals = *session.totals();
            let store = session.store();
            let body = Json::obj([
                ("uptime_ms", Json::i(started.elapsed().as_millis() as i128)),
                ("requests", Json::i(totals.requests as i128)),
                ("merges", Json::i(totals.merges as i128)),
                ("functions", Json::i(totals.functions as i128)),
                ("cache_hits", Json::i(totals.cache_hits as i128)),
                ("wall_ms", Json::i(totals.wall.as_millis() as i128)),
                (
                    "store",
                    Json::obj([
                        ("functions", Json::i(store.len() as i128)),
                        ("hits", Json::i(store.hits() as i128)),
                        ("misses", Json::i(store.misses() as i128)),
                        ("hit_rate", Json::f(store.hit_rate())),
                        ("persistent", Json::b(store.dir().is_some())),
                    ]),
                ),
            ])
            .0;
            http::write_response(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("POST", "/v1/modules") => {
            let name = request.header("x-fmsa-name").unwrap_or("upload");
            let outcome = merge_upload(session, &request.body, name);
            match outcome {
                Ok(out) => {
                    let headers = stats_headers(&out);
                    http::write_chunked_response(
                        stream,
                        200,
                        &headers,
                        "text/plain; charset=utf-8",
                        out.output.as_bytes(),
                    )
                }
                Err(e) => {
                    let status = error_status(&e);
                    let mut pairs =
                        vec![("error", Json::s(&e.to_string())), ("stage", Json::s(e.stage()))];
                    if let Some(f) = e.function() {
                        pairs.push(("function", Json::s(f)));
                    }
                    let body = Json::obj(pairs).0;
                    http::write_response(stream, status, &[], "application/json", body.as_bytes())
                }
            }
        }
        ("GET", "/v1/store") => {
            let session = lock_session(session);
            let store = session.store();
            let entries = store.entries().take(100).map(|e| {
                Json::obj([
                    ("hash", Json::s(&e.hash.to_string())),
                    ("name", Json::s(&e.name)),
                    ("seen", Json::i(e.seen as i128)),
                    ("bytes", Json::i(e.text.len() as i128)),
                ])
            });
            let body = Json::obj([
                ("functions", Json::i(store.len() as i128)),
                ("hits", Json::i(store.hits() as i128)),
                ("misses", Json::i(store.misses() as i128)),
                ("hit_rate", Json::f(store.hit_rate())),
                ("entries", Json::arr(entries)),
            ])
            .0;
            http::write_response(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("GET", p) if p.starts_with("/v1/store/") => {
            let hash = p.trim_start_matches("/v1/store/");
            let Some(hash) = ContentHash::from_hex(hash) else {
                let body = Json::obj([("error", Json::s("bad hash"))]).0;
                return http::write_response(stream, 400, &[], "application/json", body.as_bytes());
            };
            let session = lock_session(session);
            match session.store().get(hash) {
                Some(entry) => {
                    let headers = vec![
                        ("X-Fmsa-Name", entry.name.clone()),
                        ("X-Fmsa-Seen", entry.seen.to_string()),
                    ];
                    http::write_response(
                        stream,
                        200,
                        &headers,
                        "text/plain; charset=utf-8",
                        entry.text.as_bytes(),
                    )
                }
                None => {
                    let body = Json::obj([("error", Json::s("unknown hash"))]).0;
                    http::write_response(stream, 404, &[], "application/json", body.as_bytes())
                }
            }
        }
        ("GET", p) if p.starts_with("/v1/similar/") => {
            let hash = p.trim_start_matches("/v1/similar/");
            let Some(hash) = ContentHash::from_hex(hash) else {
                let body = Json::obj([("error", Json::s("bad hash"))]).0;
                return http::write_response(stream, 400, &[], "application/json", body.as_bytes());
            };
            let k = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("k="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(5usize)
                .min(100);
            let session = lock_session(session);
            let similar: Vec<SimilarEntry> = session.store().similar(hash, k);
            let body = Json::arr(similar.iter().map(|s| {
                Json::obj([
                    ("hash", Json::s(&s.hash.to_string())),
                    ("name", Json::s(&s.name)),
                    ("score", Json::f(s.score)),
                ])
            }))
            .0;
            http::write_response(stream, 200, &[], "application/json", body.as_bytes())
        }
        (_, "/healthz" | "/v1/stats" | "/v1/modules" | "/v1/store") => {
            let body = Json::obj([("error", Json::s("method not allowed"))]).0;
            http::write_response(stream, 405, &[], "application/json", body.as_bytes())
        }
        _ => {
            let body = Json::obj([("error", Json::s("not found"))]).0;
            http::write_response(stream, 404, &[], "application/json", body.as_bytes())
        }
    }
}

/// The full merge path for one upload: response-cache probe on the raw
/// bytes, format auto-detection, session merge.
fn merge_upload(
    session: &Mutex<MergeSession>,
    body: &[u8],
    name: &str,
) -> Result<MergeOutcome, Error> {
    if body.is_empty() {
        return Err(Error::config("empty request body (expected wasm or textual IR)"));
    }
    let key = ContentHash::of_bytes(body);
    let mut session = lock_session(session);
    if let Some(out) = session.merge_cached(key) {
        return Ok(out);
    }
    let module = fmsa::load_module_bytes(body, name)?;
    session.merge_module(module, Some(key))
}

fn stats_headers(out: &MergeOutcome) -> Vec<(&'static str, String)> {
    let s = &out.stats;
    vec![
        ("X-Fmsa-Functions", s.functions.to_string()),
        ("X-Fmsa-Merges", s.merges.to_string()),
        ("X-Fmsa-Size-Before", s.size_before.to_string()),
        ("X-Fmsa-Size-After", s.size_after.to_string()),
        ("X-Fmsa-Reduction-Percent", format!("{:.4}", s.reduction_percent)),
        ("X-Fmsa-Store-Hits", s.store_hits.to_string()),
        ("X-Fmsa-Store-Misses", s.store_misses.to_string()),
        ("X-Fmsa-Store-Size", s.store_size.to_string()),
        ("X-Fmsa-Quarantined", s.quarantined.to_string()),
        ("X-Fmsa-Wall-Micros", s.wall.as_micros().to_string()),
        ("X-Fmsa-Cache", if s.from_cache { "hit" } else { "miss" }.to_string()),
    ]
}

/// Maps a library [`Error`] onto an HTTP status: caller faults are 4xx
/// (bad uploads stay the client's problem), internal failures are 5xx.
fn error_status(e: &Error) -> u16 {
    match e.stage() {
        "parse" | "decode" | "config" => 400,
        "verify-input" => 422,
        _ => 500,
    }
}
