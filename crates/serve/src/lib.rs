//! # fmsa-serve — the FMSA merge daemon
//!
//! A long-running merge service over the [`fmsa`] session API
//! ([`fmsa::MergeSession`]): a content-addressed function store with a
//! durable LSH index (persisted under `--store`, reloaded on restart)
//! behind a dependency-free std-TCP HTTP/JSON layer. Uploads are wasm
//! binaries or textual IR (`fmsa_opt`'s auto-detection, via
//! [`fmsa::load_module_bytes`]); responses stream the merged module back
//! with per-request statistics in `X-Fmsa-*` headers. Because requests
//! run through the same [`fmsa::optimize`] entry point as the batch CLI,
//! a daemon response is byte-identical to `fmsa_opt` output for the same
//! input and configuration.
//!
//! ## Endpoints
//!
//! | Method | Path                | Purpose                                    |
//! |--------|---------------------|--------------------------------------------|
//! | GET    | `/healthz`          | liveness probe (`ok`)                      |
//! | GET    | `/v1/stats`         | session totals + store/queue gauges (JSON) |
//! | POST   | `/v1/modules`       | merge an uploaded module (body = wasm/IR)  |
//! | POST   | `/v1/admin/compact` | compact the store log now                  |
//! | GET    | `/v1/store`         | store summary (JSON)                       |
//! | GET    | `/v1/store/:hash`   | canonical text of one stored function      |
//! | GET    | `/v1/similar/:hash` | cross-module similar functions (`?k=N`)    |
//!
//! ## Resilience
//!
//! The daemon is built to degrade loudly rather than fall over:
//!
//! * **Graceful shutdown** — [`RunningServer::stop`] (and SIGTERM/ctrl-c
//!   in the binary) stops accepting, drains in-flight connections up to
//!   [`ServerConfig::shutdown_deadline`], then flushes and compacts the
//!   store. [`RunningServer::kill`] skips all of that — the crash path
//!   the chaos harness exercises.
//! * **Backpressure** — connections beyond
//!   [`ServerConfig::max_connections`] get `503`, merges beyond
//!   [`ServerConfig::max_pending_merges`] get `429`; both carry a
//!   `Retry-After` header and a structured JSON body, and both are
//!   counted in `/v1/stats` under `queue`.
//! * **Deadlines** — [`ServerConfig::request_timeout`] bounds each merge;
//!   a timed-out request gets `503` + `Retry-After` while the merge
//!   finishes into the response cache in the background, so the client's
//!   retry is served from cache rather than recomputed.
//!
//! See `docs/service.md` for the protocol details, the store format, and
//! the replay workflow; `docs/robustness.md` for the durability story.

use fmsa::core::store::SimilarEntry;
use fmsa::{Config, ContentHash, Error, MergeOutcome, MergeSession, StoreOptions};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod client;
pub mod http;
pub mod json;

use http::{Request, RequestError};
use json::Json;

/// How the daemon is set up — address, limits, store location, and the
/// merge [`Config`] every request runs under.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Store directory; `None` keeps the store in memory only (nothing
    /// survives a restart).
    pub store_dir: Option<PathBuf>,
    /// Store durability/compaction/fault options (only meaningful with a
    /// persistent `store_dir`).
    pub store: StoreOptions,
    /// Maximum accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum concurrent connections; excess connections get a 503
    /// with `Retry-After`.
    pub max_connections: usize,
    /// Maximum merges in flight (including backgrounded timed-out
    /// ones); excess merge requests get a 429 with `Retry-After`.
    pub max_pending_merges: usize,
    /// Wall-clock budget for one merge request; a request past it gets
    /// a 503 while the merge completes into the response cache in the
    /// background. `None` = unbounded.
    pub request_timeout: Option<Duration>,
    /// How long a graceful shutdown waits for in-flight connections to
    /// drain before flushing and compacting the store anyway.
    pub shutdown_deadline: Duration,
    /// Value of the `Retry-After` header on 429/503 shed responses.
    pub retry_after_secs: u64,
    /// The merge configuration applied to every upload.
    pub merge: Config,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            store_dir: None,
            store: StoreOptions::default(),
            max_body: 32 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            max_connections: 32,
            max_pending_merges: 8,
            request_timeout: None,
            shutdown_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            merge: Config::new(),
        }
    }
}

/// Load/shed counters surfaced under `queue` in `/v1/stats`.
#[derive(Debug, Default)]
struct Gauges {
    active: AtomicUsize,
    pending_merges: AtomicUsize,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
    timed_out: AtomicU64,
}

/// Everything a connection handler needs, cheaply cloneable.
#[derive(Clone)]
struct Ctx {
    session: Arc<Mutex<MergeSession>>,
    cfg: Arc<ServerConfig>,
    gauges: Arc<Gauges>,
    stop: Arc<AtomicBool>,
    started: Instant,
}

/// A bound (but not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    session: Arc<Mutex<MergeSession>>,
    cfg: Arc<ServerConfig>,
    stop: Arc<AtomicBool>,
    hard: Arc<AtomicBool>,
    started: Instant,
}

/// Handle to a daemon running on a background thread (see
/// [`Server::spawn`]); stopping joins the accept loop.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hard: Arc<AtomicBool>,
    join: Option<JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections
    /// up to the configured deadline, flush and compact the store, then
    /// join the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Hard stop: no drain, no flush, no compaction — the closest an
    /// in-process harness gets to `kill -9`. What survives is whatever
    /// the store's write-ahead log already holds; the chaos experiment
    /// additionally truncates the log tail to simulate dying mid-write.
    pub fn kill(&mut self) {
        self.hard.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Server {
    /// Binds the listener and opens (or creates) the session store.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let session = match &cfg.store_dir {
            Some(dir) => MergeSession::open_with(cfg.merge.clone(), dir, cfg.store.clone())
                .map_err(|e| std::io::Error::other(format!("opening store: {e}")))?,
            None => MergeSession::new(cfg.merge.clone()),
        };
        Ok(Server {
            listener,
            session: Arc::new(Mutex::new(session)),
            cfg: Arc::new(cfg),
            stop: Arc::new(AtomicBool::new(false)),
            hard: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until stopped, then —
    /// unless hard-killed — drains in-flight connections and flushes +
    /// compacts the store.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let ctx = Ctx {
            session: Arc::clone(&self.session),
            cfg: Arc::clone(&self.cfg),
            gauges: Arc::new(Gauges::default()),
            stop: Arc::clone(&self.stop),
            started: self.started,
        };
        while !self.stop.load(Ordering::SeqCst) {
            let mut stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(_) => continue,
            };
            if ctx.gauges.active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                ctx.gauges.shed_connections.fetch_add(1, Ordering::SeqCst);
                let _ = stream.set_nonblocking(false);
                let body = Json::obj([
                    ("error", Json::s("too many connections")),
                    ("limit", Json::i(self.cfg.max_connections as i128)),
                    ("retry_after_secs", Json::i(self.cfg.retry_after_secs as i128)),
                ])
                .0;
                let _ = http::write_response(
                    &mut stream,
                    503,
                    &retry_after(&self.cfg),
                    "application/json",
                    body.as_bytes(),
                );
                continue;
            }
            ctx.gauges.active.fetch_add(1, Ordering::SeqCst);
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                let _ = stream.set_nonblocking(false);
                let _ = handle_connection(stream, &ctx);
                ctx.gauges.active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if self.hard.load(Ordering::SeqCst) {
            return Ok(()); // simulated crash: leave the log exactly as-is
        }
        // Drain: connection handlers see the stop flag and close after
        // their in-flight response, so active falls to zero unless a
        // client stalls past the deadline.
        let deadline = Instant::now() + self.cfg.shutdown_deadline;
        while ctx.gauges.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut session = lock_session(&self.session);
        let _ = session.flush();
        let _ = session.compact();
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a stop
    /// handle — how tests and the in-process load generator boot the
    /// daemon.
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let hard = Arc::clone(&self.hard);
        let join = std::thread::spawn(move || self.run());
        Ok(RunningServer { addr, stop, hard, join: Some(join) })
    }
}

fn lock_session(session: &Mutex<MergeSession>) -> std::sync::MutexGuard<'_, MergeSession> {
    // optimize() catches merge panics, so poisoning is unreachable in
    // practice; recover rather than wedge the daemon if it ever happens.
    session.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn retry_after(cfg: &ServerConfig) -> Vec<(&'static str, String)> {
    vec![("Retry-After", cfg.retry_after_secs.to_string())]
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(ctx.cfg.read_timeout))?;
    loop {
        let request = {
            let mut reader = BufReader::new(&stream);
            http::read_request(&mut reader, ctx.cfg.max_body)
        };
        let request = match request {
            Ok(r) => r,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Malformed(msg)) => {
                let body = Json::obj([("error", Json::s(&msg))]).0;
                return http::write_response(
                    &mut stream,
                    400,
                    &[],
                    "application/json",
                    body.as_bytes(),
                );
            }
            Err(RequestError::TooLarge { declared, limit }) => {
                let body = Json::obj([
                    ("error", Json::s("request body too large")),
                    ("declared", Json::i(declared as i128)),
                    ("limit", Json::i(limit as i128)),
                ])
                .0;
                return http::write_response(
                    &mut stream,
                    413,
                    &[],
                    "application/json",
                    body.as_bytes(),
                );
            }
        };
        let keep_alive = request.keep_alive();
        respond(&mut stream, &request, ctx)?;
        // A stopping daemon finishes the in-flight response, then closes
        // even a keep-alive connection so the drain can complete.
        if !keep_alive || ctx.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Routes one request and writes its response.
fn respond(stream: &mut TcpStream, request: &Request, ctx: &Ctx) -> std::io::Result<()> {
    let (path, query) = request.path_query();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => http::write_response(stream, 200, &[], "text/plain", b"ok\n"),
        ("GET", "/v1/stats") => {
            let body = stats_json(ctx);
            http::write_response(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("POST", "/v1/modules") => serve_merge(stream, request, ctx),
        ("POST", "/v1/admin/compact") => {
            let mut session = lock_session(&ctx.session);
            match session.compact() {
                Ok(c) => {
                    let body = Json::obj([
                        ("entries", Json::i(c.entries as i128)),
                        ("bytes_before", Json::i(c.bytes_before as i128)),
                        ("bytes_after", Json::i(c.bytes_after as i128)),
                    ])
                    .0;
                    http::write_response(stream, 200, &[], "application/json", body.as_bytes())
                }
                Err(e) => {
                    let body = Json::obj([
                        ("error", Json::s(&e.to_string())),
                        ("stage", Json::s(e.stage())),
                    ])
                    .0;
                    http::write_response(stream, 500, &[], "application/json", body.as_bytes())
                }
            }
        }
        ("GET", "/v1/store") => {
            let session = lock_session(&ctx.session);
            let store = session.store();
            let entries = store.entries().take(100).map(|e| {
                Json::obj([
                    ("hash", Json::s(&e.hash.to_string())),
                    ("name", Json::s(&e.name)),
                    ("seen", Json::i(e.seen as i128)),
                    ("bytes", Json::i(e.text.len() as i128)),
                ])
            });
            let body = Json::obj([
                ("functions", Json::i(store.len() as i128)),
                ("hits", Json::i(store.hits() as i128)),
                ("misses", Json::i(store.misses() as i128)),
                ("hit_rate", Json::f(store.hit_rate())),
                ("entries", Json::arr(entries)),
            ])
            .0;
            http::write_response(stream, 200, &[], "application/json", body.as_bytes())
        }
        ("GET", p) if p.starts_with("/v1/store/") => {
            let hash = p.trim_start_matches("/v1/store/");
            let Some(hash) = ContentHash::from_hex(hash) else {
                let body = Json::obj([("error", Json::s("bad hash"))]).0;
                return http::write_response(stream, 400, &[], "application/json", body.as_bytes());
            };
            let session = lock_session(&ctx.session);
            match session.store().get(hash) {
                Some(entry) => {
                    let headers = vec![
                        ("X-Fmsa-Name", entry.name.clone()),
                        ("X-Fmsa-Seen", entry.seen.to_string()),
                    ];
                    http::write_response(
                        stream,
                        200,
                        &headers,
                        "text/plain; charset=utf-8",
                        entry.text.as_bytes(),
                    )
                }
                None => {
                    let body = Json::obj([("error", Json::s("unknown hash"))]).0;
                    http::write_response(stream, 404, &[], "application/json", body.as_bytes())
                }
            }
        }
        ("GET", p) if p.starts_with("/v1/similar/") => {
            let hash = p.trim_start_matches("/v1/similar/");
            let Some(hash) = ContentHash::from_hex(hash) else {
                let body = Json::obj([("error", Json::s("bad hash"))]).0;
                return http::write_response(stream, 400, &[], "application/json", body.as_bytes());
            };
            let k = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("k="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(5usize)
                .min(100);
            let session = lock_session(&ctx.session);
            let similar: Vec<SimilarEntry> = session.store().similar(hash, k);
            let body = Json::arr(similar.iter().map(|s| {
                Json::obj([
                    ("hash", Json::s(&s.hash.to_string())),
                    ("name", Json::s(&s.name)),
                    ("score", Json::f(s.score)),
                ])
            }))
            .0;
            http::write_response(stream, 200, &[], "application/json", body.as_bytes())
        }
        (_, "/healthz" | "/v1/stats" | "/v1/modules" | "/v1/store" | "/v1/admin/compact") => {
            let body = Json::obj([("error", Json::s("method not allowed"))]).0;
            http::write_response(stream, 405, &[], "application/json", body.as_bytes())
        }
        _ => {
            let body = Json::obj([("error", Json::s("not found"))]).0;
            http::write_response(stream, 404, &[], "application/json", body.as_bytes())
        }
    }
}

/// `POST /v1/modules`: merge-queue admission, the optional request
/// deadline, and the success/error responses.
fn serve_merge(stream: &mut TcpStream, request: &Request, ctx: &Ctx) -> std::io::Result<()> {
    // Admission control first: shedding is the one thing the daemon must
    // still do quickly when it is saturated.
    let pending = ctx.gauges.pending_merges.fetch_add(1, Ordering::SeqCst);
    if pending >= ctx.cfg.max_pending_merges {
        ctx.gauges.pending_merges.fetch_sub(1, Ordering::SeqCst);
        ctx.gauges.shed_requests.fetch_add(1, Ordering::SeqCst);
        let body = Json::obj([
            ("error", Json::s("merge queue full")),
            ("pending", Json::i(pending as i128)),
            ("limit", Json::i(ctx.cfg.max_pending_merges as i128)),
            ("retry_after_secs", Json::i(ctx.cfg.retry_after_secs as i128)),
        ])
        .0;
        return http::write_response(
            stream,
            429,
            &retry_after(&ctx.cfg),
            "application/json",
            body.as_bytes(),
        );
    }
    let name = request.header("x-fmsa-name").unwrap_or("upload").to_owned();
    let outcome = match ctx.cfg.request_timeout {
        None => {
            let out = merge_upload(&ctx.session, &request.body, &name);
            ctx.gauges.pending_merges.fetch_sub(1, Ordering::SeqCst);
            out
        }
        Some(limit) => {
            // Run the merge on a worker so this handler can give up at
            // the deadline. The worker owns the gauge decrement: a
            // timed-out merge is still pending work until it finishes
            // (into the response cache, making the client's retry a
            // cache hit).
            let (tx, rx) = mpsc::channel();
            let worker_ctx = ctx.clone();
            let body = request.body.clone();
            std::thread::spawn(move || {
                let out = merge_upload(&worker_ctx.session, &body, &name);
                worker_ctx.gauges.pending_merges.fetch_sub(1, Ordering::SeqCst);
                let _ = tx.send(out);
            });
            match rx.recv_timeout(limit) {
                Ok(out) => out,
                Err(_) => {
                    ctx.gauges.timed_out.fetch_add(1, Ordering::SeqCst);
                    let body = Json::obj([
                        ("error", Json::s("request deadline exceeded")),
                        ("timeout_ms", Json::i(limit.as_millis() as i128)),
                        ("retry_after_secs", Json::i(ctx.cfg.retry_after_secs as i128)),
                    ])
                    .0;
                    return http::write_response(
                        stream,
                        503,
                        &retry_after(&ctx.cfg),
                        "application/json",
                        body.as_bytes(),
                    );
                }
            }
        }
    };
    match outcome {
        Ok(out) => {
            let headers = stats_headers(&out);
            http::write_chunked_response(
                stream,
                200,
                &headers,
                "text/plain; charset=utf-8",
                out.output.as_bytes(),
            )
        }
        Err(e) => {
            let status = error_status(&e);
            let mut pairs = vec![("error", Json::s(&e.to_string())), ("stage", Json::s(e.stage()))];
            if let Some(f) = e.function() {
                pairs.push(("function", Json::s(f)));
            }
            let body = Json::obj(pairs).0;
            http::write_response(stream, status, &[], "application/json", body.as_bytes())
        }
    }
}

/// The `/v1/stats` document: session totals, store counters (including
/// durability/recovery state), and the load-shedding gauges.
fn stats_json(ctx: &Ctx) -> String {
    let session = lock_session(&ctx.session);
    let totals = *session.totals();
    let store = session.store();
    let recovery = *store.recovery();
    Json::obj([
        ("uptime_ms", Json::i(ctx.started.elapsed().as_millis() as i128)),
        ("requests", Json::i(totals.requests as i128)),
        ("merges", Json::i(totals.merges as i128)),
        ("functions", Json::i(totals.functions as i128)),
        ("cache_hits", Json::i(totals.cache_hits as i128)),
        ("wall_ms", Json::i(totals.wall.as_millis() as i128)),
        (
            "store",
            Json::obj([
                ("functions", Json::i(store.len() as i128)),
                ("hits", Json::i(store.hits() as i128)),
                ("misses", Json::i(store.misses() as i128)),
                ("hit_rate", Json::f(store.hit_rate())),
                ("persistent", Json::b(store.dir().is_some())),
                ("format_version", Json::i(store.format_version() as i128)),
                ("fsync", Json::s(&store.fsync_policy().to_string())),
                ("total_bytes", Json::i(store.total_bytes() as i128)),
                ("dead_bytes", Json::i(store.dead_bytes() as i128)),
                ("dead_ratio", Json::f(store.dead_ratio())),
                ("compactions", Json::i(store.compactions() as i128)),
                ("compact_failures", Json::i(store.compact_failures() as i128)),
                (
                    "recovery",
                    Json::obj([
                        ("entries", Json::i(recovery.entries as i128)),
                        ("seen_records", Json::i(recovery.seen_records as i128)),
                        ("skipped_records", Json::i(recovery.skipped_records as i128)),
                        ("bytes_dropped", Json::i(recovery.bytes_dropped as i128)),
                        ("from_v1", Json::b(recovery.from_v1)),
                    ]),
                ),
            ]),
        ),
        (
            "queue",
            Json::obj([
                ("active_connections", Json::i(ctx.gauges.active.load(Ordering::SeqCst) as i128)),
                (
                    "pending_merges",
                    Json::i(ctx.gauges.pending_merges.load(Ordering::SeqCst) as i128),
                ),
                (
                    "shed_connections",
                    Json::i(ctx.gauges.shed_connections.load(Ordering::SeqCst) as i128),
                ),
                ("shed_requests", Json::i(ctx.gauges.shed_requests.load(Ordering::SeqCst) as i128)),
                ("timed_out", Json::i(ctx.gauges.timed_out.load(Ordering::SeqCst) as i128)),
            ]),
        ),
    ])
    .0
}

/// The full merge path for one upload: response-cache probe on the raw
/// bytes, format auto-detection, session merge.
fn merge_upload(
    session: &Mutex<MergeSession>,
    body: &[u8],
    name: &str,
) -> Result<MergeOutcome, Error> {
    if body.is_empty() {
        return Err(Error::config("empty request body (expected wasm or textual IR)"));
    }
    let key = ContentHash::of_bytes(body);
    let mut session = lock_session(session);
    if let Some(out) = session.merge_cached(key) {
        return Ok(out);
    }
    let module = fmsa::load_module_bytes(body, name)?;
    session.merge_module(module, Some(key))
}

fn stats_headers(out: &MergeOutcome) -> Vec<(&'static str, String)> {
    let s = &out.stats;
    vec![
        ("X-Fmsa-Functions", s.functions.to_string()),
        ("X-Fmsa-Merges", s.merges.to_string()),
        ("X-Fmsa-Size-Before", s.size_before.to_string()),
        ("X-Fmsa-Size-After", s.size_after.to_string()),
        ("X-Fmsa-Reduction-Percent", format!("{:.4}", s.reduction_percent)),
        ("X-Fmsa-Store-Hits", s.store_hits.to_string()),
        ("X-Fmsa-Store-Misses", s.store_misses.to_string()),
        ("X-Fmsa-Store-Size", s.store_size.to_string()),
        ("X-Fmsa-Quarantined", s.quarantined.to_string()),
        ("X-Fmsa-Wall-Micros", s.wall.as_micros().to_string()),
        ("X-Fmsa-Cache", if s.from_cache { "hit" } else { "miss" }.to_string()),
    ]
}

/// Maps a library [`Error`] onto an HTTP status: caller faults are 4xx
/// (bad uploads stay the client's problem), internal failures are 5xx.
fn error_status(e: &Error) -> u16 {
    match e.stage() {
        "parse" | "decode" | "config" => 400,
        "verify-input" => 422,
        _ => 500,
    }
}
