//! `fmsa_serve` — the FMSA merge daemon.
//!
//! ```text
//! fmsa_serve --addr 127.0.0.1:7070 --store .fmsa-store --threads 4
//! ```
//!
//! Uploads (`POST /v1/modules`, body = wasm binary or textual IR) come
//! back merged, byte-identical to batch `fmsa_opt` output for the same
//! configuration. With `--store`, the content-addressed function store
//! and its LSH index persist across restarts. See `docs/service.md`.

use fmsa::Config;
use fmsa_serve::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: fmsa_serve [options]

options:
  --addr HOST:PORT     listen address (default 127.0.0.1:7070; port 0 = ephemeral)
  --store DIR          persist the function store + LSH index under DIR
                       (default: in-memory, nothing survives a restart)
  --threads N          parallel merge pipeline with N workers (default: sequential)
  --threshold N        alignment profitability threshold (default 1)
  --search MODE        candidate search: exact | lsh | auto (default auto)
  --min-similarity F   skip candidate pairs below estimated similarity F
  --max-body BYTES     largest accepted upload (default 33554432)
  --read-timeout SECS  per-connection socket read timeout (default 10)
  -h, --help           this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("fmsa_serve: error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig { addr: "127.0.0.1:7070".to_owned(), ..ServerConfig::default() };
    let mut merge = Config::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg {
                "-h" | "--help" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                "--addr" => cfg.addr = value("--addr")?,
                "--store" => cfg.store_dir = Some(value("--store")?.into()),
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs a number".to_owned())?;
                    merge = merge.clone().threads(if n == 0 { None } else { Some(n) });
                }
                "--threshold" => {
                    let n = value("--threshold")?
                        .parse()
                        .map_err(|_| "--threshold needs a number".to_owned())?;
                    merge = merge.clone().threshold(n);
                }
                "--search" => {
                    let mode = value("--search")?;
                    let strategy = match mode.as_str() {
                        "exact" => fmsa::core::SearchStrategy::Exact,
                        "lsh" => fmsa::core::SearchStrategy::Lsh(Default::default()),
                        "auto" => fmsa::core::SearchStrategy::Auto,
                        other => return Err(format!("unknown search mode {other:?}")),
                    };
                    merge = merge.clone().search(strategy);
                }
                "--min-similarity" => {
                    let f: f64 = value("--min-similarity")?
                        .parse()
                        .map_err(|_| "--min-similarity needs a number".to_owned())?;
                    merge = merge.clone().min_similarity(f);
                }
                "--max-body" => {
                    cfg.max_body = value("--max-body")?
                        .parse()
                        .map_err(|_| "--max-body needs a byte count".to_owned())?;
                }
                "--read-timeout" => {
                    let secs: u64 = value("--read-timeout")?
                        .parse()
                        .map_err(|_| "--read-timeout needs seconds".to_owned())?;
                    cfg.read_timeout = Duration::from_secs(secs.max(1));
                }
                other => return Err(format!("unknown option {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return fail(&msg);
        }
        i += 1;
    }
    cfg.merge = merge;

    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => return fail(&format!("binding {}: {e}", cfg.addr)),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(&e.to_string()),
    };
    let store = cfg
        .store_dir
        .as_ref()
        .map_or("in-memory".to_owned(), |d| format!("persistent at {}", d.display()));
    eprintln!("fmsa_serve: listening on http://{addr} (store: {store})");
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e.to_string()),
    }
}
