//! `fmsa_serve` — the FMSA merge daemon.
//!
//! ```text
//! fmsa_serve --addr 127.0.0.1:7070 --store .fmsa-store --threads 4
//! ```
//!
//! Uploads (`POST /v1/modules`, body = wasm binary or textual IR) come
//! back merged, byte-identical to batch `fmsa_opt` output for the same
//! configuration. With `--store`, the content-addressed function store
//! and its LSH index persist across restarts. SIGTERM/ctrl-c trigger a
//! graceful shutdown: stop accepting, drain in-flight requests up to
//! `--shutdown-deadline`, then flush and compact the store. See
//! `docs/service.md`.

use fmsa::core::FaultPlan;
use fmsa::{Config, FsyncPolicy};
use fmsa_serve::{LogFormat, LogLevel, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "usage: fmsa_serve [options]

options:
  --addr HOST:PORT        listen address (default 127.0.0.1:7070; port 0 = ephemeral)
  --store DIR             persist the function store + LSH index under DIR
                          (default: in-memory, nothing survives a restart)
  --fsync POLICY          store durability: never | per-ingest | interval:SECS
                          (default per-ingest)
  --threads N             parallel merge pipeline with N workers (default: sequential)
  --threshold N           alignment profitability threshold (default 1)
  --search MODE           candidate search: exact | lsh | auto (default auto)
  --min-similarity F      skip candidate pairs below estimated similarity F
  --max-body BYTES        largest accepted upload (default 33554432)
  --read-timeout SECS     per-connection socket read timeout (default 10)
  --request-timeout SECS  merge deadline; past it the request gets 503 +
                          Retry-After (default: unbounded)
  --max-pending N         merges in flight before shedding with 429 (default 8)
  --shutdown-deadline SECS  drain budget for graceful shutdown (default 5)
  --log-level LEVEL       access log on stderr: off | info | debug
                          (default off; FMSA_LOG env sets the default)
  --log-format FMT        access log lines: text | json
                          (default text; FMSA_LOG_FORMAT env sets the default)
  -h, --help              this help

Set FMSA_FAULTS (e.g. \"seed=7 rate=0.01 sites=store-write,store-fsync\")
to inject deterministic store I/O faults — the chaos harness's knob.
";

/// Set by the SIGTERM/SIGINT handlers; polled by main.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Dependency-free signal(2) binding: the handler only stores a flag
    // (async-signal-safe); main polls it and runs the graceful path.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn fail(msg: &str) -> ExitCode {
    eprintln!("fmsa_serve: error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig { addr: "127.0.0.1:7070".to_owned(), ..ServerConfig::default() };
    let mut merge = Config::new();

    // Env defaults first; explicit flags below override them.
    if let Ok(v) = std::env::var("FMSA_LOG") {
        match LogLevel::parse(&v) {
            Ok(level) => cfg.log_level = level,
            Err(msg) => return fail(&format!("FMSA_LOG: {msg}")),
        }
    }
    if let Ok(v) = std::env::var("FMSA_LOG_FORMAT") {
        match LogFormat::parse(&v) {
            Ok(format) => cfg.log_format = format,
            Err(msg) => return fail(&format!("FMSA_LOG_FORMAT: {msg}")),
        }
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg {
                "-h" | "--help" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                "--addr" => cfg.addr = value("--addr")?,
                "--store" => cfg.store_dir = Some(value("--store")?.into()),
                "--fsync" => cfg.store.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs a number".to_owned())?;
                    merge = merge.clone().threads(if n == 0 { None } else { Some(n) });
                }
                "--threshold" => {
                    let n = value("--threshold")?
                        .parse()
                        .map_err(|_| "--threshold needs a number".to_owned())?;
                    merge = merge.clone().threshold(n);
                }
                "--search" => {
                    let mode = value("--search")?;
                    let strategy = match mode.as_str() {
                        "exact" => fmsa::core::SearchStrategy::Exact,
                        "lsh" => fmsa::core::SearchStrategy::Lsh(Default::default()),
                        "auto" => fmsa::core::SearchStrategy::Auto,
                        other => return Err(format!("unknown search mode {other:?}")),
                    };
                    merge = merge.clone().search(strategy);
                }
                "--min-similarity" => {
                    let f: f64 = value("--min-similarity")?
                        .parse()
                        .map_err(|_| "--min-similarity needs a number".to_owned())?;
                    merge = merge.clone().min_similarity(f);
                }
                "--max-body" => {
                    cfg.max_body = value("--max-body")?
                        .parse()
                        .map_err(|_| "--max-body needs a byte count".to_owned())?;
                }
                "--read-timeout" => {
                    let secs: u64 = value("--read-timeout")?
                        .parse()
                        .map_err(|_| "--read-timeout needs seconds".to_owned())?;
                    cfg.read_timeout = Duration::from_secs(secs.max(1));
                }
                "--request-timeout" => {
                    let secs: u64 = value("--request-timeout")?
                        .parse()
                        .map_err(|_| "--request-timeout needs seconds".to_owned())?;
                    cfg.request_timeout = Some(Duration::from_secs(secs.max(1)));
                }
                "--max-pending" => {
                    cfg.max_pending_merges = value("--max-pending")?
                        .parse()
                        .map_err(|_| "--max-pending needs a number".to_owned())?;
                }
                "--log-level" => cfg.log_level = LogLevel::parse(&value("--log-level")?)?,
                "--log-format" => cfg.log_format = LogFormat::parse(&value("--log-format")?)?,
                "--shutdown-deadline" => {
                    let secs: u64 = value("--shutdown-deadline")?
                        .parse()
                        .map_err(|_| "--shutdown-deadline needs seconds".to_owned())?;
                    cfg.shutdown_deadline = Duration::from_secs(secs);
                }
                other => return Err(format!("unknown option {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return fail(&msg);
        }
        i += 1;
    }
    cfg.merge = merge;
    // The same FMSA_FAULTS grammar the merge pipeline honors, restricted
    // by the plan's own `sites=` filter to the store I/O sites.
    cfg.store.faults = FaultPlan::from_env().unwrap_or_else(FaultPlan::disabled);

    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => return fail(&format!("binding {}: {e}", cfg.addr)),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(&e.to_string()),
    };
    let store = cfg
        .store_dir
        .as_ref()
        .map_or("in-memory".to_owned(), |d| format!("persistent at {}", d.display()));
    eprintln!("fmsa_serve: listening on http://{addr} (store: {store})");

    install_signal_handlers();
    let mut running = match server.spawn() {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("fmsa_serve: shutting down (draining, then flush + compact)");
    running.stop();
    ExitCode::SUCCESS
}
