//! A tiny JSON writer — the daemon's response bodies are flat objects
//! and short arrays, so a composable escaper beats a serializer
//! dependency (the workspace is dependency-free by policy).

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One JSON value, rendered.
#[derive(Debug, Clone)]
pub struct Json(pub String);

impl Json {
    /// A string value.
    pub fn s(v: &str) -> Json {
        Json(format!("\"{}\"", escape(v)))
    }

    /// An integer value.
    pub fn i(v: impl Into<i128>) -> Json {
        Json(v.into().to_string())
    }

    /// A float value (finite; non-finite renders as null).
    pub fn f(v: f64) -> Json {
        if v.is_finite() {
            Json(format!("{v:.6}"))
        } else {
            Json("null".to_owned())
        }
    }

    /// A boolean value.
    pub fn b(v: bool) -> Json {
        Json(v.to_string())
    }

    /// An array of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        let inner: Vec<String> = items.into_iter().map(|j| j.0).collect();
        Json(format!("[{}]", inner.join(",")))
    }

    /// An object from key/value pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        let inner: Vec<String> =
            pairs.into_iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v.0)).collect();
        Json(format!("{{{}}}", inner.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn composes_objects() {
        let j = Json::obj([("a", Json::i(1)), ("b", Json::arr([Json::s("x"), Json::b(true)]))]);
        assert_eq!(j.0, "{\"a\":1,\"b\":[\"x\",true]}");
    }
}
