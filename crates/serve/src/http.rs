//! Hardened, dependency-free HTTP/1.1 reader/writer over std TCP.
//!
//! Scope: exactly what the merge daemon needs — request-line + headers +
//! an optional `Content-Length` body in, status + headers + a fixed or
//! chunked body out. Not a general server. The parsing rules follow the
//! same posture as `crates/wasm/tests/hardening.rs`: malformed,
//! truncated, or oversized input must produce a clean error (mapped to a
//! 4xx by the caller) with **bounded memory** — every limit below is
//! checked *before* the corresponding bytes are read or buffered, so a
//! hostile `Content-Length: 999999999999` costs nothing.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Upper bound on one header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
pub const MAX_HEADERS: usize = 64;
/// Response body chunk size when streaming chunked transfer encoding.
pub const CHUNK: usize = 16 * 1024;

/// Why a request could not be read. The discriminants map onto HTTP
/// statuses in the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Syntactically invalid or truncated request (→ 400).
    Malformed(String),
    /// Declared body larger than the server's limit (→ 413).
    TooLarge { declared: u64, limit: usize },
    /// The client closed the connection before sending a request (clean
    /// end of a keep-alive session, no response owed).
    Closed,
    /// Socket-level failure mid-request (connection is unusable).
    Io(String),
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// The request target path, query string included.
    pub target: String,
    /// Lowercased header names with their raw values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The path without the query string, and the query string (empty if
    /// absent).
    pub fn path_query(&self) -> (&str, &str) {
        match self.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (self.target.as_str(), ""),
        }
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line (CRLF or bare LF terminated) with a byte cap. Returns
/// `Ok(None)` on clean EOF before any byte.
fn read_line(
    reader: &mut BufReader<&TcpStream>,
    cap: usize,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(RequestError::Malformed("truncated line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| RequestError::Malformed("non-UTF-8 header bytes".into()));
                }
                if line.len() >= cap {
                    return Err(RequestError::Malformed("header line too long".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(RequestError::Io(e.to_string())),
        }
    }
}

/// Reads one request off the stream, enforcing all limits. `max_body`
/// bounds the accepted `Content-Length`.
pub fn read_request(
    reader: &mut BufReader<&TcpStream>,
    max_body: usize,
) -> Result<Request, RequestError> {
    let Some(request_line) = read_line(reader, MAX_REQUEST_LINE)? else {
        return Err(RequestError::Closed);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed(format!("bad request line {request_line:?}")));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!("bad request line {request_line:?}")));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed(format!("bad method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(RequestError::Malformed(format!("bad target {target:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, MAX_HEADER_LINE)? else {
            return Err(RequestError::Malformed("truncated headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request =
        Request { method: method.to_owned(), target: target.to_owned(), headers, body: Vec::new() };

    if request.header("transfer-encoding").is_some() {
        // Chunked *requests* are out of scope; refusing them keeps body
        // accounting trivially bounded.
        return Err(RequestError::Malformed("transfer-encoding requests not supported".into()));
    }
    if let Some(cl) = request.header("content-length") {
        let declared: u64 = cl
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad content-length {cl:?}")))?;
        // The size check precedes any allocation or read: an oversized
        // declaration is rejected having cost only the header bytes.
        if declared > max_body as u64 {
            return Err(RequestError::TooLarge { declared, limit: max_body });
        }
        let mut body = vec![0u8; declared as usize];
        if let Err(e) = reader.read_exact(&mut body) {
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                RequestError::Malformed("body shorter than content-length".into())
            } else {
                RequestError::Io(e.to_string())
            });
        }
        request.body = body;
    }
    Ok(request)
}

/// The reason phrase for the handful of statuses the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Streams a response body with chunked transfer encoding, [`CHUNK`]
/// bytes at a time — the daemon's path for merged-module bodies, whose
/// size it knows but whose transfer should start before the whole
/// response is assembled into one buffer on the socket.
pub fn write_chunked_response(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n",
        reason(status)
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    for chunk in body.chunks(CHUNK) {
        stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}
