//! A minimal HTTP/1.1 client — enough to exercise the daemon from tests
//! and the `serve-bench` load generator without pulling a dependency in.
//! One request per connection (`Connection: close`); understands
//! `Content-Length` and `chunked` response bodies.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header names with their values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked framing removed).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: fmsa\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, &[], &[])
}

/// `POST path` with a body.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> std::io::Result<Response> {
    request(addr, "POST", path, &[], body)
}

/// Retry behavior for [`request_with_retry`]: capped jittered
/// exponential backoff over transport errors and 429/503 shed
/// responses, honoring the server's `Retry-After` when present.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included); 1 disables retrying.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling for any single backoff, including server `Retry-After`.
    pub max_delay: Duration,
    /// Jitter seed, so concurrent clients don't retry in lockstep and a
    /// given client's schedule still replays deterministically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based): exponential from
    /// `base_delay` with ±50% deterministic jitter, capped at
    /// `max_delay`. `retry_after` (seconds, from the server) overrides
    /// the exponential schedule but not the cap.
    fn delay(&self, retry: u32, retry_after: Option<u64>) -> Duration {
        if let Some(secs) = retry_after {
            return Duration::from_secs(secs).min(self.max_delay);
        }
        let exp = self.base_delay.saturating_mul(1u32 << retry.min(16));
        // splitmix64 over (seed, retry): cheap, stateless, deterministic.
        let mut z = self.seed.wrapping_add(retry as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = ((z ^ (z >> 31)) % 1000) as f64 / 1000.0; // [0, 1)
        exp.mul_f64(0.5 + jitter).min(self.max_delay)
    }
}

/// [`request`] with retries: transport errors and 429/503 responses are
/// retried per `policy`; any other response (including 4xx/5xx) returns
/// immediately. If every attempt sheds, the last shed response is
/// returned so the caller can see the status it died with.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    policy: &RetryPolicy,
) -> std::io::Result<Response> {
    let mut last_err: Option<std::io::Error> = None;
    let mut last_shed: Option<Response> = None;
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            let retry_after = last_shed
                .as_ref()
                .and_then(|r| r.header("retry-after"))
                .and_then(|v| v.parse().ok());
            std::thread::sleep(policy.delay(attempt - 1, retry_after));
        }
        match request(addr, method, path, headers, body) {
            Ok(r) if r.status == 429 || r.status == 503 => last_shed = Some(r),
            Ok(r) => return Ok(r),
            Err(e) => {
                last_shed = None;
                last_err = Some(e);
            }
        }
    }
    match last_shed {
        Some(r) => Ok(r),
        None => Err(last_err.unwrap_or_else(|| bad("no attempts made"))),
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

fn read_line<R: BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed mid-response"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses a status line, headers, and body off `reader`.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<Response> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad("bad status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("bad status line"));
    }
    let status: u16 = code.parse().map_err(|_| bad("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("bad response header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |name: &str| headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
    let mut body = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        loop {
            let size_line = read_line(reader)?;
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                // Trailer section ends with an empty line.
                while !read_line(reader)?.is_empty() {}
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(cl) = find("content-length") {
        let len: usize = cl.parse().map_err(|_| bad("bad content-length"))?;
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(Response { status, headers, body })
}
