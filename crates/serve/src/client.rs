//! A minimal HTTP/1.1 client — enough to exercise the daemon from tests
//! and the `serve-bench` load generator without pulling a dependency in.
//! One request per connection (`Connection: close`); understands
//! `Content-Length` and `chunked` response bodies.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header names with their values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked framing removed).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: fmsa\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, &[], &[])
}

/// `POST path` with a body.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> std::io::Result<Response> {
    request(addr, "POST", path, &[], body)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

fn read_line<R: BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed mid-response"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses a status line, headers, and body off `reader`.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<Response> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad("bad status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("bad status line"));
    }
    let status: u16 = code.parse().map_err(|_| bad("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("bad response header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |name: &str| headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
    let mut body = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        loop {
            let size_line = read_line(reader)?;
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                // Trailer section ends with an empty line.
                while !read_line(reader)?.is_empty() {}
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(cl) = find("content-length") {
        let len: usize = cl.parse().map_err(|_| bad("bad content-length"))?;
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(Response { status, headers, body })
}
