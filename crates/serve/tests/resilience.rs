//! Resilience tests for the daemon: load shedding with `Retry-After`,
//! per-request deadlines, the compaction endpoint, and graceful
//! shutdown draining an in-flight upload (the in-process equivalent of
//! holding a slow POST open across SIGTERM).

use fmsa_serve::client::{self, RetryPolicy};
use fmsa_serve::{Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fmsa-resilience-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn boot(cfg: ServerConfig) -> fmsa_serve::RunningServer {
    Server::bind(cfg).unwrap().spawn().unwrap()
}

fn wasm_corpus(functions: usize, seed: u64) -> Vec<u8> {
    let mut cfg = fmsa_workloads::WasmFixtureConfig::with_functions(functions);
    cfg.seed = seed;
    fmsa_workloads::wasm_fixture_bytes(&cfg)
}

#[test]
fn connection_shed_is_structured_json_with_retry_after() {
    let cfg = ServerConfig { max_connections: 0, ..ServerConfig::default() };
    let server = boot(cfg);
    let resp = client::get(server.addr(), "/healthz").unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"), "headers: {:?}", resp.headers);
    let text = resp.text();
    assert!(text.contains("\"error\":\"too many connections\""), "body: {text}");
    assert!(text.contains("\"retry_after_secs\":1"), "body: {text}");
}

#[test]
fn merge_queue_shed_is_429_with_retry_after() {
    let cfg = ServerConfig { max_pending_merges: 0, ..ServerConfig::default() };
    let server = boot(cfg);
    // Merges are shed...
    let resp = client::post(server.addr(), "/v1/modules", b"module m\n").unwrap();
    assert_eq!(resp.status, 429, "body: {}", resp.text());
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.text().contains("\"error\":\"merge queue full\""), "body: {}", resp.text());
    // ...but read-only traffic still flows.
    assert_eq!(client::get(server.addr(), "/healthz").unwrap().status, 200);
    let stats = client::get(server.addr(), "/v1/stats").unwrap().text();
    assert!(stats.contains("\"shed_requests\":1"), "stats: {stats}");
}

#[test]
fn request_deadline_returns_503_then_retry_hits_cache() {
    // A deadline far below merge time: the first upload must time out
    // (503 + Retry-After) while the merge finishes into the response
    // cache, so the retrying client eventually gets a 200 cache hit.
    let cfg = ServerConfig {
        request_timeout: Some(Duration::from_millis(5)),
        retry_after_secs: 1,
        ..ServerConfig::default()
    };
    let server = boot(cfg);
    let corpus = wasm_corpus(48, 9);

    let first = client::post(server.addr(), "/v1/modules", &corpus).unwrap();
    assert_eq!(first.status, 503, "body: {}", first.text());
    assert_eq!(first.header("retry-after"), Some("1"));
    assert!(first.text().contains("request deadline exceeded"), "body: {}", first.text());

    let policy = RetryPolicy { max_attempts: 60, seed: 42, ..RetryPolicy::default() };
    let retried =
        client::request_with_retry(server.addr(), "POST", "/v1/modules", &[], &corpus, &policy)
            .unwrap();
    assert_eq!(retried.status, 200, "body: {}", retried.text());
    assert_eq!(retried.header("x-fmsa-cache"), Some("hit"));

    let stats = client::get(server.addr(), "/v1/stats").unwrap().text();
    assert!(stats.contains("\"timed_out\":"), "stats: {stats}");
    assert!(!stats.contains("\"timed_out\":0"), "at least one deadline fired: {stats}");
}

#[test]
fn admin_compact_rewrites_the_log_and_reports_in_stats() {
    let dir = temp_dir("compact");
    let cfg = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let server = boot(cfg);
    let corpus = wasm_corpus(12, 4);
    assert_eq!(client::post(server.addr(), "/v1/modules", &corpus).unwrap().status, 200);
    // Cache-hit replay appends durable seen-bump records: dead bytes.
    assert_eq!(client::post(server.addr(), "/v1/modules", &corpus).unwrap().status, 200);
    let stats = client::get(server.addr(), "/v1/stats").unwrap().text();
    assert!(!stats.contains("\"dead_bytes\":0,"), "bumps should be dead weight: {stats}");

    assert_eq!(client::get(server.addr(), "/v1/admin/compact").unwrap().status, 405);
    let resp = client::post(server.addr(), "/v1/admin/compact", b"").unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let text = resp.text();
    assert!(text.contains("\"entries\":"), "body: {text}");
    assert!(text.contains("\"bytes_after\":"), "body: {text}");

    let stats = client::get(server.addr(), "/v1/stats").unwrap().text();
    assert!(stats.contains("\"dead_bytes\":0,"), "compaction folds bumps: {stats}");
    assert!(stats.contains("\"compactions\":1"), "stats: {stats}");
    assert!(stats.contains("\"recovery\":{"), "stats: {stats}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_drains_in_flight_upload_then_compacts() {
    let dir = temp_dir("drain");
    let cfg = ServerConfig {
        store_dir: Some(dir.clone()),
        shutdown_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let mut server = boot(cfg);
    let addr = server.addr();
    let corpus = wasm_corpus(12, 21);

    // Hold a slow upload open: headers + half the body, then stall.
    let mut stream = TcpStream::connect(addr).unwrap();
    let head =
        format!("POST /v1/modules HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n", corpus.len());
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(&corpus[..corpus.len() / 2]).unwrap();
    stream.flush().unwrap();
    // Let the daemon accept + start reading before we ask it to stop.
    std::thread::sleep(Duration::from_millis(200));

    // Graceful stop on another thread: it must block draining us.
    let stopper = std::thread::spawn(move || {
        server.stop();
        server
    });
    std::thread::sleep(Duration::from_millis(300));
    assert!(!stopper.is_finished(), "stop() must wait for the in-flight upload");

    // Finish the upload; the draining daemon still serves it fully.
    stream.write_all(&corpus[corpus.len() / 2..]).unwrap();
    stream.flush().unwrap();
    let resp = client::read_response(&mut BufReader::new(&stream)).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let merges: usize = resp.header("x-fmsa-merges").unwrap().parse().unwrap();
    assert!(merges > 0);
    drop(stopper.join().unwrap());

    // Shutdown flushed + compacted: the log reopens clean and complete.
    let store = fmsa::FunctionStore::open(&dir).unwrap();
    assert!(!store.is_empty(), "drained upload must be durable");
    assert_eq!(store.recovery().skipped_records, 0);
    assert_eq!(store.dead_bytes(), 0, "shutdown compaction leaves no dead bytes");
    std::fs::remove_dir_all(&dir).ok();
}
