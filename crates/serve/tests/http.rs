//! End-to-end tests for the merge daemon: protocol round-trips, parity
//! with batch optimization, store/cache behavior across uploads and
//! restarts, and hardening against malformed/truncated/oversized
//! requests (the protocol-level counterpart of
//! `crates/wasm/tests/hardening.rs`).

use fmsa_serve::{client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fmsa-serve-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn boot(cfg: ServerConfig) -> fmsa_serve::RunningServer {
    Server::bind(cfg).unwrap().spawn().unwrap()
}

fn wasm_corpus(functions: usize, seed: u64) -> Vec<u8> {
    let mut cfg = fmsa_workloads::WasmFixtureConfig::with_functions(functions);
    cfg.seed = seed;
    fmsa_workloads::wasm_fixture_bytes(&cfg)
}

/// What batch `fmsa_opt` would print for the same bytes and config.
fn batch_reference(bytes: &[u8], name: &str) -> String {
    let mut module = fmsa::load_module_bytes(bytes, name).unwrap();
    fmsa::optimize(&mut module, &fmsa::Config::new()).unwrap();
    fmsa::ir::printer::print_module(&module)
}

#[test]
fn upload_matches_batch_fmsa_opt_byte_for_byte() {
    let server = boot(ServerConfig::default());
    let corpus = wasm_corpus(24, 7);
    let reference = batch_reference(&corpus, "corpus");

    let resp = client::request(
        server.addr(),
        "POST",
        "/v1/modules",
        &[("X-Fmsa-Name", "corpus")],
        &corpus,
    )
    .unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    assert_eq!(resp.text(), reference, "daemon output diverges from batch fmsa_opt");
    assert_eq!(resp.header("x-fmsa-cache"), Some("miss"));
    let merges: usize = resp.header("x-fmsa-merges").unwrap().parse().unwrap();
    assert!(merges > 0, "fixture corpus should produce merges");
}

#[test]
fn textual_ir_round_trips() {
    let server = boot(ServerConfig::default());
    let text = "module demo\n\ndefine i32 @id(i32 %x) {\nentry:\n  ret i32 %x\n}\n";
    let resp = client::post(server.addr(), "/v1/modules", text.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    assert!(resp.text().contains("@id"), "merged output should keep the function");
    assert_eq!(resp.header("x-fmsa-functions"), Some("1"));
}

#[test]
fn second_upload_is_cache_hit_with_full_store_hits() {
    let server = boot(ServerConfig::default());
    let corpus = wasm_corpus(16, 3);

    let first = client::post(server.addr(), "/v1/modules", &corpus).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-fmsa-cache"), Some("miss"));

    let second = client::post(server.addr(), "/v1/modules", &corpus).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-fmsa-cache"), Some("hit"));
    assert_eq!(
        second.body, first.body,
        "re-uploading identical bytes must return byte-identical output"
    );
    let functions: u64 = second.header("x-fmsa-functions").unwrap().parse().unwrap();
    let hits: u64 = second.header("x-fmsa-store-hits").unwrap().parse().unwrap();
    assert_eq!(hits, functions, "a replayed corpus is all store hits");

    let stats = client::get(server.addr(), "/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let text = stats.text();
    assert!(text.contains("\"cache_hits\":1"), "stats: {text}");
    assert!(!text.contains("\"hit_rate\":0.000000"), "hit rate must be nonzero: {text}");
}

#[test]
fn store_survives_restart() {
    let dir = temp_dir("restart");
    let corpus = wasm_corpus(12, 11);

    let cfg = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let mut server = boot(cfg.clone());
    let first = client::post(server.addr(), "/v1/modules", &corpus).unwrap();
    assert_eq!(first.status, 200);
    let misses: u64 = first.header("x-fmsa-store-misses").unwrap().parse().unwrap();
    assert!(misses > 0);
    server.stop();

    // A fresh process over the same directory reloads the index: the
    // same corpus is now all hits (the response cache died with the old
    // process, so this exercises the store, not the cache).
    let server = boot(cfg);
    let again = client::post(server.addr(), "/v1/modules", &corpus).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-fmsa-cache"), Some("miss"));
    assert_eq!(again.body, first.body, "restart must not change merge output");
    let hits: u64 = again.header("x-fmsa-store-hits").unwrap().parse().unwrap();
    let functions: u64 = again.header("x-fmsa-functions").unwrap().parse().unwrap();
    assert_eq!(hits, functions, "reloaded index should recognize every function");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_and_similar_endpoints() {
    let server = boot(ServerConfig::default());
    let corpus = wasm_corpus(16, 5);
    assert_eq!(client::post(server.addr(), "/v1/modules", &corpus).unwrap().status, 200);

    let store = client::get(server.addr(), "/v1/store").unwrap();
    assert_eq!(store.status, 200);
    let text = store.text();
    assert!(text.contains("\"functions\":"), "store summary: {text}");
    // Pull one hash out of the summary and fetch its canonical text.
    let hash = text.split("\"hash\":\"").nth(1).unwrap().split('"').next().unwrap().to_owned();
    assert_eq!(hash.len(), 32);

    let entry = client::get(server.addr(), &format!("/v1/store/{hash}")).unwrap();
    assert_eq!(entry.status, 200);
    assert!(entry.text().starts_with("define "), "canonical text: {}", entry.text());

    let similar = client::get(server.addr(), &format!("/v1/similar/{hash}?k=3")).unwrap();
    assert_eq!(similar.status, 200);
    assert!(similar.text().starts_with('['), "similar: {}", similar.text());

    assert_eq!(client::get(server.addr(), "/v1/store/nothex").unwrap().status, 400);
    let missing = format!("{:032x}", 0xdead_beefu128);
    assert_eq!(client::get(server.addr(), &format!("/v1/store/{missing}")).unwrap().status, 404);
}

#[test]
fn routing_rejects_unknown_paths_and_methods() {
    let server = boot(ServerConfig::default());
    assert_eq!(client::get(server.addr(), "/healthz").unwrap().status, 200);
    assert_eq!(client::get(server.addr(), "/nope").unwrap().status, 404);
    assert_eq!(client::post(server.addr(), "/healthz", b"x").unwrap().status, 405);
    assert_eq!(client::get(server.addr(), "/v1/modules").unwrap().status, 405);
}

#[test]
fn bad_uploads_get_clean_4xx_not_a_dead_daemon() {
    let server = boot(ServerConfig::default());

    // Empty body.
    let resp = client::post(server.addr(), "/v1/modules", b"").unwrap();
    assert_eq!(resp.status, 400, "body: {}", resp.text());

    // Truncated wasm: magic then nothing.
    let resp = client::post(server.addr(), "/v1/modules", b"\0asm").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"stage\":\"decode\""), "body: {}", resp.text());

    // Textual IR that does not parse.
    let resp = client::post(server.addr(), "/v1/modules", b"define nonsense {").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"stage\":\"parse\""), "body: {}", resp.text());

    // Binary garbage (not wasm, not UTF-8).
    let resp = client::post(server.addr(), "/v1/modules", &[0xff, 0xfe, 0x01, 0x02]).unwrap();
    assert_eq!(resp.status, 400);

    // The daemon is still alive and its store is still empty (failed
    // uploads must not pollute it).
    let stats = client::get(server.addr(), "/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.text().contains("\"store\":{\"functions\":0"), "stats: {}", stats.text());
}

fn raw_roundtrip(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(payload).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn malformed_requests_get_400() {
    let server = boot(ServerConfig::default());
    for payload in [
        b"not http at all\r\n\r\n".as_slice(),
        b"get /lowercase HTTP/1.1\r\n\r\n",
        b"GET noslash HTTP/1.1\r\n\r\n",
        b"GET /healthz HTTP/2.0\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n",
        b"POST /v1/modules HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        b"POST /v1/modules HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        // Body shorter than its declared length.
        b"POST /v1/modules HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
    ] {
        let reply = raw_roundtrip(server.addr(), payload);
        assert!(
            reply.starts_with("HTTP/1.1 400 "),
            "payload {:?} got: {reply}",
            String::from_utf8_lossy(payload)
        );
    }
}

#[test]
fn oversized_declaration_is_rejected_without_allocation() {
    // A tiny max_body plus an absurd Content-Length: the daemon must
    // answer 413 from the headers alone. (If it tried to allocate the
    // declared 2^60 bytes this test would OOM, not fail an assert.)
    let cfg = ServerConfig { max_body: 4096, ..ServerConfig::default() };
    let server = boot(cfg);
    let reply = raw_roundtrip(
        server.addr(),
        b"POST /v1/modules HTTP/1.1\r\nContent-Length: 1152921504606846976\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413 "), "got: {reply}");
    assert!(reply.contains("\"limit\":4096"), "got: {reply}");

    // At exactly the limit the request is accepted (and then rejected
    // as a bad module, which is the point: the *transport* let it in).
    let mut body = b"define nonsense {".to_vec();
    body.resize(4096, b'z');
    let resp = client::post(server.addr(), "/v1/modules", &body).unwrap();
    assert_eq!(resp.status, 400);
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let server = boot(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    for _ in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut reader = std::io::BufReader::new(&mut stream);
        let resp = client::read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let server = boot(ServerConfig::default());
    // One real merge so request, cache, store, and decision series all
    // have data behind them.
    let corpus = wasm_corpus(16, 5);
    assert_eq!(client::post(server.addr(), "/v1/modules", &corpus).unwrap().status, 200);

    let resp = client::get(server.addr(), "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.header("content-type").unwrap().contains("version=0.0.4"),
        "exposition content type, got {:?}",
        resp.header("content-type")
    );
    let body = resp.text();
    for family in [
        "fmsa_http_requests_total",
        "fmsa_http_request_duration_seconds_bucket",
        "fmsa_http_response_bytes_total",
        "fmsa_merge_cache_total",
        "fmsa_merge_duration_seconds_bucket",
        "fmsa_merge_decisions",
        "fmsa_build_info",
        "fmsa_store_functions",
        "fmsa_session_merges",
        "fmsa_queue_active_connections",
        "fmsa_started_at_seconds",
        "fmsa_uptime_seconds",
    ] {
        assert!(body.contains(family), "missing family {family} in:\n{body}");
    }
    // The upload itself is visible as a counted, histogrammed request.
    assert!(
        body.contains(r#"fmsa_http_requests_total{route="/v1/modules",status="200"} 1"#),
        "upload not counted:\n{body}"
    );
    assert!(body.contains(r#"le="+Inf""#));
    // Build metadata rides as labels on a constant gauge.
    let build = body.lines().find(|l| l.starts_with("fmsa_build_info{")).unwrap();
    assert!(build.contains("version=\"") && build.contains("store_format=\""));
    assert!(build.ends_with(" 1"));
    // Every family gets HELP + TYPE exactly once.
    assert_eq!(body.matches("# TYPE fmsa_http_requests_total ").count(), 1);
}

#[test]
fn merges_recent_returns_bounded_decision_records() {
    let server = boot(ServerConfig::default());
    let corpus = wasm_corpus(24, 9);
    assert_eq!(client::post(server.addr(), "/v1/modules", &corpus).unwrap().status, 200);

    let resp = client::get(server.addr(), "/v1/merges/recent?n=3").unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.text();
    assert!(body.contains("\"total\":") && body.contains("\"records\":["), "got: {body}");
    // n caps the returned records.
    let records = body.matches("\"subject\":").count();
    assert!(records <= 3, "asked for 3, got {records}: {body}");
    assert!(records > 0, "a merged corpus must leave decision records: {body}");
    // Decision totals reconcile with the merge count the upload reported.
    let merged = body.matches("\"outcome\":\"merged\"").count()
        + body.matches("\"outcome\":\"conflict-fallback\"").count();
    assert!(merged <= records);

    // Default n, no query string.
    let resp = client::get(server.addr(), "/v1/merges/recent").unwrap();
    assert_eq!(resp.status, 200);
}

#[test]
fn stats_carries_build_metadata() {
    let server = boot(ServerConfig::default());
    let resp = client::get(server.addr(), "/v1/stats").unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.text();
    for key in ["\"version\":", "\"profile\":", "\"started_at\":", "\"uptime_ms\":"] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
}

#[test]
fn access_log_levels_parse_and_default_off() {
    use fmsa_serve::{LogFormat, LogLevel};
    assert_eq!(LogLevel::parse("off").unwrap(), LogLevel::Off);
    assert_eq!(LogLevel::parse("info").unwrap(), LogLevel::Info);
    assert_eq!(LogLevel::parse("debug").unwrap(), LogLevel::Debug);
    assert!(LogLevel::parse("verbose").is_err());
    assert_eq!(LogFormat::parse("text").unwrap(), LogFormat::Text);
    assert_eq!(LogFormat::parse("json").unwrap(), LogFormat::Json);
    assert!(LogFormat::parse("yaml").is_err());
    assert_eq!(ServerConfig::default().log_level, LogLevel::Off);
    assert_eq!(ServerConfig::default().log_format, LogFormat::Text);
    assert!(LogLevel::Debug > LogLevel::Info && LogLevel::Info > LogLevel::Off);
}
