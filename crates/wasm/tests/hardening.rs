//! Decoder hardening: the frontend must never panic on hostile input.
//!
//! Starting from a valid binary produced by [`fmsa_wasm::encode`], random
//! byte mutations, truncations, and raw garbage are fed through
//! `parse_wasm` + `load_wasm` under `catch_unwind`. Every outcome must be
//! either a clean decode or a structured [`fmsa_wasm::WasmError`] whose
//! byte offset points inside the input — never a panic, never an offset
//! past the end of the bytes.

use fmsa_wasm::encode::{CodeWriter, WasmBuilder};
use fmsa_wasm::ValType;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A small but representative binary: two types, linear memory, three
/// function bodies exercising control flow, memory ops, and conversions.
fn base_bytes() -> Vec<u8> {
    let mut b = WasmBuilder::new();
    let binop = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
    let unop = b.add_type(&[ValType::I32], &[ValType::I32]);
    b.add_memory(1);

    let mut w = CodeWriter::new();
    w.local_get(0);
    w.local_get(1);
    w.i32_add();
    let add = b.add_function(binop, &[], w);

    let mut w = CodeWriter::new();
    w.local_get(0);
    w.if_(Some(ValType::I32));
    w.local_get(0);
    w.i32_const(3);
    w.ibinary(ValType::I32, 2); // i32.mul
    w.else_();
    w.i32_const(7);
    w.end();
    let scale = b.add_function(unop, &[ValType::I32], w);

    let mut w = CodeWriter::new();
    w.local_get(0);
    w.i32_const(0);
    w.store(ValType::I32, 16);
    w.i32_const(0);
    w.load(ValType::I32, 16);
    let roundtrip = b.add_function(unop, &[], w);

    b.export_func("add", add);
    b.export_func("scale", scale);
    b.export_func("roundtrip", roundtrip);
    b.finish()
}

/// Decodes and lowers under `catch_unwind`, asserting the hardening
/// contract: no panic, and any error carries an in-range byte offset.
fn assert_harmless(bytes: &[u8]) -> Result<(), TestCaseError> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        fmsa_wasm::parse_wasm(bytes).map(|_| ())?;
        fmsa_wasm::load_wasm(bytes, "fuzzed").map(|_| ())
    }));
    match result {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => {
            prop_assert!(
                e.offset <= bytes.len(),
                "error offset {} exceeds input length {}: {e}",
                e.offset,
                bytes.len()
            );
            Ok(())
        }
        Err(_) => {
            prop_assert!(false, "decoder panicked on {} bytes", bytes.len());
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn mutated_binaries_never_panic(
        positions in prop::collection::vec(0usize..1_000_000, 1..8),
        values in prop::collection::vec(0u16..256, 1..8),
    ) {
        let mut bytes = base_bytes();
        for (pos, val) in positions.iter().zip(values.iter()) {
            let i = pos % bytes.len();
            bytes[i] = *val as u8;
        }
        assert_harmless(&bytes)?;
    }

    #[test]
    fn truncated_binaries_never_panic(cut in 0usize..1_000_000) {
        let mut bytes = base_bytes();
        let keep = cut % (bytes.len() + 1);
        bytes.truncate(keep);
        assert_harmless(&bytes)?;
    }

    #[test]
    fn garbage_after_magic_never_panics(tail in prop::collection::vec(0u16..256, 0..64)) {
        let mut bytes = vec![0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];
        bytes.extend(tail.iter().map(|&v| v as u8));
        assert_harmless(&bytes)?;
    }

    #[test]
    fn raw_garbage_never_panics(raw in prop::collection::vec(0u16..256, 0..64)) {
        let bytes: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        assert_harmless(&bytes)?;
    }
}

#[test]
fn base_binary_is_valid() {
    let bytes = base_bytes();
    let m = fmsa_wasm::load_wasm(&bytes, "base").expect("base binary decodes");
    assert!(fmsa_ir::verify_module(&m).is_empty());
    assert_eq!(m.func_count(), 3);
}
