//! End-to-end frontend tests: build wasm bytes with the emitter, decode,
//! lower to `fmsa_ir`, verify, and execute the lowered code in
//! `fmsa-interp`, checking wasm semantics (zero-filled locals, masked
//! shifts via the interpreter, structured branches, memory accesses).

use fmsa_interp::{Interpreter, Val};
use fmsa_ir::{verify_module, FuncBuilder, Linkage, Value};
use fmsa_wasm::encode::{CodeWriter, WasmBuilder};
use fmsa_wasm::{load_wasm, parse_wasm, ValType, WasmError, WasmErrorKind};

fn lowered(b: &WasmBuilder) -> fmsa_ir::Module {
    let bytes = b.finish();
    let m = load_wasm(&bytes, "test").expect("decode + lower");
    let errs = verify_module(&m);
    assert!(errs.is_empty(), "lowered module must verify: {errs:?}");
    m
}

fn run_i32(m: &fmsa_ir::Module, name: &str, args: Vec<Val>) -> i32 {
    let out = Interpreter::new(m).run(name, args).expect("no trap");
    out.value.expect("has result").as_i64().expect("integer") as i32
}

#[test]
fn straight_line_arithmetic() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.local_get(1);
    c.ibinary(ValType::I32, 0); // add
    c.i32_const(7);
    c.ibinary(ValType::I32, 2); // mul
    let f = b.add_function(ty, &[], c);
    b.export_func("mac7", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "mac7", vec![Val::i32(3), Val::i32(4)]), 49);
}

#[test]
fn if_else_selects_the_max() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.local_get(1);
    c.icmp(ValType::I32, 4); // gt_s
    c.if_(Some(ValType::I32));
    c.local_get(0);
    c.else_();
    c.local_get(1);
    c.end();
    let f = b.add_function(ty, &[], c);
    b.export_func("max", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "max", vec![Val::i32(3), Val::i32(9)]), 9);
    assert_eq!(run_i32(&m, "max", vec![Val::i32(-3), Val::i32(-9)]), -3);
}

#[test]
fn loop_sums_with_backedge() {
    // sum = 0; i = n; loop { sum += i; i -= 1; br_if i != 0 } -> sum
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    // local 1 = sum, local 2 = i (declared locals, zero-init)
    c.local_get(0);
    c.local_set(2);
    c.loop_(None);
    c.local_get(1);
    c.local_get(2);
    c.ibinary(ValType::I32, 0); // add
    c.local_set(1);
    c.local_get(2);
    c.i32_const(1);
    c.ibinary(ValType::I32, 1); // sub
    c.local_tee(2);
    c.eqz(ValType::I32);
    c.eqz(ValType::I32); // i != 0
    c.br_if(0);
    c.end();
    c.local_get(1);
    let f = b.add_function(ty, &[ValType::I32, ValType::I32], c);
    b.export_func("sum_to", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "sum_to", vec![Val::i32(5)]), 15);
    assert_eq!(run_i32(&m, "sum_to", vec![Val::i32(1)]), 1);
}

#[test]
fn br_table_becomes_a_switch() {
    // block block block br_table [0, 1] default=2 ... returns 10/20/30.
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.block(None); // label 2 (outermost of the three)
    c.block(None); // label 1
    c.block(None); // label 0
    c.local_get(0);
    c.br_table(&[0, 1], 2);
    c.end();
    c.i32_const(10);
    c.return_();
    c.end();
    c.i32_const(20);
    c.return_();
    c.end();
    c.i32_const(30);
    let f = b.add_function(ty, &[], c);
    b.export_func("pick", f);
    let m = lowered(&b);
    // The lowered body must contain an IR switch.
    let fid = m.func_by_name("pick").expect("exists");
    let has_switch = m
        .func(fid)
        .inst_ids()
        .iter()
        .any(|&i| m.func(fid).inst(i).opcode == fmsa_ir::Opcode::Switch);
    assert!(has_switch, "br_table should lower to switch:\n{}", fmsa_ir::printer::print_module(&m));
    assert_eq!(run_i32(&m, "pick", vec![Val::i32(0)]), 10);
    assert_eq!(run_i32(&m, "pick", vec![Val::i32(1)]), 20);
    assert_eq!(run_i32(&m, "pick", vec![Val::i32(2)]), 30);
    assert_eq!(run_i32(&m, "pick", vec![Val::i32(77)]), 30);
}

#[test]
fn block_results_flow_through_slots() {
    // block (result i32) { 5; br_if 0 on p0; drop; 9 } + 1
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.block(Some(ValType::I32));
    c.i32_const(5);
    c.local_get(0);
    c.br_if(0);
    c.drop_();
    c.i32_const(9);
    c.end();
    c.i32_const(1);
    c.ibinary(ValType::I32, 0); // add
    let f = b.add_function(ty, &[], c);
    b.export_func("blockval", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "blockval", vec![Val::i32(1)]), 6);
    assert_eq!(run_i32(&m, "blockval", vec![Val::i32(0)]), 10);
}

#[test]
fn recursion_and_internal_helpers() {
    // f0 (internal): n <= 1 ? 1 : n * f0(n - 1); f1 (exported) calls f0.
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.i32_const(1);
    c.icmp(ValType::I32, 6); // le_s
    c.if_(Some(ValType::I32));
    c.i32_const(1);
    c.else_();
    c.local_get(0);
    c.local_get(0);
    c.i32_const(1);
    c.ibinary(ValType::I32, 1); // sub
    c.call(0);
    c.ibinary(ValType::I32, 2); // mul
    c.end();
    let f0 = b.add_function(ty, &[], c);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.call(f0);
    let f1 = b.add_function(ty, &[], c);
    b.export_func("fact", f1);
    let m = lowered(&b);
    let fact = m.func_by_name("fact").expect("exported name");
    assert_eq!(m.func(fact).linkage, Linkage::External);
    let helper = m.func_by_name("f0").expect("internal name");
    assert_eq!(m.func(helper).linkage, Linkage::Internal);
    assert_eq!(run_i32(&m, "fact", vec![Val::i32(5)]), 120);
}

#[test]
fn floats_and_conversions() {
    // (param f64 i32) -> f64: p0 * f64(p1) demoted/promoted through f32.
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::F64, ValType::I32], &[ValType::F64]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.local_get(1);
    c.f64_convert_i32_s();
    c.fbinary(ValType::F64, 2); // mul
    c.f32_demote_f64();
    c.f64_promote_f32();
    let f = b.add_function(ty, &[], c);
    b.export_func("scale", f);
    let m = lowered(&b);
    let out = Interpreter::new(&m).run("scale", vec![Val::F64(1.5), Val::i32(4)]).expect("runs");
    assert_eq!(out.value, Some(Val::F64(6.0)));
}

/// Builds a driver that allocas a 64 KiB buffer and calls `callee`
/// (whose first parameter is the lowered `i8* %mem`) with it. Mirrors
/// what a host environment does when instantiating a wasm memory.
fn add_memory_driver(m: &mut fmsa_ir::Module, callee: &str, n_args: usize) -> String {
    let callee_id = m.func_by_name(callee).expect("callee exists");
    let callee_ty = m.func(callee_id).fn_ty();
    let ret = m.types.fn_ret(callee_ty).expect("fn ty");
    let params: Vec<_> = m.types.fn_params(callee_ty).expect("fn ty")[1..].to_vec();
    let driver_ty = m.types.func(ret, params);
    let name = format!("__drive_{callee}");
    let f = m.create_function(name.clone(), driver_ty);
    let mut b = FuncBuilder::new(m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let i8t = b.module().types.i8();
    let buf_ty = b.module_mut().types.array(i8t, 65536);
    let buf = b.alloca(buf_ty);
    let zero = b.const_i64(0);
    let mem = b.gep(buf_ty, buf, vec![zero, zero], i8t);
    let mut args = vec![mem];
    args.extend((0..n_args).map(|k| Value::Param(k as u32)));
    let r = b.call(callee_id, args);
    let is_void = b.module().types.fn_ret(callee_ty) == Some(b.module().types.void());
    if is_void {
        b.ret(None);
    } else {
        b.ret(Some(r));
    }
    name
}

#[test]
fn memory_loads_and_stores() {
    // store p0 at address 8, load16_u-style roundtrip at byte granularity.
    let mut b = WasmBuilder::new();
    b.add_memory(1);
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.i32_const(8);
    c.local_get(0);
    c.store(ValType::I32, 4); // effective address 12
    c.i32_const(12);
    c.load(ValType::I32, 0);
    c.i32_const(8);
    c.local_get(0);
    c.i32_store8(0); // low byte at address 8
    c.i32_const(8);
    c.i32_load8_u(0);
    c.ibinary(ValType::I32, 0); // add
    let f = b.add_function(ty, &[], c);
    b.export_func("memrt", f);
    let mut m = lowered(&b);
    // Lowered signature carries the threaded memory base.
    let fid = m.func_by_name("memrt").expect("exists");
    let fn_ty = m.func(fid).fn_ty();
    let p0 = m.types.fn_params(fn_ty).expect("fn ty")[0];
    assert!(m.types.is_ptr(p0), "first param is the memory base");
    let driver = add_memory_driver(&mut m, "memrt", 1);
    assert!(verify_module(&m).is_empty(), "{:?}", verify_module(&m));
    assert_eq!(run_i32(&m, &driver, vec![Val::i32(0x1_0203)]), 0x1_0203 + 0x03);
}

#[test]
fn dead_code_after_return_is_skipped() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.i32_const(11);
    c.return_();
    // Dead: a whole nested construct plus stack-polymorphic junk.
    c.block(Some(ValType::I32));
    c.i32_const(1);
    c.end();
    c.drop_();
    c.i32_const(42);
    let f = b.add_function(ty, &[], c);
    b.export_func("ret11", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "ret11", vec![]), 11);
}

#[test]
fn unreachable_lowers_to_unreachable() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.if_(None);
    c.unreachable();
    c.end();
    c.i32_const(1);
    let f = b.add_function(ty, &[], c);
    b.export_func("guard", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "guard", vec![Val::i32(0)]), 1);
    let trap = Interpreter::new(&m).run("guard", vec![Val::i32(1)]).expect_err("traps");
    assert_eq!(trap, fmsa_interp::Trap::UnreachableExecuted);
}

#[test]
fn select_and_comparison_fold_to_i1() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.local_get(1);
    c.local_get(0);
    c.local_get(1);
    c.icmp(ValType::I32, 2); // lt_s
    c.select();
    let f = b.add_function(ty, &[], c);
    b.export_func("min", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "min", vec![Val::i32(2), Val::i32(5)]), 2);
    assert_eq!(run_i32(&m, "min", vec![Val::i32(5), Val::i32(2)]), 2);
    // The folded condition means no `icmp ne (zext ...), 0` round-trip.
    let fid = m.func_by_name("min").expect("exists");
    let f = m.func(fid);
    let icmps = f.inst_ids().iter().filter(|&&i| f.inst(i).opcode == fmsa_ir::Opcode::ICmp).count();
    assert_eq!(icmps, 1, "{}", fmsa_ir::printer::print_module(&m));
}

#[test]
fn shifts_follow_wasm_masking() {
    // wasm masks shift counts by width-1; the IR interpreter does too.
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.local_get(1);
    c.ibinary(ValType::I32, 10); // shl
    let f = b.add_function(ty, &[], c);
    b.export_func("shl", f);
    let m = lowered(&b);
    assert_eq!(run_i32(&m, "shl", vec![Val::i32(1), Val::i32(3)]), 8);
    assert_eq!(run_i32(&m, "shl", vec![Val::i32(1), Val::i32(35)]), 8, "count masked mod 32");
}

#[test]
fn lowering_errors_carry_offsets() {
    // local index out of range
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(3);
    let f = b.add_function(ty, &[], c);
    b.export_func("bad", f);
    let bytes = b.finish();
    let e = load_wasm(&bytes, "t").expect_err("bad local");
    assert_eq!(e.kind, WasmErrorKind::Malformed);
    assert!(e.to_string().contains("local index 3"), "{e}");
    assert!(e.offset > 8, "offset points into the code section: {e}");

    // memory access without a memory section
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.i32_const(0);
    c.load(ValType::I32, 0);
    let f = b.add_function(ty, &[], c);
    b.export_func("nomem", f);
    let e = load_wasm(&b.finish(), "t").expect_err("no memory");
    assert!(e.to_string().contains("no memory section"), "{e}");

    // operand stack underflow
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.i32_add();
    let f = b.add_function(ty, &[], c);
    b.export_func("under", f);
    let e = load_wasm(&b.finish(), "t").expect_err("underflow");
    assert!(e.to_string().contains("underflow"), "{e}");

    // unsupported opcode names itself
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::F64], &[ValType::F64]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.raw_op(0x9f); // f64.sqrt
    let f = b.add_function(ty, &[], c);
    b.export_func("s", f);
    let e = load_wasm(&b.finish(), "t").expect_err("sqrt unsupported");
    assert_eq!(e.kind, WasmErrorKind::Unsupported);
    assert!(e.to_string().contains("sqrt"), "{e}");
}

#[test]
fn alias_exports_become_forwarding_thunks() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.i32_const(2);
    c.ibinary(ValType::I32, 2); // mul
    let f = b.add_function(ty, &[], c);
    b.export_func("twice", f);
    b.export_func("double", f); // legal alias of the same function
    let m = lowered(&b);
    for name in ["twice", "double"] {
        let fid = m.func_by_name(name).unwrap_or_else(|| panic!("{name} present"));
        assert_eq!(m.func(fid).linkage, Linkage::External);
        assert_eq!(run_i32(&m, name, vec![Val::i32(21)]), 42);
    }
}

#[test]
fn if_with_result_but_no_else_rejected() {
    let mut b = WasmBuilder::new();
    let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
    let mut c = CodeWriter::new();
    c.local_get(0);
    c.if_(Some(ValType::I32));
    c.i32_const(1);
    c.end();
    let f = b.add_function(ty, &[], c);
    b.export_func("bad", f);
    let e = load_wasm(&b.finish(), "t").expect_err("invalid wasm");
    assert!(e.to_string().contains("requires an `else`"), "{e}");
}

#[test]
fn decode_rejects_non_wasm() {
    let e = parse_wasm(b"; module not-wasm\n").expect_err("not wasm");
    assert!(matches!(
        e,
        WasmError { kind: WasmErrorKind::Malformed, .. }
            | WasmError { kind: WasmErrorKind::Truncated, .. }
    ));
}
