//! Minimal wasm binary emitter.
//!
//! Builds valid core-MVP binaries covering exactly the subset the decoder
//! accepts — enough for `fmsa_workloads::wasm_fixtures` to serialize
//! generated clone-family modules and for tests to construct inputs
//! byte-for-byte deterministically. [`CodeWriter`] provides typed helpers
//! for the operator sequence of one function body; [`WasmBuilder`]
//! assembles the type/function/memory/export/code sections.

use crate::leb128::{write_i32, write_i64, write_u32};
use crate::ValType;

/// Writes the operator sequence of one function body.
///
/// The final `end` of the body expression is appended by
/// [`WasmBuilder::add_function`]; explicit [`CodeWriter::end`] calls close
/// nested `block`/`loop`/`if` constructs.
#[derive(Debug, Clone, Default)]
pub struct CodeWriter {
    bytes: Vec<u8>,
}

impl CodeWriter {
    /// An empty body.
    pub fn new() -> CodeWriter {
        CodeWriter::default()
    }

    /// Appends a raw opcode byte (escape hatch for tests).
    pub fn raw_op(&mut self, b: u8) {
        self.bytes.push(b);
    }

    fn block_type(&mut self, bt: Option<ValType>) {
        match bt {
            None => self.bytes.push(0x40),
            Some(vt) => self.bytes.push(vt.byte()),
        }
    }

    /// `unreachable`.
    pub fn unreachable(&mut self) {
        self.bytes.push(0x00);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.bytes.push(0x01);
    }

    /// `block` with an optional result type.
    pub fn block(&mut self, bt: Option<ValType>) {
        self.bytes.push(0x02);
        self.block_type(bt);
    }

    /// `loop` with an optional result type.
    pub fn loop_(&mut self, bt: Option<ValType>) {
        self.bytes.push(0x03);
        self.block_type(bt);
    }

    /// `if` with an optional result type.
    pub fn if_(&mut self, bt: Option<ValType>) {
        self.bytes.push(0x04);
        self.block_type(bt);
    }

    /// `else`.
    pub fn else_(&mut self) {
        self.bytes.push(0x05);
    }

    /// `end` of a nested construct.
    pub fn end(&mut self) {
        self.bytes.push(0x0b);
    }

    /// `br label`.
    pub fn br(&mut self, label: u32) {
        self.bytes.push(0x0c);
        write_u32(&mut self.bytes, label);
    }

    /// `br_if label`.
    pub fn br_if(&mut self, label: u32) {
        self.bytes.push(0x0d);
        write_u32(&mut self.bytes, label);
    }

    /// `br_table targets... default`.
    pub fn br_table(&mut self, targets: &[u32], default: u32) {
        self.bytes.push(0x0e);
        write_u32(&mut self.bytes, targets.len() as u32);
        for &t in targets {
            write_u32(&mut self.bytes, t);
        }
        write_u32(&mut self.bytes, default);
    }

    /// `return`.
    pub fn return_(&mut self) {
        self.bytes.push(0x0f);
    }

    /// `call func`.
    pub fn call(&mut self, func: u32) {
        self.bytes.push(0x10);
        write_u32(&mut self.bytes, func);
    }

    /// `drop`.
    pub fn drop_(&mut self) {
        self.bytes.push(0x1a);
    }

    /// `select`.
    pub fn select(&mut self) {
        self.bytes.push(0x1b);
    }

    /// `local.get x`.
    pub fn local_get(&mut self, x: u32) {
        self.bytes.push(0x20);
        write_u32(&mut self.bytes, x);
    }

    /// `local.set x`.
    pub fn local_set(&mut self, x: u32) {
        self.bytes.push(0x21);
        write_u32(&mut self.bytes, x);
    }

    /// `local.tee x`.
    pub fn local_tee(&mut self, x: u32) {
        self.bytes.push(0x22);
        write_u32(&mut self.bytes, x);
    }

    fn mem(&mut self, opcode: u8, align: u32, offset: u32) {
        self.bytes.push(opcode);
        write_u32(&mut self.bytes, align);
        write_u32(&mut self.bytes, offset);
    }

    /// Full-width load of `ty` at constant `offset`.
    pub fn load(&mut self, ty: ValType, offset: u32) {
        let op = match ty {
            ValType::I32 => 0x28,
            ValType::I64 => 0x29,
            ValType::F32 => 0x2a,
            ValType::F64 => 0x2b,
        };
        self.mem(op, 0, offset);
    }

    /// `i32.load8_u` at constant `offset`.
    pub fn i32_load8_u(&mut self, offset: u32) {
        self.mem(0x2d, 0, offset);
    }

    /// Full-width store of `ty` at constant `offset`.
    pub fn store(&mut self, ty: ValType, offset: u32) {
        let op = match ty {
            ValType::I32 => 0x36,
            ValType::I64 => 0x37,
            ValType::F32 => 0x38,
            ValType::F64 => 0x39,
        };
        self.mem(op, 0, offset);
    }

    /// `i32.store8` at constant `offset`.
    pub fn i32_store8(&mut self, offset: u32) {
        self.mem(0x3a, 0, offset);
    }

    /// `i32.const v`.
    pub fn i32_const(&mut self, v: i32) {
        self.bytes.push(0x41);
        write_i32(&mut self.bytes, v);
    }

    /// `i64.const v`.
    pub fn i64_const(&mut self, v: i64) {
        self.bytes.push(0x42);
        write_i64(&mut self.bytes, v);
    }

    /// `f32.const v`.
    pub fn f32_const(&mut self, v: f32) {
        self.bytes.push(0x43);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64.const v`.
    pub fn f64_const(&mut self, v: f64) {
        self.bytes.push(0x44);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// `i32.eqz` / `i64.eqz`.
    pub fn eqz(&mut self, ty: ValType) {
        self.bytes.push(if ty == ValType::I64 { 0x50 } else { 0x45 });
    }

    /// An integer comparison: `k` indexes the wasm order
    /// `eq ne lt_s lt_u gt_s gt_u le_s le_u ge_s ge_u`.
    pub fn icmp(&mut self, ty: ValType, k: u8) {
        debug_assert!(k < 10);
        let base = if ty == ValType::I64 { 0x51 } else { 0x46 };
        self.bytes.push(base + k);
    }

    /// A float comparison: `k` indexes the wasm order `eq ne lt gt le ge`.
    pub fn fcmp(&mut self, ty: ValType, k: u8) {
        debug_assert!(k < 6);
        let base = if ty == ValType::F64 { 0x61 } else { 0x5b };
        self.bytes.push(base + k);
    }

    /// An integer binary op: `k` indexes the wasm order starting at `add`
    /// (`add sub mul div_s div_u rem_s rem_u and or xor shl shr_s shr_u`).
    pub fn ibinary(&mut self, ty: ValType, k: u8) {
        debug_assert!(k < 13);
        let base = if ty == ValType::I64 { 0x7c } else { 0x6a };
        self.bytes.push(base + k);
    }

    /// A float binary op: `k` indexes `add sub mul div`.
    pub fn fbinary(&mut self, ty: ValType, k: u8) {
        debug_assert!(k < 4);
        let base = if ty == ValType::F64 { 0xa0 } else { 0x92 };
        self.bytes.push(base + k);
    }

    /// `i32.add`.
    pub fn i32_add(&mut self) {
        self.bytes.push(0x6a);
    }

    /// `i32.wrap_i64`.
    pub fn i32_wrap_i64(&mut self) {
        self.bytes.push(0xa7);
    }

    /// `i64.extend_i32_s` / `i64.extend_i32_u`.
    pub fn i64_extend_i32(&mut self, signed: bool) {
        self.bytes.push(if signed { 0xac } else { 0xad });
    }

    /// `f64.convert_i32_s`.
    pub fn f64_convert_i32_s(&mut self) {
        self.bytes.push(0xb7);
    }

    /// `f32.convert_i32_s`.
    pub fn f32_convert_i32_s(&mut self) {
        self.bytes.push(0xb2);
    }

    /// `i32.trunc_f64_s`.
    pub fn i32_trunc_f64_s(&mut self) {
        self.bytes.push(0xaa);
    }

    /// `f64.promote_f32`.
    pub fn f64_promote_f32(&mut self) {
        self.bytes.push(0xbb);
    }

    /// `f32.demote_f64`.
    pub fn f32_demote_f64(&mut self) {
        self.bytes.push(0xb6);
    }

    /// `i32.reinterpret_f32`.
    pub fn i32_reinterpret_f32(&mut self) {
        self.bytes.push(0xbc);
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

struct FuncDef {
    type_idx: u32,
    locals: Vec<ValType>,
    code: Vec<u8>,
}

/// Assembles a complete wasm binary from types, functions, an optional
/// memory, and function exports.
#[derive(Default)]
pub struct WasmBuilder {
    types: Vec<(Vec<ValType>, Vec<ValType>)>,
    funcs: Vec<FuncDef>,
    memory_pages: Option<u32>,
    exports: Vec<(String, u32)>,
}

impl WasmBuilder {
    /// An empty module.
    pub fn new() -> WasmBuilder {
        WasmBuilder::default()
    }

    /// Interns the function type `(params) -> (results)`, returning its
    /// type index (duplicates collapse, as real toolchains do).
    pub fn add_type(&mut self, params: &[ValType], results: &[ValType]) -> u32 {
        let key = (params.to_vec(), results.to_vec());
        if let Some(i) = self.types.iter().position(|t| *t == key) {
            return i as u32;
        }
        self.types.push(key);
        (self.types.len() - 1) as u32
    }

    /// Declares a memory with `min` initial 64 KiB pages and no maximum.
    pub fn add_memory(&mut self, min: u32) {
        self.memory_pages = Some(min);
    }

    /// Adds a function of type `type_idx` with the given extra locals and
    /// body (the body's final `end` is appended here). Returns the
    /// function index.
    pub fn add_function(&mut self, type_idx: u32, locals: &[ValType], body: CodeWriter) -> u32 {
        let mut code = body.bytes;
        code.push(0x0b); // end of the body expression
        self.funcs.push(FuncDef { type_idx, locals: locals.to_vec(), code });
        (self.funcs.len() - 1) as u32
    }

    /// Exports function `func` under `name`.
    pub fn export_func(&mut self, name: &str, func: u32) {
        self.exports.push((name.to_owned(), func));
    }

    /// Serializes the module to wasm bytes.
    pub fn finish(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("writing to a Vec cannot fail");
        out
    }

    /// Serializes the module section-by-section into `out` — the
    /// streaming re-encode used by the merge daemon's response path.
    /// Peak buffering is one section body (a section's LEB128 length
    /// prefix must precede its bytes), never the whole module, and each
    /// section reaches the writer as soon as it is complete.
    pub fn write_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(&crate::WASM_MAGIC)?;
        out.write_all(&crate::WASM_VERSION.to_le_bytes())?;

        if !self.types.is_empty() {
            let mut body = Vec::new();
            write_u32(&mut body, self.types.len() as u32);
            for (params, results) in &self.types {
                body.push(0x60);
                write_u32(&mut body, params.len() as u32);
                body.extend(params.iter().map(|v| v.byte()));
                write_u32(&mut body, results.len() as u32);
                body.extend(results.iter().map(|v| v.byte()));
            }
            section(out, 1, &body)?;
        }

        if !self.funcs.is_empty() {
            let mut body = Vec::new();
            write_u32(&mut body, self.funcs.len() as u32);
            for f in &self.funcs {
                write_u32(&mut body, f.type_idx);
            }
            section(out, 3, &body)?;
        }

        if let Some(min) = self.memory_pages {
            let mut body = Vec::new();
            write_u32(&mut body, 1);
            body.push(0x00); // limits: min only
            write_u32(&mut body, min);
            section(out, 5, &body)?;
        }

        if !self.exports.is_empty() {
            let mut body = Vec::new();
            write_u32(&mut body, self.exports.len() as u32);
            for (name, func) in &self.exports {
                write_u32(&mut body, name.len() as u32);
                body.extend_from_slice(name.as_bytes());
                body.push(0x00); // export kind: func
                write_u32(&mut body, *func);
            }
            section(out, 7, &body)?;
        }

        if !self.funcs.is_empty() {
            let mut body = Vec::new();
            write_u32(&mut body, self.funcs.len() as u32);
            for f in &self.funcs {
                let mut entry = Vec::new();
                // Locals as one run per declared local (simple, valid).
                write_u32(&mut entry, f.locals.len() as u32);
                for &l in &f.locals {
                    write_u32(&mut entry, 1);
                    entry.push(l.byte());
                }
                entry.extend_from_slice(&f.code);
                write_u32(&mut body, entry.len() as u32);
                body.extend_from_slice(&entry);
            }
            section(out, 10, &body)?;
        }

        Ok(())
    }
}

fn section<W: std::io::Write>(out: &mut W, id: u8, body: &[u8]) -> std::io::Result<()> {
    out.write_all(&[id])?;
    let mut len = Vec::new();
    write_u32(&mut len, body.len() as u32);
    out.write_all(&len)?;
    out.write_all(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_module_is_just_the_header() {
        let bytes = WasmBuilder::new().finish();
        assert_eq!(bytes, b"\0asm\x01\0\0\0");
        assert!(crate::parse_wasm(&bytes).is_ok());
    }

    #[test]
    fn write_to_matches_finish_exactly() {
        let mut b = WasmBuilder::new();
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let mut code = CodeWriter::new();
        code.local_get(0);
        code.local_get(1);
        code.i32_add();
        let f = b.add_function(ty, &[ValType::I32], code);
        b.add_memory(1);
        b.export_func("sum", f);
        let mut streamed = Vec::new();
        b.write_to(&mut streamed).unwrap();
        assert_eq!(streamed, b.finish());
        assert!(crate::parse_wasm(&streamed).is_ok());
    }

    #[test]
    fn write_to_propagates_io_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(WasmBuilder::new().write_to(&mut Failing).is_err());
    }

    #[test]
    fn type_interning_dedupes() {
        let mut b = WasmBuilder::new();
        let a = b.add_type(&[ValType::I32], &[]);
        let c = b.add_type(&[ValType::I32], &[]);
        let d = b.add_type(&[ValType::I64], &[]);
        assert_eq!(a, c);
        assert_ne!(a, d);
    }
}
