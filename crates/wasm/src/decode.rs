//! Decoder for the core-MVP wasm binary format.
//!
//! [`parse_wasm`] handles the section framing (type, function, memory,
//! export, code; custom sections are skipped) and [`OpReader`] streams the
//! operator sequence of one function body. Anything outside the supported
//! subset — imports, tables, globals, element/data segments, `start`,
//! multi-value results, the post-MVP opcode space — is rejected with a
//! [`WasmError`] naming the construct and its byte offset.
//!
//! Operators are decoded straight into the [`fmsa_ir`] vocabulary where a
//! 1:1 mapping exists ([`Op::Binary`] carries an [`Opcode`], the compare
//! ops carry [`IntPredicate`]/[`FloatPredicate`]), so the lowering pass
//! ([`crate::lower`]) stays a small structural translation.

use crate::leb128::Reader;
use crate::{ValType, WasmError, WASM_MAGIC, WASM_VERSION};
use fmsa_ir::{FloatPredicate, IntPredicate, Opcode};
use std::ops::Range;

/// A function signature from the type section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types; the MVP subset allows at most one.
    pub results: Vec<ValType>,
}

/// Memory limits, in 64 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

/// A function export (the only export kind the frontend models).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Export name.
    pub name: String,
    /// Index into the function index space.
    pub func: u32,
}

/// One function body from the code section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncBody {
    /// Declared locals: `(count, type)` runs, as encoded.
    pub locals: Vec<(u32, ValType)>,
    /// Byte range of the body expression (including the final `end`)
    /// within the original input.
    pub code: Range<usize>,
}

/// A decoded (but not yet lowered) wasm module.
#[derive(Debug, Clone)]
pub struct WasmModule {
    bytes: Vec<u8>,
    /// Type section entries.
    pub types: Vec<FuncType>,
    /// Function section: per defined function, its type index.
    pub funcs: Vec<u32>,
    /// Memory section entry, if present.
    pub memory: Option<Limits>,
    /// Function exports, in section order.
    pub exports: Vec<Export>,
    /// Code section entries, parallel to [`WasmModule::funcs`].
    pub bodies: Vec<FuncBody>,
}

impl WasmModule {
    /// The signature of function `i` of the index space.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range ([`parse_wasm`] validates indices).
    pub fn func_type(&self, i: u32) -> &FuncType {
        &self.types[self.funcs[i as usize] as usize]
    }

    /// An operator stream over the body expression of function `i`,
    /// reporting absolute byte offsets.
    pub fn body_ops(&self, i: usize) -> OpReader<'_> {
        let range = self.bodies[i].code.clone();
        OpReader { r: Reader::new(&self.bytes[range.clone()], range.start) }
    }

    /// Total size of the input binary in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Block type of a `block`/`loop`/`if`: no result or one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// `[] -> []`.
    Empty,
    /// `[] -> [ty]`.
    Val(ValType),
}

/// A memory access: which stack type moves, through which access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemArg {
    /// The wasm value type on the operand stack.
    pub ty: ValType,
    /// Access width in bits (8, 16, 32, or 64). Narrower than the value
    /// type for the `load8_s`-style sub-width forms.
    pub width: u8,
    /// For sub-width loads: sign-extend (`true`) or zero-extend.
    pub signed: bool,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

/// One decoded operator, in [`fmsa_ir`] vocabulary where possible.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `unreachable`.
    Unreachable,
    /// `nop`.
    Nop,
    /// `block bt`.
    Block(BlockType),
    /// `loop bt`.
    Loop(BlockType),
    /// `if bt`.
    If(BlockType),
    /// `else`.
    Else,
    /// `end` of a block, loop, if, or the function body.
    End,
    /// `br l`.
    Br(u32),
    /// `br_if l`.
    BrIf(u32),
    /// `br_table l* l`.
    BrTable {
        /// Case targets, indexed by the operand.
        targets: Vec<u32>,
        /// Default target.
        default: u32,
    },
    /// `return`.
    Return,
    /// `call f`.
    Call(u32),
    /// `drop`.
    Drop,
    /// `select`.
    Select,
    /// `local.get x`.
    LocalGet(u32),
    /// `local.set x`.
    LocalSet(u32),
    /// `local.tee x`.
    LocalTee(u32),
    /// A `*.load*` instruction.
    Load(MemArg),
    /// A `*.store*` instruction.
    Store(MemArg),
    /// `i32.const`.
    I32Const(i32),
    /// `i64.const`.
    I64Const(i64),
    /// `f32.const`.
    F32Const(f32),
    /// `f64.const`.
    F64Const(f64),
    /// `i32.eqz` / `i64.eqz`.
    Eqz(ValType),
    /// An integer comparison; produces an `i32` (0/1) in wasm.
    ICmp {
        /// Operand type (`i32` or `i64`).
        ty: ValType,
        /// The equivalent IR predicate.
        pred: IntPredicate,
    },
    /// A float comparison; produces an `i32` (0/1) in wasm.
    FCmp {
        /// Operand type (`f32` or `f64`).
        ty: ValType,
        /// The equivalent IR predicate (wasm `ne` is unordered-or-unequal).
        pred: FloatPredicate,
    },
    /// A two-operand numeric op with a direct IR equivalent.
    Binary {
        /// Operand/result type.
        ty: ValType,
        /// The equivalent IR opcode.
        op: Opcode,
    },
    /// A conversion with a direct IR cast equivalent.
    Convert {
        /// The IR cast opcode.
        op: Opcode,
        /// Destination wasm type.
        to: ValType,
    },
}

/// Streams [`Op`]s out of one function body.
#[derive(Debug, Clone)]
pub struct OpReader<'a> {
    r: Reader<'a>,
}

impl OpReader<'_> {
    /// Absolute byte offset of the next operator.
    pub fn offset(&self) -> usize {
        self.r.offset()
    }

    /// Decodes the next operator; `(offset, op)` where `offset` points at
    /// the opcode byte.
    ///
    /// # Errors
    ///
    /// Truncated/malformed immediates, or an opcode outside the supported
    /// subset (named, with its offset).
    #[allow(clippy::too_many_lines)]
    pub fn next_op(&mut self) -> Result<(usize, Op), WasmError> {
        use Opcode::*;
        use ValType::{F32, F64, I32, I64};
        let at = self.r.offset();
        let b = self.r.byte("opcode")?;
        let op = match b {
            0x00 => Op::Unreachable,
            0x01 => Op::Nop,
            0x02 => Op::Block(self.block_type()?),
            0x03 => Op::Loop(self.block_type()?),
            0x04 => Op::If(self.block_type()?),
            0x05 => Op::Else,
            0x0b => Op::End,
            0x0c => Op::Br(self.r.u32("br label")?),
            0x0d => Op::BrIf(self.r.u32("br_if label")?),
            0x0e => {
                let n = self.r.u32("br_table target count")? as usize;
                let mut targets = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    targets.push(self.r.u32("br_table target")?);
                }
                let default = self.r.u32("br_table default")?;
                Op::BrTable { targets, default }
            }
            0x0f => Op::Return,
            0x10 => Op::Call(self.r.u32("call callee")?),
            0x1a => Op::Drop,
            0x1b => Op::Select,
            0x20 => Op::LocalGet(self.r.u32("local.get index")?),
            0x21 => Op::LocalSet(self.r.u32("local.set index")?),
            0x22 => Op::LocalTee(self.r.u32("local.tee index")?),
            0x28..=0x35 => {
                let (ty, width, signed) = match b {
                    0x28 => (I32, 32, false),
                    0x29 => (I64, 64, false),
                    0x2a => (F32, 32, false),
                    0x2b => (F64, 64, false),
                    0x2c => (I32, 8, true),
                    0x2d => (I32, 8, false),
                    0x2e => (I32, 16, true),
                    0x2f => (I32, 16, false),
                    0x30 => (I64, 8, true),
                    0x31 => (I64, 8, false),
                    0x32 => (I64, 16, true),
                    0x33 => (I64, 16, false),
                    0x34 => (I64, 32, true),
                    _ => (I64, 32, false),
                };
                let offset = self.memarg()?;
                Op::Load(MemArg { ty, width, signed, offset })
            }
            0x36..=0x3e => {
                let (ty, width) = match b {
                    0x36 => (I32, 32),
                    0x37 => (I64, 64),
                    0x38 => (F32, 32),
                    0x39 => (F64, 64),
                    0x3a => (I32, 8),
                    0x3b => (I32, 16),
                    0x3c => (I64, 8),
                    0x3d => (I64, 16),
                    _ => (I64, 32),
                };
                let offset = self.memarg()?;
                Op::Store(MemArg { ty, width, signed: false, offset })
            }
            0x41 => Op::I32Const(self.r.i32("i32.const")?),
            0x42 => Op::I64Const(self.r.i64("i64.const")?),
            0x43 => Op::F32Const(self.r.f32("f32.const")?),
            0x44 => Op::F64Const(self.r.f64("f64.const")?),
            0x45 => Op::Eqz(I32),
            0x46..=0x4f => Op::ICmp { ty: I32, pred: int_pred(b - 0x46) },
            0x50 => Op::Eqz(I64),
            0x51..=0x5a => Op::ICmp { ty: I64, pred: int_pred(b - 0x51) },
            0x5b..=0x60 => Op::FCmp { ty: F32, pred: float_pred(b - 0x5b) },
            0x61..=0x66 => Op::FCmp { ty: F64, pred: float_pred(b - 0x61) },
            0x6a..=0x78 if int_binary(b - 0x6a).is_some() => {
                Op::Binary { ty: I32, op: int_binary(b - 0x6a).expect("guarded") }
            }
            0x7c..=0x8a if int_binary(b - 0x7c).is_some() => {
                Op::Binary { ty: I64, op: int_binary(b - 0x7c).expect("guarded") }
            }
            0x92..=0x95 => Op::Binary { ty: F32, op: float_binary(b - 0x92) },
            0xa0..=0xa3 => Op::Binary { ty: F64, op: float_binary(b - 0xa0) },
            0xa7 => Op::Convert { op: Trunc, to: I32 },
            0xa8 | 0xaa => Op::Convert { op: FPToSI, to: I32 },
            0xa9 | 0xab => Op::Convert { op: FPToUI, to: I32 },
            0xac => Op::Convert { op: SExt, to: I64 },
            0xad => Op::Convert { op: ZExt, to: I64 },
            0xae | 0xb0 => Op::Convert { op: FPToSI, to: I64 },
            0xaf | 0xb1 => Op::Convert { op: FPToUI, to: I64 },
            0xb2 | 0xb4 => Op::Convert { op: SIToFP, to: F32 },
            0xb3 | 0xb5 => Op::Convert { op: UIToFP, to: F32 },
            0xb6 => Op::Convert { op: FPTrunc, to: F32 },
            0xb7 | 0xb9 => Op::Convert { op: SIToFP, to: F64 },
            0xb8 | 0xba => Op::Convert { op: UIToFP, to: F64 },
            0xbb => Op::Convert { op: FPExt, to: F64 },
            0xbc => Op::Convert { op: BitCast, to: I32 },
            0xbd => Op::Convert { op: BitCast, to: I64 },
            0xbe => Op::Convert { op: BitCast, to: F32 },
            0xbf => Op::Convert { op: BitCast, to: F64 },
            other => {
                return Err(WasmError::unsupported(
                    at,
                    format!("opcode {:#04x} ({})", other, opcode_name(other)),
                ));
            }
        };
        Ok((at, op))
    }

    fn block_type(&mut self) -> Result<BlockType, WasmError> {
        let at = self.r.offset();
        let b = self.r.byte("block type")?;
        if b == 0x40 {
            return Ok(BlockType::Empty);
        }
        match ValType::from_byte(b) {
            Some(vt) => Ok(BlockType::Val(vt)),
            None => Err(WasmError::unsupported(
                at,
                format!("block type {b:#04x} (type-index / multi-value block types)"),
            )),
        }
    }

    fn memarg(&mut self) -> Result<u32, WasmError> {
        let _align = self.r.u32("memarg align")?; // a hint; ignored
        self.r.u32("memarg offset")
    }
}

fn int_pred(k: u8) -> IntPredicate {
    // eq ne lt_s lt_u gt_s gt_u le_s le_u ge_s ge_u
    [
        IntPredicate::Eq,
        IntPredicate::Ne,
        IntPredicate::Slt,
        IntPredicate::Ult,
        IntPredicate::Sgt,
        IntPredicate::Ugt,
        IntPredicate::Sle,
        IntPredicate::Ule,
        IntPredicate::Sge,
        IntPredicate::Uge,
    ][k as usize]
}

fn float_pred(k: u8) -> FloatPredicate {
    // eq ne lt gt le ge — wasm `ne` is true on unordered operands.
    [
        FloatPredicate::Oeq,
        FloatPredicate::Une,
        FloatPredicate::Olt,
        FloatPredicate::Ogt,
        FloatPredicate::Ole,
        FloatPredicate::Oge,
    ][k as usize]
}

/// IR opcode for the integer binary op at offset `k` from `i32.clz`;
/// `None` for the forms without a direct IR equivalent (clz/ctz/popcnt/
/// rotl/rotr), which the caller reports as unsupported.
fn int_binary(k: u8) -> Option<Opcode> {
    match k {
        0x00 => Some(Opcode::Add),
        0x01 => Some(Opcode::Sub),
        0x02 => Some(Opcode::Mul),
        0x03 => Some(Opcode::SDiv),
        0x04 => Some(Opcode::UDiv),
        0x05 => Some(Opcode::SRem),
        0x06 => Some(Opcode::URem),
        0x07 => Some(Opcode::And),
        0x08 => Some(Opcode::Or),
        0x09 => Some(Opcode::Xor),
        0x0a => Some(Opcode::Shl),
        0x0b => Some(Opcode::AShr),
        0x0c => Some(Opcode::LShr),
        _ => None, // rotl (0x0d) / rotr (0x0e)
    }
}

fn float_binary(k: u8) -> Opcode {
    [Opcode::FAdd, Opcode::FSub, Opcode::FMul, Opcode::FDiv][k as usize]
}

/// Names for the opcodes the frontend knows about but does not support,
/// so rejection errors read well; unknown bytes fall back to a generic
/// label.
fn opcode_name(b: u8) -> &'static str {
    match b {
        0x11 => "call_indirect",
        0x23 => "global.get",
        0x24 => "global.set",
        0x3f => "memory.size",
        0x40 => "memory.grow",
        0x67 | 0x79 => "clz",
        0x68 | 0x7a => "ctz",
        0x69 | 0x7b => "popcnt",
        0x77 | 0x89 => "rotl",
        0x78 | 0x8a => "rotr",
        0x8b | 0x99 => "abs",
        0x8c | 0x9a => "neg",
        0x8d | 0x9b => "ceil",
        0x8e | 0x9c => "floor",
        0x8f | 0x9d => "trunc",
        0x90 | 0x9e => "nearest",
        0x91 | 0x9f => "sqrt",
        0x96 | 0xa4 => "min",
        0x97 | 0xa5 => "max",
        0x98 | 0xa6 => "copysign",
        0xc0..=0xc4 => "sign-extension op",
        0xd0..=0xd2 => "reference op",
        0xfc => "0xFC-prefixed op",
        0xfd => "SIMD op",
        _ => "outside the core-MVP subset",
    }
}

/// Section names for error messages, by section id.
fn section_name(id: u8) -> &'static str {
    match id {
        0 => "custom",
        1 => "type",
        2 => "import",
        3 => "function",
        4 => "table",
        5 => "memory",
        6 => "global",
        7 => "export",
        8 => "start",
        9 => "element",
        10 => "code",
        11 => "data",
        12 => "data count",
        _ => "unknown",
    }
}

/// Decodes the section structure of a wasm binary.
///
/// # Errors
///
/// Returns a [`WasmError`] for malformed/truncated input or any feature
/// outside the supported subset (imports, tables, globals, element/data
/// segments, `start`, multiple memories, multi-value results). Custom
/// sections are skipped.
pub fn parse_wasm(bytes: &[u8]) -> Result<WasmModule, WasmError> {
    let mut r = Reader::new(bytes, 0);
    let magic = r.take(4, "magic")?;
    if magic != WASM_MAGIC {
        return Err(WasmError::malformed(0, "bad magic (expected \\0asm)"));
    }
    let version = r.take(4, "version")?;
    let version = u32::from_le_bytes([version[0], version[1], version[2], version[3]]);
    if version != WASM_VERSION {
        return Err(WasmError::unsupported(4, format!("binary format version {version}")));
    }
    let mut module = WasmModule {
        bytes: bytes.to_vec(),
        types: Vec::new(),
        funcs: Vec::new(),
        memory: None,
        exports: Vec::new(),
        bodies: Vec::new(),
    };
    let mut last_id = 0u8;
    while !r.at_end() {
        let id_at = r.offset();
        let id = r.byte("section id")?;
        let size = r.u32("section size")? as usize;
        let body_at = r.offset();
        let body = r.take(size, "section body")?;
        let mut s = Reader::new(body, body_at);
        // Non-custom sections must appear at most once, in ascending id
        // order (spec §5.5.2); otherwise duplicate sections would
        // silently concatenate their entries.
        if id != 0 {
            if id <= last_id {
                return Err(WasmError::malformed(
                    id_at,
                    format!(
                        "{} section (id {id}) out of order or duplicated (after id {last_id})",
                        section_name(id)
                    ),
                ));
            }
            last_id = id;
        }
        match id {
            0 => {} // custom sections carry no semantics; skip
            1 => parse_type_section(&mut s, &mut module)?,
            3 => parse_function_section(&mut s, &mut module)?,
            5 => parse_memory_section(&mut s, &mut module)?,
            7 => parse_export_section(&mut s, &mut module)?,
            10 => parse_code_section(&mut s, &mut module)?,
            2 | 4 | 6 | 8 | 9 | 11 | 12 => {
                return Err(WasmError::unsupported(
                    id_at,
                    format!("{} section (id {id})", section_name(id)),
                ));
            }
            _ => {
                return Err(WasmError::malformed(id_at, format!("unknown section id {id}")));
            }
        }
        if id != 0 && !s.at_end() {
            return Err(WasmError::malformed(
                s.offset(),
                format!("{} section has {} trailing bytes", section_name(id), s.remaining()),
            ));
        }
    }
    if module.funcs.len() != module.bodies.len() {
        return Err(WasmError::malformed(
            bytes.len(),
            format!(
                "function section declares {} functions but code section has {} bodies",
                module.funcs.len(),
                module.bodies.len()
            ),
        ));
    }
    for (k, &ty) in module.funcs.iter().enumerate() {
        if ty as usize >= module.types.len() {
            return Err(WasmError::malformed(
                bytes.len(),
                format!(
                    "function {k} names type index {ty}, but only {} exist",
                    module.types.len()
                ),
            ));
        }
    }
    for e in &module.exports {
        if e.func as usize >= module.funcs.len() {
            return Err(WasmError::malformed(
                bytes.len(),
                format!("export {:?} names function index {}, out of range", e.name, e.func),
            ));
        }
    }
    Ok(module)
}

fn parse_type_section(s: &mut Reader<'_>, m: &mut WasmModule) -> Result<(), WasmError> {
    let count = s.u32("type count")?;
    for _ in 0..count {
        let at = s.offset();
        let form = s.byte("functype tag")?;
        if form != 0x60 {
            return Err(WasmError::malformed(
                at,
                format!("expected functype (0x60), got {form:#04x}"),
            ));
        }
        let params = parse_valtypes(s, "param")?;
        let results = parse_valtypes(s, "result")?;
        if results.len() > 1 {
            return Err(WasmError::unsupported(
                at,
                format!("multi-value function type ({} results)", results.len()),
            ));
        }
        m.types.push(FuncType { params, results });
    }
    Ok(())
}

fn parse_valtypes(s: &mut Reader<'_>, what: &str) -> Result<Vec<ValType>, WasmError> {
    let n = s.u32("valtype count")? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let at = s.offset();
        let b = s.byte("valtype")?;
        let vt = ValType::from_byte(b).ok_or_else(|| {
            WasmError::unsupported(at, format!("{what} type {b:#04x} (only i32/i64/f32/f64)"))
        })?;
        out.push(vt);
    }
    Ok(out)
}

fn parse_function_section(s: &mut Reader<'_>, m: &mut WasmModule) -> Result<(), WasmError> {
    let count = s.u32("function count")?;
    for _ in 0..count {
        m.funcs.push(s.u32("type index")?);
    }
    Ok(())
}

fn parse_memory_section(s: &mut Reader<'_>, m: &mut WasmModule) -> Result<(), WasmError> {
    let at = s.offset();
    let count = s.u32("memory count")?;
    if count > 1 {
        return Err(WasmError::unsupported(at, format!("{count} memories (at most one)")));
    }
    for _ in 0..count {
        let flag_at = s.offset();
        let flags = s.byte("limits flag")?;
        let min = s.u32("memory min")?;
        let max = match flags {
            0x00 => None,
            0x01 => Some(s.u32("memory max")?),
            other => {
                return Err(WasmError::malformed(flag_at, format!("bad limits flag {other:#04x}")))
            }
        };
        m.memory = Some(Limits { min, max });
    }
    Ok(())
}

fn parse_export_section(s: &mut Reader<'_>, m: &mut WasmModule) -> Result<(), WasmError> {
    let count = s.u32("export count")?;
    for _ in 0..count {
        let name = s.name()?;
        let kind = s.byte("export kind")?;
        let idx = s.u32("export index")?;
        // Function exports drive naming/linkage in the lowering; a memory
        // export is meaningful but changes nothing for merging. Table and
        // global exports cannot refer to anything (those sections are
        // rejected), so an index here is dangling — report it.
        match kind {
            0x00 => m.exports.push(Export { name, func: idx }),
            0x02 => {}
            other => {
                return Err(WasmError::unsupported(
                    s.offset(),
                    format!("export kind {other:#04x} for {name:?} (func/memory only)"),
                ));
            }
        }
    }
    Ok(())
}

/// Per-function declared-locals limit, matching what production wasm
/// engines enforce (V8/SpiderMonkey/wasmtime all cap at 50 000).
pub const MAX_LOCALS: u64 = 50_000;

fn parse_code_section(s: &mut Reader<'_>, m: &mut WasmModule) -> Result<(), WasmError> {
    let count = s.u32("code count")?;
    for _ in 0..count {
        let size = s.u32("body size")? as usize;
        let body_at = s.offset();
        let body = s.take(size, "function body")?;
        let mut b = Reader::new(body, body_at);
        let n_locals = b.u32("local group count")?;
        let mut locals = Vec::new();
        let mut total_locals = 0u64;
        for _ in 0..n_locals {
            let count_at = b.offset();
            let n = b.u32("local count")?;
            let at = b.offset();
            let tyb = b.byte("local type")?;
            let vt = ValType::from_byte(tyb).ok_or_else(|| {
                WasmError::unsupported(at, format!("local type {tyb:#04x} (only i32/i64/f32/f64)"))
            })?;
            // A 6-byte group can declare 2^32-1 locals, each of which
            // lowering would materialize as an alloca+store; cap at the
            // limit real engines enforce so a tiny crafted binary cannot
            // balloon into gigabytes of IR.
            total_locals += n as u64;
            if total_locals > MAX_LOCALS {
                return Err(WasmError::malformed(
                    count_at,
                    format!("function declares {total_locals} locals (limit {MAX_LOCALS})"),
                ));
            }
            locals.push((n, vt));
        }
        let code = b.offset()..body_at + size;
        if code.is_empty() {
            return Err(WasmError::malformed(b.offset(), "empty function body expression"));
        }
        m.bodies.push(FuncBody { locals, code });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{CodeWriter, WasmBuilder};

    #[test]
    fn rejects_bad_magic_and_version() {
        let e = parse_wasm(b"nope").expect_err("magic");
        assert!(e.to_string().contains("truncated") || e.to_string().contains("magic"));
        let e = parse_wasm(b"\0asm\x02\0\0\0").expect_err("version");
        assert!(e.to_string().contains("version 2"), "{e}");
    }

    #[test]
    fn rejects_unsupported_section_with_name_and_offset() {
        // magic + version, then an import section (id 2) of size 1.
        let bytes = b"\0asm\x01\0\0\0\x02\x01\x00";
        let e = parse_wasm(bytes).expect_err("imports unsupported");
        assert_eq!(e.kind, crate::WasmErrorKind::Unsupported);
        assert_eq!(e.offset, 8, "points at the section id byte");
        assert!(e.to_string().contains("import section"), "{e}");
    }

    #[test]
    fn decodes_a_built_module() {
        let mut b = WasmBuilder::new();
        let ty = b.add_type(&[ValType::I32, ValType::I64], &[ValType::I32]);
        let mut code = CodeWriter::new();
        code.local_get(0);
        let f = b.add_function(ty, &[ValType::F64], code);
        b.export_func("first", f);
        b.add_memory(2);
        let m = parse_wasm(&b.finish()).expect("decodes");
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.funcs, vec![0]);
        assert_eq!(m.memory, Some(Limits { min: 2, max: None }));
        assert_eq!(m.exports.len(), 1);
        assert_eq!(m.exports[0].name, "first");
        assert_eq!(m.bodies[0].locals, vec![(1, ValType::F64)]);
        assert_eq!(m.func_type(0).params.len(), 2);
    }

    #[test]
    fn op_stream_decodes_and_reports_unsupported_opcodes() {
        let mut b = WasmBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let mut code = CodeWriter::new();
        code.local_get(0);
        code.i32_const(3);
        code.i32_add();
        code.raw_op(0x77); // i32.rotl — decodes but is unsupported
        b.add_function(ty, &[], code);
        let m = parse_wasm(&b.finish()).expect("decodes");
        let mut ops = m.body_ops(0);
        assert_eq!(ops.next_op().unwrap().1, Op::LocalGet(0));
        assert_eq!(ops.next_op().unwrap().1, Op::I32Const(3));
        assert_eq!(ops.next_op().unwrap().1, Op::Binary { ty: ValType::I32, op: Opcode::Add });
        let e = ops.next_op().expect_err("rotl unsupported");
        assert!(e.to_string().contains("rotl"), "{e}");
        assert!(e.to_string().contains("0x77"), "{e}");
    }

    #[test]
    fn duplicate_and_out_of_order_sections_rejected() {
        // Two type sections, each declaring zero types.
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&[0x01, 0x01, 0x00]);
        bytes.extend_from_slice(&[0x01, 0x01, 0x00]);
        let e = parse_wasm(&bytes).expect_err("duplicate section");
        assert!(e.to_string().contains("out of order or duplicated"), "{e}");
        // An export section (7) before a memory section (5).
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&[0x07, 0x01, 0x00]);
        bytes.extend_from_slice(&[0x05, 0x01, 0x00]);
        let e = parse_wasm(&bytes).expect_err("out of order");
        assert!(e.to_string().contains("out of order"), "{e}");
    }

    #[test]
    fn runaway_local_counts_rejected() {
        let mut b = WasmBuilder::new();
        let ty = b.add_type(&[], &[]);
        b.add_function(ty, &[], CodeWriter::new());
        let mut bytes = b.finish();
        // Rewrite the code section by hand: one body declaring one local
        // group of 2^32-1 i64s (6 bytes of input, gigabytes if lowered).
        let code_at = bytes.iter().position(|&x| x == 0x0a).expect("code section present");
        bytes.truncate(code_at);
        let body = [
            0x01, // one local group
            0xff, 0xff, 0xff, 0xff, 0x0f, // count = 0xFFFFFFFF
            0x7e, // i64
            0x0b, // end
        ];
        bytes.push(0x0a); // code section id
        bytes.push(body.len() as u8 + 2); // section size
        bytes.push(0x01); // one body
        bytes.push(body.len() as u8); // body size
        bytes.extend_from_slice(&body);
        let e = parse_wasm(&bytes).expect_err("locals capped");
        assert!(e.to_string().contains("locals"), "{e}");
        assert!(e.to_string().contains("50000"), "{e}");
    }

    #[test]
    fn body_count_mismatch_detected() {
        // A function section with one entry and no code section.
        let mut b = WasmBuilder::new();
        b.add_type(&[], &[]);
        let mut bytes = b.finish();
        // Append a function section claiming one function of type 0.
        bytes.extend_from_slice(&[0x03, 0x02, 0x01, 0x00]);
        let e = parse_wasm(&bytes).expect_err("mismatch");
        assert!(e.to_string().contains("bodies"), "{e}");
    }
}
